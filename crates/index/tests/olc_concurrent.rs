//! Concurrency battery for the OLC B+-tree, run against the real tree
//! (the exhaustive schedule-level proof lives in `olc_interleavings.rs`).
//!
//! * the stale-root regression: readers hammer a key in the *upper half*
//!   of a root leaf that is exactly full, while a writer triggers the root
//!   split that moves the key into the new right sibling — the interleaving
//!   the old crabbing tree lost reads on;
//! * a multi-threaded proptest pitting the tree against `BTreeMap` with
//!   overlapping key ranges (the in-crate model test is single-threaded);
//! * an `index_descent_restarts > 0` check, so CI proves the optimistic
//!   path actually restarts under contention instead of silently
//!   degenerating into an always-valid (i.e. untested) fast path.

use mainline_index::{BPlusTree, KeyBuilder};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

fn key(i: i64) -> Vec<u8> {
    KeyBuilder::new().add_i64(i).finish()
}

fn restarts() -> u64 {
    mainline_obs::registry()
        .snapshot()
        .counter("index_descent_restarts")
        .expect("index metrics registered by BPlusTree::new")
}

/// The stale-root race, end to end: key 63 sits in the upper half of a
/// root leaf holding exactly NODE_CAPACITY (64) keys, so the *next* insert
/// splits the root and moves 63 into the new right sibling. Readers race
/// that split; with the old protocol (root-pointer lock released before
/// latching the root node) a reader stranded in the stale left half
/// returned `None` for a key that was present the whole time. Many short
/// rounds maximize the chance of landing a reader inside the split window.
#[test]
fn root_split_never_loses_the_migrating_key() {
    for round in 0..200 {
        let t = Arc::new(BPlusTree::new());
        for i in 0..64 {
            assert!(t.insert_unique(&key(i), i as u64));
        }
        let barrier = Arc::new(Barrier::new(3));
        let split_done = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let t = Arc::clone(&t);
            let barrier = Arc::clone(&barrier);
            let split_done = Arc::clone(&split_done);
            readers.push(std::thread::spawn(move || {
                barrier.wait();
                let mut polls = 0u32;
                // Keep reading through the split and a little beyond it.
                while !split_done.load(Ordering::Acquire) || polls < 64 {
                    assert_eq!(
                        t.get(&key(63)),
                        Some(63),
                        "round {round}: lost key 63 during the root split"
                    );
                    polls += 1;
                }
            }));
        }
        let splitter = {
            let t = Arc::clone(&t);
            let barrier = Arc::clone(&barrier);
            let split_done = Arc::clone(&split_done);
            std::thread::spawn(move || {
                barrier.wait();
                assert!(t.insert_unique(&key(64), 64)); // forces the root split
                assert!(t.depth() > 1, "round {round}: insert 65th key must split the root");
                split_done.store(true, Ordering::Release);
            })
        };
        splitter.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(t.get(&key(63)), Some(63));
        assert_eq!(t.len(), 65);
    }
}

/// Contention must actually exercise the restart path: three writers
/// hammering one leaf (same few keys) plus a reader guarantee overlapping
/// critical sections eventually; the restart counter must move. Bounded
/// retry keeps this robust on a single-core runner, where overlap needs a
/// preemption to land mid-critical-section.
#[test]
fn descent_restarts_observed_under_contention() {
    let t = Arc::new(BPlusTree::new());
    for i in 0..8 {
        t.insert_unique(&key(i), i as u64);
    }
    let before = restarts();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while restarts() == before {
        assert!(
            std::time::Instant::now() < deadline,
            "no descent restart observed under sustained same-leaf contention"
        );
        let mut handles = Vec::new();
        for tid in 0..3u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    t.upsert(&key((i % 8) as i64), tid * 1_000_000 + i);
                }
            }));
        }
        {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    assert!(t.get(&key((i % 8) as i64)).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
    assert!(restarts() > before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Multi-threaded model check with overlapping key ranges: ops are
    /// striped across three writers **by key** (all ops for one key run on
    /// one thread, in program order), which keeps the final state
    /// deterministic while the threads' *ranges* fully overlap — every
    /// leaf sees all three writers. Concurrent readers and scanners run
    /// unchecked during the churn (they must merely never tear or panic);
    /// the final tree must equal the sequential model exactly, including
    /// `len()`.
    #[test]
    fn concurrent_striped_ops_match_btreemap(
        ops in proptest::collection::vec((0u16..96, 0u8..2), 60..400),
    ) {
        let t = Arc::new(BPlusTree::new());
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(3));

        // Sequential model: per-key program order equals per-thread order.
        let mut model = std::collections::BTreeMap::new();
        for &(k, op) in &ops {
            let kb = key(k as i64);
            match op {
                0 => { model.insert(kb, k as u64); }
                _ => { model.remove(&kb); }
            }
        }

        let mut aux = Vec::new();
        for _ in 0..2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            aux.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = t.get(&key(17));
                    let got = t.range_collect(&key(0), Some(&key(96)), usize::MAX);
                    // Snapshot-per-leaf emission must stay strictly sorted.
                    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
                    let _ = t.first_at_or_after(&key(48));
                }
            }));
        }

        let mut writers = Vec::new();
        for stripe in 0..3u16 {
            let t = Arc::clone(&t);
            let barrier = Arc::clone(&barrier);
            let my_ops: Vec<(u16, u8)> =
                ops.iter().copied().filter(|(k, _)| k % 3 == stripe).collect();
            writers.push(std::thread::spawn(move || {
                barrier.wait();
                for (k, op) in my_ops {
                    let kb = key(k as i64);
                    match op {
                        0 => { t.upsert(&kb, k as u64); }
                        _ => { t.remove(&kb); }
                    }
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for a in aux {
            a.join().unwrap();
        }

        let all = t.range_collect(&[], None, usize::MAX);
        let expect: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(t.len(), expect.len(), "len() must be exact after the churn");
        prop_assert_eq!(all, expect);
    }
}
