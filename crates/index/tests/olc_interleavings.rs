//! Loom-style exhaustive interleaving check of the index's optimistic
//! lock coupling protocol — the same explicit-state DFS technique as the
//! storage crate's `fig9_interleavings` battery (the real crates.io `loom`
//! is unavailable offline).
//!
//! The model is the smallest tree where the stale-root race exists: a
//! single-leaf tree (leaf **A**, holding the probe key K) that a
//! **splitter** thread turns into `inner I → [A, B]`, moving K into the
//! new right sibling **B**. A **reader** descends for K concurrently, and
//! (in the three-thread battery) a **remover** deletes K through the
//! leaf-locked write path. Every latch operation executes against *real*
//! [`VersionLatch`] words — the checker only schedules them, one atomic
//! step at a time, exploring every reachable interleaving by DFS over
//! configurations.
//!
//! The correctness predicate is the one the old crabbing tree violated:
//! **a validated read must never miss a key that is present** (a MISS is
//! legal only after the remover committed). Non-vacuity is enforced two
//! ways: the outcome space must contain both descent routes and actual
//! restarts, and three *mutants* of the protocol must reach a lost read —
//! the pre-fix stale-root descent (no root-latch validation), a splitter
//! that forgets the leaf version bump, and a splitter that forgets the
//! root-pointer-latch bump. If any mutant passes, the battery is vacuous
//! and the test fails.

use mainline_index::latch::VersionLatch;
use std::collections::HashSet;

/// Nodes of the model tree.
const NODE_A: u8 = 0; // initial root leaf; left half after the split
const NODE_B: u8 = 1; // right sibling created by the split (owns K after)
const NODE_I: u8 = 2; // inner root installed by the split

/// Where the probe key K currently lives.
const KEY_IN_A: u8 = 0;
const KEY_IN_B: u8 = 1;
const KEY_REMOVED: u8 = 2;

/// Reader program counter.
const R_READ_ROOT: u8 = 0; // optimistic root-pointer version + load root ptr
const R_NODE_VER: u8 = 1; // node version, then validate the root latch
const R_INNER: u8 = 2; // route K through the inner node (handshake)
const R_LEAF: u8 = 3; // read the leaf, validate, report
const R_DONE: u8 = 4;

/// Splitter program counter (root split of full leaf A).
const S_OPT_ROOT: u8 = 0; // optimistic root-pointer version
const S_OPT_A: u8 = 1; // optimistic leaf version + validate root latch
const S_LOCK_ROOT: u8 = 2; // lock the root-pointer slot at its version
const S_LOCK_A: u8 = 3; // lock the leaf at its version
const S_SPLIT: u8 = 4; // move K's upper half to B, install inner root
const S_UNLOCK_A: u8 = 5; // release A (version bump — unless mutated)
const S_UNLOCK_ROOT: u8 = 6; // release root slot (bump — unless mutated)
const S_DONE: u8 = 7;

/// Remover program counter (leaf-locked write descent for K).
const M_READ_ROOT: u8 = 0;
const M_NODE_VER: u8 = 1;
const M_INNER: u8 = 2;
const M_LOCK: u8 = 3; // try_lock_at the leaf's validated version
const M_REMOVE: u8 = 4; // remove K under the latch, bump on unlock
const M_DONE: u8 = 5;

const OUTCOME_PENDING: u8 = 0;
const OUTCOME_HIT: u8 = 1;
const OUTCOME_MISS: u8 = 2;

/// Protocol variant under test: the shipped protocol or one of the
/// deliberately-broken mutants that prove the battery is non-vacuous.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// The shipped OLC protocol.
    Fixed,
    /// The pre-fix descent: the reader never validates the root-pointer
    /// latch after loading the root pointer (the stale-root bug).
    StaleRootReader,
    /// Splitter releases the leaf with `unlock_clean` (no version bump).
    NoLeafBump,
    /// Splitter releases the root-pointer latch with `unlock_clean`.
    NoRootSlotBump,
}

/// One explored configuration: the four real latch words, the abstract
/// tree content, and every thread's PC + registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Config {
    // Shared latch words (restored onto real VersionLatch instances).
    rl: u64, // root-pointer slot latch
    la: u64, // leaf A
    lb: u64, // leaf B
    li: u64, // inner root I
    // Abstract shared tree state.
    root_inner: bool, // false: root is leaf A; true: root is I → [A, B]
    key_loc: u8,
    // Reader.
    rpc: u8,
    r_v_root: u64,
    r_v_node: u64,
    r_node: u8,
    r_took_inner: bool,
    r_restarted: bool,
    outcome: u8,
    /// Set iff the reader reported MISS while K was present — the lost
    /// read the protocol must make unreachable.
    bad: bool,
    // Splitter.
    spc: u8,
    s_v_root: u64,
    s_v_a: u64,
    // Remover.
    mpc: u8,
    m_v_root: u64,
    m_v_node: u64,
    m_node: u8,
    removed: bool,
}

struct Model {
    variant: Variant,
    rl: VersionLatch,
    la: VersionLatch,
    lb: VersionLatch,
    li: VersionLatch,
}

impl Model {
    fn new(variant: Variant) -> Model {
        Model {
            variant,
            rl: VersionLatch::new(),
            la: VersionLatch::new(),
            lb: VersionLatch::new(),
            li: VersionLatch::new(),
        }
    }

    fn latch(&self, node: u8) -> &VersionLatch {
        match node {
            NODE_A => &self.la,
            NODE_B => &self.lb,
            NODE_I => &self.li,
            _ => unreachable!("unknown node"),
        }
    }

    /// Load `cfg`'s latch words onto the real latches.
    fn restore(&self, cfg: Config) {
        self.rl.set_raw(cfg.rl);
        self.la.set_raw(cfg.la);
        self.lb.set_raw(cfg.lb);
        self.li.set_raw(cfg.li);
    }

    /// Read the latch words back into `cfg`.
    fn capture(&self, mut cfg: Config) -> Config {
        cfg.rl = self.rl.raw();
        cfg.la = self.la.raw();
        cfg.lb = self.lb.raw();
        cfg.li = self.li.raw();
        cfg
    }

    /// Does leaf `node` currently hold K?
    fn leaf_contains(node: u8, key_loc: u8) -> bool {
        (node == NODE_A && key_loc == KEY_IN_A) || (node == NODE_B && key_loc == KEY_IN_B)
    }

    /// Reset the reader to the top of its descent (a restart).
    fn reader_restart(cfg: &mut Config) {
        cfg.rpc = R_READ_ROOT;
        cfg.r_v_root = 0;
        cfg.r_v_node = 0;
        cfg.r_node = NODE_A;
        cfg.r_restarted = true;
    }

    /// Execute one reader step (mirrors `BPlusTree::get_inner`).
    fn reader_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let mut c = cfg;
        match cfg.rpc {
            R_READ_ROOT => {
                // Optimistic version of the root-pointer slot, then load
                // the pointer. (The stale-root window opens here: the
                // pointer may be replaced before the next step.)
                match self.rl.optimistic() {
                    Some(v) => {
                        c.r_v_root = v;
                        c.r_node = if cfg.root_inner { NODE_I } else { NODE_A };
                        c.rpc = R_NODE_VER;
                    }
                    None => Self::reader_restart(&mut c),
                }
            }
            R_NODE_VER => {
                // Node version first, then re-validate the root latch —
                // proving the pointer we hold was still current. The
                // StaleRootReader mutant skips that validation, which is
                // exactly the shipped bug being fixed.
                match self.latch(cfg.r_node).optimistic() {
                    Some(v) => {
                        let root_ok = self.variant == Variant::StaleRootReader
                            || self.rl.validate(cfg.r_v_root);
                        if root_ok {
                            c.r_v_node = v;
                            c.rpc = if cfg.r_node == NODE_I { R_INNER } else { R_LEAF };
                        } else {
                            Self::reader_restart(&mut c);
                        }
                    }
                    None => Self::reader_restart(&mut c),
                }
            }
            R_INNER => {
                // K sits in the upper half, so the inner node routes to B.
                // Handshake: child version, then validate the parent.
                match self.lb.optimistic() {
                    Some(v_child) => {
                        if self.li.validate(cfg.r_v_node) {
                            c.r_node = NODE_B;
                            c.r_v_node = v_child;
                            c.r_took_inner = true;
                            c.rpc = R_LEAF;
                        } else {
                            Self::reader_restart(&mut c);
                        }
                    }
                    None => Self::reader_restart(&mut c),
                }
            }
            R_LEAF => {
                // Read the leaf, then validate before trusting the result.
                let present = Self::leaf_contains(cfg.r_node, cfg.key_loc);
                if self.latch(cfg.r_node).validate(cfg.r_v_node) {
                    c.outcome = if present { OUTCOME_HIT } else { OUTCOME_MISS };
                    if !present && cfg.key_loc != KEY_REMOVED {
                        c.bad = true; // validated lost read
                    }
                    c.rpc = R_DONE;
                } else {
                    Self::reader_restart(&mut c);
                }
            }
            _ => unreachable!("stepping a finished reader"),
        }
        self.capture(c)
    }

    /// Execute one splitter step (mirrors `update_leaf`'s root-split arm:
    /// lock root slot + root node at validated versions, split, publish).
    fn splitter_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let mut c = cfg;
        match cfg.spc {
            S_OPT_ROOT => {
                if let Some(v) = self.rl.optimistic() {
                    c.s_v_root = v;
                    c.spc = S_OPT_A;
                }
            }
            S_OPT_A => match self.la.optimistic() {
                Some(v) if self.rl.validate(cfg.s_v_root) => {
                    c.s_v_a = v;
                    c.spc = S_LOCK_ROOT;
                }
                _ => c.spc = S_OPT_ROOT,
            },
            S_LOCK_ROOT => {
                if self.rl.try_lock_at(cfg.s_v_root) {
                    c.spc = S_LOCK_A;
                } else {
                    c.spc = S_OPT_ROOT;
                }
            }
            S_LOCK_A => {
                if self.la.try_lock_at(cfg.s_v_a) {
                    c.spc = S_SPLIT;
                } else {
                    self.rl.unlock_clean();
                    c.spc = S_OPT_ROOT;
                }
            }
            S_SPLIT => {
                // Move the upper half (K, unless already removed) into B
                // and install the inner root.
                if cfg.key_loc == KEY_IN_A {
                    c.key_loc = KEY_IN_B;
                }
                c.root_inner = true;
                c.spc = S_UNLOCK_A;
            }
            S_UNLOCK_A => {
                if self.variant == Variant::NoLeafBump {
                    self.la.unlock_clean(); // mutant: forget the bump
                } else {
                    self.la.unlock_modified();
                }
                c.spc = S_UNLOCK_ROOT;
            }
            S_UNLOCK_ROOT => {
                if self.variant == Variant::NoRootSlotBump {
                    self.rl.unlock_clean(); // mutant: forget the bump
                } else {
                    self.rl.unlock_modified();
                }
                c.spc = S_DONE;
            }
            _ => unreachable!("stepping a finished splitter"),
        }
        self.capture(c)
    }

    /// Reset the remover to the top of its descent.
    fn remover_restart(cfg: &mut Config) {
        cfg.mpc = M_READ_ROOT;
        cfg.m_v_root = 0;
        cfg.m_v_node = 0;
        cfg.m_node = NODE_A;
    }

    /// Execute one remover step (mirrors `update_leaf`'s leaf-locked arm).
    fn remover_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let mut c = cfg;
        match cfg.mpc {
            M_READ_ROOT => match self.rl.optimistic() {
                Some(v) => {
                    c.m_v_root = v;
                    c.m_node = if cfg.root_inner { NODE_I } else { NODE_A };
                    c.mpc = M_NODE_VER;
                }
                None => Self::remover_restart(&mut c),
            },
            M_NODE_VER => match self.latch(cfg.m_node).optimistic() {
                Some(v) if self.rl.validate(cfg.m_v_root) => {
                    c.m_v_node = v;
                    c.mpc = if cfg.m_node == NODE_I { M_INNER } else { M_LOCK };
                }
                _ => Self::remover_restart(&mut c),
            },
            M_INNER => match self.lb.optimistic() {
                Some(v_child) if self.li.validate(cfg.m_v_node) => {
                    c.m_node = NODE_B;
                    c.m_v_node = v_child;
                    c.mpc = M_LOCK;
                }
                _ => Self::remover_restart(&mut c),
            },
            M_LOCK => {
                if self.latch(cfg.m_node).try_lock_at(cfg.m_v_node) {
                    c.mpc = M_REMOVE;
                } else {
                    Self::remover_restart(&mut c);
                }
            }
            M_REMOVE => {
                // Locking at the validated version guarantees the descent
                // was not stale: the leaf must still hold K.
                assert!(
                    Self::leaf_contains(cfg.m_node, cfg.key_loc),
                    "remover locked a leaf that lost K — stale write descent: {cfg:?}"
                );
                c.key_loc = KEY_REMOVED;
                c.removed = true;
                self.latch(cfg.m_node).unlock_modified();
                c.mpc = M_DONE;
            }
            _ => unreachable!("stepping a finished remover"),
        }
        self.capture(c)
    }
}

/// Explore every interleaving from `initial`; returns (all visited
/// configurations, terminal configurations).
fn explore(variant: Variant, initial: Config) -> (HashSet<Config>, HashSet<Config>) {
    let model = Model::new(variant);
    let mut visited: HashSet<Config> = HashSet::new();
    let mut terminals: HashSet<Config> = HashSet::new();
    let mut stack = vec![initial];
    while let Some(cfg) = stack.pop() {
        if !visited.insert(cfg) {
            continue;
        }
        if cfg.rpc == R_DONE && cfg.spc == S_DONE && cfg.mpc == M_DONE {
            terminals.insert(cfg);
            continue;
        }
        if cfg.rpc != R_DONE {
            stack.push(model.reader_step(cfg));
        }
        if cfg.spc != S_DONE {
            stack.push(model.splitter_step(cfg));
        }
        if cfg.mpc != M_DONE {
            stack.push(model.remover_step(cfg));
        }
    }
    assert!(!terminals.is_empty(), "model never terminated");
    (visited, terminals)
}

/// Initial condition shared by every battery: single-leaf tree, K in A.
/// `with_remover` arms the third thread.
fn initial(with_remover: bool) -> Config {
    Config {
        rl: 0,
        la: 0,
        lb: 0,
        li: 0,
        root_inner: false,
        key_loc: KEY_IN_A,
        rpc: R_READ_ROOT,
        r_v_root: 0,
        r_v_node: 0,
        r_node: NODE_A,
        r_took_inner: false,
        r_restarted: false,
        outcome: OUTCOME_PENDING,
        bad: false,
        spc: S_OPT_ROOT,
        s_v_root: 0,
        s_v_a: 0,
        mpc: if with_remover { M_READ_ROOT } else { M_DONE },
        m_v_root: 0,
        m_v_node: 0,
        m_node: NODE_A,
        removed: false,
    }
}

#[test]
fn reader_vs_splitter_never_loses_a_present_key() {
    let (visited, terminals) = explore(Variant::Fixed, initial(false));
    // Safety: no schedule produces a validated lost read.
    assert!(visited.iter().all(|c| !c.bad), "OLC protocol lost a present key in some schedule");
    // Every terminal read found K (nothing ever removes it here).
    for t in &terminals {
        assert_eq!(t.outcome, OUTCOME_HIT, "reader terminated without finding K: {t:?}");
        assert!(t.root_inner, "splitter terminated without publishing the new root: {t:?}");
    }
    // Non-vacuity: both descent routes and actual restarts are reachable.
    assert!(
        terminals.iter().any(|t| t.r_took_inner),
        "no schedule descended through the post-split inner root"
    );
    assert!(
        terminals.iter().any(|t| !t.r_took_inner),
        "no schedule completed the read against the pre-split single-leaf root"
    );
    assert!(
        terminals.iter().any(|t| t.r_restarted),
        "no schedule forced a reader restart — the optimistic path is untested"
    );
}

#[test]
fn reader_vs_splitter_vs_remover_misses_only_after_the_remove() {
    let (visited, terminals) = explore(Variant::Fixed, initial(true));
    assert!(
        visited.iter().all(|c| !c.bad),
        "OLC protocol lost a present key in some three-thread schedule"
    );
    for t in &terminals {
        assert!(t.removed, "remover terminated without removing K: {t:?}");
        assert_eq!(t.key_loc, KEY_REMOVED);
    }
    // Non-vacuity: the reader must be able to win (HIT before the remove)
    // and lose legally (MISS after the remove).
    let outcomes: HashSet<u8> = terminals.iter().map(|t| t.outcome).collect();
    assert!(outcomes.contains(&OUTCOME_HIT), "reader never beat the remover in any schedule");
    assert!(outcomes.contains(&OUTCOME_MISS), "reader never saw the committed remove");
}

#[test]
fn stale_root_descent_reproduces_the_lost_read() {
    // The pre-fix protocol: load the root pointer, never re-validate the
    // root-pointer latch. The DFS must find the lost read — this is the
    // deterministic reproduction of the bug this PR fixes.
    let (visited, _) = explore(Variant::StaleRootReader, initial(false));
    assert!(
        visited.iter().any(|c| c.bad),
        "stale-root descent never lost a key — the model cannot see the bug it exists to catch"
    );
}

#[test]
fn mutation_check_missing_leaf_version_bump_is_caught() {
    // A splitter that releases the leaf with `unlock_clean` lets a reader
    // that captured the pre-split version validate a post-split read.
    let (visited, _) = explore(Variant::NoLeafBump, initial(false));
    assert!(
        visited.iter().any(|c| c.bad),
        "reverting the leaf version bump went unnoticed — the battery is vacuous"
    );
}

#[test]
fn mutation_check_missing_root_slot_bump_is_caught() {
    // A splitter that releases the root-pointer latch with `unlock_clean`
    // revives exactly the stale-root window: a reader that loaded the old
    // root pointer before the split and took its node version after it
    // validates a descent into the left half and misses K.
    let (visited, _) = explore(Variant::NoRootSlotBump, initial(false));
    assert!(
        visited.iter().any(|c| c.bad),
        "reverting the root-slot version bump went unnoticed — the battery is vacuous"
    );
}
