//! `mainline-index` — a concurrent ordered index substrate.
//!
//! The paper's system uses the OpenBw-Tree for all indexes (§6.1). What the
//! experiments actually require from the index is: a thread-safe ordered map
//! from memcmp-comparable composite keys to `TupleSlot`s, with unique-insert
//! (for constraint checks), point lookup, deletion, and range scans (TPC-C's
//! ORDER_LINE and NEW_ORDER access paths). This crate provides that as a
//! B+-tree with per-node reader-writer latches and preemptive splits, plus a
//! composite-key encoder that preserves ordering under byte comparison.
//!
//! # Example
//!
//! ```
//! use mainline_index::{BPlusTree, KeyBuilder};
//!
//! let index: BPlusTree<u64> = BPlusTree::new();
//! for i in 0..100i64 {
//!     let key = KeyBuilder::new().add_i64(i).add_bytes(b"row").finish();
//!     assert!(index.insert_unique(&key, i as u64));
//! }
//! let probe = KeyBuilder::new().add_i64(42).add_bytes(b"row").finish();
//! assert_eq!(index.get(&probe), Some(42));
//!
//! // Encoded byte order equals logical order, so range scans work on the
//! // encoded form (TPC-C's ORDER_LINE access path).
//! let lo = KeyBuilder::new().add_i64(10).finish();
//! let hi = KeyBuilder::new().add_i64(20).finish();
//! assert_eq!(index.range_collect(&lo, Some(&hi), usize::MAX).len(), 10);
//! ```

pub mod bptree;
pub mod key;

pub use bptree::BPlusTree;
pub use key::KeyBuilder;
