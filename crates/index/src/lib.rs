//! `mainline-index` — a concurrent ordered index substrate.
//!
//! The paper's system uses the OpenBw-Tree for all indexes (§6.1). What the
//! experiments actually require from the index is: a thread-safe ordered map
//! from memcmp-comparable composite keys to `TupleSlot`s, with unique-insert
//! (for constraint checks), point lookup, deletion, and range scans (TPC-C's
//! ORDER_LINE and NEW_ORDER access paths). This crate provides that as a
//! B+-tree with per-node reader-writer latches and preemptive splits, plus a
//! composite-key encoder that preserves ordering under byte comparison.

pub mod bptree;
pub mod key;

pub use bptree::BPlusTree;
pub use key::KeyBuilder;
