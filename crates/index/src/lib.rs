//! `mainline-index` — a concurrent ordered index substrate.
//!
//! The paper's system uses the OpenBw-Tree for all indexes (§6.1). What the
//! experiments actually require from the index is: a thread-safe ordered map
//! from memcmp-comparable composite keys to `TupleSlot`s, with unique-insert
//! (for constraint checks), point lookup, deletion, and range scans (TPC-C's
//! ORDER_LINE and NEW_ORDER access paths). This crate provides that as a
//! B+-tree with **optimistic lock coupling**: versioned per-node latches
//! ([`latch::VersionLatch`]), latch-free reader descents that validate and
//! restart on conflict, preemptive splits, head-truncated key prefixes in
//! node slots, and a locked fallback path for scans — plus a composite-key
//! encoder that preserves ordering under byte comparison. Contention health
//! is visible through the `index_descent_restarts` / `index_scan_fallbacks`
//! counters and the sampled `index_lookup_nanos` histogram in the global
//! metrics registry.
//!
//! # Example
//!
//! ```
//! use mainline_index::{BPlusTree, KeyBuilder};
//!
//! let index: BPlusTree<u64> = BPlusTree::new();
//! for i in 0..100i64 {
//!     let key = KeyBuilder::new().add_i64(i).add_bytes(b"row").finish();
//!     assert!(index.insert_unique(&key, i as u64));
//! }
//! let probe = KeyBuilder::new().add_i64(42).add_bytes(b"row").finish();
//! assert_eq!(index.get(&probe), Some(42));
//!
//! // Encoded byte order equals logical order, so range scans work on the
//! // encoded form (TPC-C's ORDER_LINE access path).
//! let lo = KeyBuilder::new().add_i64(10).finish();
//! let hi = KeyBuilder::new().add_i64(20).finish();
//! assert_eq!(index.range_collect(&lo, Some(&hi), usize::MAX).len(), 10);
//! ```

pub mod bptree;
pub mod key;
pub mod latch;
pub mod obs;

pub use bptree::{BPlusTree, IndexValue};
pub use key::KeyBuilder;
