//! Process-global metrics owned by the index layer.
//!
//! The optimistic protocol's health is invisible from outside — a tree that
//! restarts every descent still returns right answers, just slowly — so the
//! restart and fallback counters are the only way to see contention.
//! Recording discipline (the 5 % `fig_obs` budget):
//!
//! * restarts/fallbacks are bumped only on the *slow* path (a restart or a
//!   locked scan), never on the straight-through descent;
//! * lookup latency is sampled 1-in-8 per thread, so seven of eight `get`s
//!   carry zero metrics work.

use mainline_obs::{Counter, Histogram, Metric};

/// Optimistic descents that failed validation and restarted (reads and
/// writes both count; one descent can restart several times).
pub static INDEX_DESCENT_RESTARTS: Counter = Counter::new(
    "index_descent_restarts",
    "optimistic index descents that failed version validation and restarted",
);

/// Leaf captures during range scans that gave up on the optimistic path
/// and took the leaf latch (the scan fallback that must not restart).
pub static INDEX_SCAN_FALLBACKS: Counter = Counter::new(
    "index_scan_fallbacks",
    "range-scan leaf captures that fell back to the locked path",
);

/// Point-lookup latency, sampled 1-in-8 per thread.
pub static INDEX_LOOKUP_NANOS: Histogram =
    Histogram::new("index_lookup_nanos", "sampled point-lookup latency (1-in-8 per thread)");

/// Register this crate's metrics with the global registry (idempotent).
pub(crate) fn register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        mainline_obs::registry().register(&[
            Metric::Counter(&INDEX_DESCENT_RESTARTS),
            Metric::Counter(&INDEX_SCAN_FALLBACKS),
            Metric::Histogram(&INDEX_LOOKUP_NANOS),
        ]);
    });
}
