//! Concurrent B+-tree with optimistic lock coupling (OLC).
//!
//! # Concurrency protocol
//!
//! Every node carries a [`VersionLatch`] — one
//! word packing an exclusive lock bit with a modification version — and the
//! root *pointer* carries its own latch, closing the stale-root window the
//! old crabbing tree had (it released the root-pointer lock before latching
//! the root node, so a racing root split could strand a reader in the stale
//! left half and lose a present key).
//!
//! * **Readers take no latches.** A descent reads each node through atomic
//!   loads under an optimistic version, and the child handshake is:
//!   obtain the child's version, then re-validate the parent — so the child
//!   pointer is known to have been current. Any conflict (locked latch or
//!   bumped version) restarts the descent from the root. Restart cost is
//!   bounded by tree height; restarts are counted in
//!   `index_descent_restarts`.
//! * **Writers descend optimistically too**, then latch just the leaf (at
//!   its validated version, so a changed leaf fails the lock and restarts).
//!   Structural changes are *preemptive*: a writer that is about to enter a
//!   full child latches parent + child (both at validated versions), splits,
//!   and restarts — so descents never enter a full node and a leaf latch
//!   always has room for the insert. A full root is split under the
//!   root-pointer latch, which is version-bumped exactly like a node so
//!   in-flight readers of the old root pointer fail validation.
//! * **Deletes are lazy** (no merging), so a leaf's low bound is immutable:
//!   splits only move a leaf's *upper* half right, which is what makes the
//!   leaf-level next-pointer chain safe to walk during scans.
//! * **Scans** capture one leaf at a time: snapshot the packed slot words
//!   under an optimistic version, validate, then emit — so the user
//!   callback never runs on a torn view and never needs undoing. After a
//!   few failed optimistic captures a scan takes the leaf latch briefly
//!   (`index_scan_fallbacks`) instead of restarting forever.
//!
//! # Why latch-free reads are sound here
//!
//! All reader-visible node state is atomic, and nothing a reader can load
//! ever dangles:
//!
//! * a key slot is one `AtomicU64` packing `(len << 48) | ptr` into the
//!   append-only [`KeyArena`], so a reader can
//!   never see a torn pointer/length pair, and the bytes behind any
//!   once-published word are immutable and live until the tree drops;
//! * child/next pointers only ever hold nodes that are never freed before
//!   the tree drops (splits allocate, deletes don't rebalance);
//! * values are single `u64` words ([`IndexValue`]).
//!
//! A reader acting on a stale mixture of those words is caught by version
//! validation and restarts; the point of the invariants above is that the
//! stale read itself is memory-safe.
//!
//! # Inner-node comparisons: head truncation
//!
//! Each slot also stores the key's *head* — its first 8 bytes, zero-padded,
//! as a big-endian `u64`. Unequal heads order exactly like the full keys
//! (the head is a zero-padded prefix, and `KeyBuilder`'s encoding is
//! memcmp-ordered), so a binary-search probe is usually one integer compare
//! and only falls back to full key bytes on equal heads.

use crate::latch::{KeyArena, VersionLatch};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Max keys per node before a preemptive split.
const NODE_CAPACITY: usize = 64;

/// Optimistic capture attempts per leaf before a scan takes the latch.
const SCAN_OPTIMISTIC_TRIES: usize = 3;

type Key = Vec<u8>;

/// A value storable in the tree: packed into one atomic 64-bit word so
/// readers can load it without latching. The engine's indexes map keys to
/// `TupleSlot` ids (`u64`), which is exactly this shape.
pub trait IndexValue: Copy + Send + Sync + 'static {
    /// Pack into the slot word.
    fn to_word(self) -> u64;
    /// Unpack from the slot word (inverse of [`to_word`](Self::to_word)).
    fn from_word(w: u64) -> Self;
}

impl IndexValue for u64 {
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(w: u64) -> Self {
        w
    }
}

impl IndexValue for u32 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

impl IndexValue for i64 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

impl IndexValue for usize {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as usize
    }
}

/// First 8 key bytes, zero-padded, as a big-endian word (see module docs).
#[inline]
fn head_of(key: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = key.len().min(8);
    b[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(b)
}

/// Pack an arena key reference into one word: `(len << 48) | ptr`.
#[inline]
fn pack_key(ptr: *const u8, len: usize) -> u64 {
    assert!(len < (1 << 16), "index keys are limited to 64 KiB");
    let p = ptr as u64;
    debug_assert_eq!(p >> 48, 0, "userspace pointers fit in 48 bits");
    ((len as u64) << 48) | p
}

/// Reconstruct the key slice a packed word names.
///
/// # Safety
/// `w` must be zero or a word produced by [`pack_key`] over bytes that are
/// still live — which every word ever stored into a tree slot is, because
/// arena bytes outlive the tree.
#[inline]
unsafe fn unpack_key<'a>(w: u64) -> &'a [u8] {
    if w == 0 {
        &[]
    } else {
        let ptr = (w & ((1 << 48) - 1)) as *const u8;
        let len = (w >> 48) as usize;
        std::slice::from_raw_parts(ptr, len)
    }
}

/// Kind-specific node storage. The discriminant is fixed at allocation
/// (splits create new nodes; a node never changes kind), so readers may
/// match on it without holding the latch.
enum Body {
    Leaf {
        /// Packed value words, parallel to `keys`.
        vals: Box<[AtomicU64]>,
        /// Right sibling (null at the rightmost leaf). Low bounds are
        /// immutable, so this chain only ever grows rightward.
        next: AtomicPtr<Node>,
    },
    Inner {
        /// `children[i]` holds keys `< keys[i]`; `children[count]` the rest.
        /// `NODE_CAPACITY + 1` slots.
        children: Box<[AtomicPtr<Node>]>,
    },
}

struct Node {
    latch: VersionLatch,
    /// Live slots in `[0, NODE_CAPACITY]`. Readers clamp before indexing;
    /// a torn count is caught by validation.
    count: AtomicUsize,
    /// Head-truncated keys (first 8 bytes, big-endian, zero-padded).
    heads: Box<[AtomicU64]>,
    /// Packed arena references for the full keys.
    keys: Box<[AtomicU64]>,
    body: Body,
}

fn atomic_u64_array(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

fn atomic_ptr_array(n: usize) -> Box<[AtomicPtr<Node>]> {
    (0..n).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect()
}

impl Node {
    fn new(leaf: bool) -> Box<Node> {
        Box::new(Node {
            latch: VersionLatch::new(),
            count: AtomicUsize::new(0),
            heads: atomic_u64_array(NODE_CAPACITY),
            keys: atomic_u64_array(NODE_CAPACITY),
            body: if leaf {
                Body::Leaf {
                    vals: atomic_u64_array(NODE_CAPACITY),
                    next: AtomicPtr::new(std::ptr::null_mut()),
                }
            } else {
                Body::Inner { children: atomic_ptr_array(NODE_CAPACITY + 1) }
            },
        })
    }

    fn is_full(&self) -> bool {
        self.count.load(Ordering::Relaxed) >= NODE_CAPACITY
    }

    /// Binary search over the live slots. Under optimism the result may be
    /// garbage (torn view) — callers validate before trusting it, and every
    /// index it produces is in bounds either way.
    fn search(&self, key: &[u8], probe_head: u64) -> Result<usize, usize> {
        let n = self.count.load(Ordering::Relaxed).min(NODE_CAPACITY);
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let h = self.heads[mid].load(Ordering::Relaxed);
            let ord = match h.cmp(&probe_head) {
                std::cmp::Ordering::Equal => {
                    let w = self.keys[mid].load(Ordering::Acquire);
                    // SAFETY: slot words name live arena bytes (module docs).
                    unsafe { unpack_key(w) }.cmp(key)
                }
                o => o,
            };
            match ord {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Child slot to descend into for `key` (equal separators go right).
    fn child_index(&self, key: &[u8], probe_head: u64) -> usize {
        match self.search(key, probe_head) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

/// A thread-safe ordered map from byte keys to word-sized values, built on
/// optimistic lock coupling (see module docs for the protocol).
pub struct BPlusTree<V> {
    /// Versioned latch over the root *pointer* slot: bumped on every root
    /// replacement, validated by every descent's handshake.
    root_latch: VersionLatch,
    root: AtomicPtr<Node>,
    /// Exact live-entry count: only ever updated while the owning leaf's
    /// latch is held, so it is linearizable with the structural change.
    len: AtomicUsize,
    arena: KeyArena,
    /// Every node ever allocated (splits never free); reclaimed in `Drop`.
    nodes: Mutex<Vec<*mut Node>>,
    _marker: PhantomData<fn() -> V>,
}

// SAFETY: all shared state is atomics or lock-protected; raw node pointers
// are owned by the tree and freed only in `Drop` (which takes `&mut self`);
// values cross threads as plain `u64` words (`IndexValue: Send + Sync`).
unsafe impl<V> Send for BPlusTree<V> {}
unsafe impl<V> Sync for BPlusTree<V> {}

impl<V: IndexValue> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: IndexValue> BPlusTree<V> {
    /// Empty tree.
    pub fn new() -> Self {
        crate::obs::register();
        let root = Box::into_raw(Node::new(true));
        BPlusTree {
            root_latch: VersionLatch::new(),
            root: AtomicPtr::new(root),
            len: AtomicUsize::new(0),
            arena: KeyArena::new(),
            nodes: Mutex::new(vec![root]),
            _marker: PhantomData,
        }
    }

    /// Number of live entries. Exact: the counter is updated while the
    /// owning leaf's latch is held, so it is linearizable with the insert
    /// or remove it reflects.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a node and record it for reclamation at drop.
    fn alloc_node(&self, leaf: bool) -> *mut Node {
        let p = Box::into_raw(Node::new(leaf));
        self.nodes.lock().push(p);
        p
    }

    /// The descent handshake at the root: returns `(root node, its
    /// version, root-pointer version)` or `None` on conflict. Validating
    /// the root latch *after* obtaining the node's version is what closes
    /// the stale-root window — a root swap in between bumps the root latch
    /// and fails the validation.
    #[inline]
    fn enter_root(&self) -> Option<(&Node, u64, u64)> {
        let v_root = self.root_latch.optimistic()?;
        let ptr = self.root.load(Ordering::Acquire);
        // SAFETY: nodes live until the tree drops.
        let node = unsafe { &*ptr };
        let v = node.latch.optimistic()?;
        if !self.root_latch.validate(v_root) {
            return None;
        }
        Some((node, v, v_root))
    }

    /// Count a restart and, every so often, yield so a preempted latch
    /// holder can finish (matters on oversubscribed cores).
    #[cold]
    fn note_restart(attempt: u32) {
        crate::obs::INDEX_DESCENT_RESTARTS.inc();
        if attempt.is_multiple_of(64) {
            std::thread::yield_now();
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        use std::cell::Cell;
        thread_local! {
            static LOOKUP_TICK: Cell<u8> = const { Cell::new(0) };
        }
        let sampled = LOOKUP_TICK.with(|c| {
            let n = c.get().wrapping_add(1);
            c.set(n);
            n & 7 == 0
        });
        let t0 = sampled.then(std::time::Instant::now);
        let r = self.get_inner(key);
        if let Some(t0) = t0 {
            crate::obs::INDEX_LOOKUP_NANOS.observe_duration(t0.elapsed());
        }
        r
    }

    fn get_inner(&self, key: &[u8]) -> Option<V> {
        let probe_head = head_of(key);
        let mut attempt = 0u32;
        'restart: loop {
            attempt += 1;
            if attempt > 1 {
                Self::note_restart(attempt);
            }
            let Some((mut node, mut v, _)) = self.enter_root() else { continue 'restart };
            loop {
                match &node.body {
                    Body::Inner { children } => {
                        let idx = node.child_index(key, probe_head).min(NODE_CAPACITY);
                        let child_ptr = children[idx].load(Ordering::Acquire);
                        if child_ptr.is_null() {
                            continue 'restart; // torn view of an in-progress split
                        }
                        // SAFETY: nodes live until the tree drops.
                        let child = unsafe { &*child_ptr };
                        let Some(v_child) = child.latch.optimistic() else { continue 'restart };
                        if !node.latch.validate(v) {
                            continue 'restart;
                        }
                        node = child;
                        v = v_child;
                    }
                    Body::Leaf { vals, .. } => {
                        let r = match node.search(key, probe_head) {
                            Ok(i) => Some(vals[i].load(Ordering::Relaxed)),
                            Err(_) => None,
                        };
                        if !node.latch.validate(v) {
                            continue 'restart;
                        }
                        return r.map(V::from_word);
                    }
                }
            }
        }
    }

    /// Insert if the key is absent. Returns `false` (and leaves the tree
    /// unchanged) if the key is already present — the unique-constraint path.
    pub fn insert_unique(&self, key: &[u8], val: V) -> bool {
        let w = val.to_word();
        self.update_leaf(key, |leaf, pos| match pos {
            Ok(_) => (false, false),
            Err(i) => {
                self.leaf_insert(leaf, i, key, w);
                self.len.fetch_add(1, Ordering::Relaxed);
                (true, true)
            }
        })
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn upsert(&self, key: &[u8], val: V) -> Option<V> {
        let w = val.to_word();
        self.update_leaf(key, |leaf, pos| match pos {
            Ok(i) => {
                let Body::Leaf { vals, .. } = &leaf.body else { unreachable!("leaf") };
                let old = vals[i].load(Ordering::Relaxed);
                vals[i].store(w, Ordering::Relaxed);
                (Some(V::from_word(old)), true)
            }
            Err(i) => {
                self.leaf_insert(leaf, i, key, w);
                self.len.fetch_add(1, Ordering::Relaxed);
                (None, true)
            }
        })
    }

    /// Remove a key; returns its value if it was present.
    pub fn remove(&self, key: &[u8]) -> Option<V> {
        self.update_leaf(key, |leaf, pos| match pos {
            Ok(i) => {
                let old = Self::leaf_remove(leaf, i);
                self.len.fetch_sub(1, Ordering::Relaxed);
                (Some(V::from_word(old)), true)
            }
            Err(_) => (None, false),
        })
    }

    /// Optimistic write descent: split-ahead on full nodes, then run `op`
    /// on the latched leaf with the key's search position. `op` returns
    /// `(result, modified)`; it is called exactly once, restarts happen
    /// only before the leaf latch is taken. The leaf is never full when
    /// `op` runs (preemptive splits), so inserts always have room.
    fn update_leaf<R>(
        &self,
        key: &[u8],
        mut op: impl FnMut(&Node, Result<usize, usize>) -> (R, bool),
    ) -> R {
        let probe_head = head_of(key);
        let mut attempt = 0u32;
        'restart: loop {
            attempt += 1;
            if attempt > 1 {
                Self::note_restart(attempt);
            }
            let Some((root, v_root_node, v_root)) = self.enter_root() else { continue 'restart };
            if root.is_full() {
                // Split the root under the root-pointer latch + node latch.
                if self.root_latch.try_lock_at(v_root) {
                    if root.latch.try_lock_at(v_root_node) {
                        self.split_root(root);
                        root.latch.unlock_modified();
                        self.root_latch.unlock_modified();
                    } else {
                        self.root_latch.unlock_clean();
                    }
                }
                continue 'restart;
            }
            let mut node = root;
            let mut v = v_root_node;
            loop {
                match &node.body {
                    Body::Inner { children } => {
                        let idx = node.child_index(key, probe_head).min(NODE_CAPACITY);
                        let child_ptr = children[idx].load(Ordering::Acquire);
                        if child_ptr.is_null() {
                            continue 'restart;
                        }
                        // SAFETY: nodes live until the tree drops.
                        let child = unsafe { &*child_ptr };
                        let Some(v_child) = child.latch.optimistic() else { continue 'restart };
                        if !node.latch.validate(v) {
                            continue 'restart;
                        }
                        if child.is_full() {
                            // Preemptive split: latch parent then child, both
                            // at their validated versions (single try each —
                            // no hold-and-spin, so no deadlock).
                            if node.latch.try_lock_at(v) {
                                if child.latch.try_lock_at(v_child) {
                                    let (sep_head, sep_word, right) = self.split_node(child);
                                    Self::insert_separator(node, idx, sep_head, sep_word, right);
                                    child.latch.unlock_modified();
                                    node.latch.unlock_modified();
                                } else {
                                    node.latch.unlock_clean();
                                }
                            }
                            continue 'restart;
                        }
                        node = child;
                        v = v_child;
                    }
                    Body::Leaf { .. } => {
                        if !node.latch.try_lock_at(v) {
                            continue 'restart;
                        }
                        let pos = node.search(key, probe_head);
                        let (r, modified) = op(node, pos);
                        if modified {
                            node.latch.unlock_modified();
                        } else {
                            node.latch.unlock_clean();
                        }
                        return r;
                    }
                }
            }
        }
    }

    /// Insert a key/value into a latched, non-full leaf at slot `i`,
    /// shifting greater slots right. Requires the leaf latch held.
    fn leaf_insert(&self, leaf: &Node, i: usize, key: &[u8], val_word: u64) {
        let n = leaf.count.load(Ordering::Relaxed);
        debug_assert!(n < NODE_CAPACITY, "preemptive splits keep leaves non-full");
        let Body::Leaf { vals, .. } = &leaf.body else { unreachable!("leaf") };
        let mut j = n;
        while j > i {
            leaf.heads[j].store(leaf.heads[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
            leaf.keys[j].store(leaf.keys[j - 1].load(Ordering::Acquire), Ordering::Release);
            vals[j].store(vals[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
            j -= 1;
        }
        let ptr = self.arena.alloc(key);
        leaf.heads[i].store(head_of(key), Ordering::Relaxed);
        // Release-publishing the packed word orders the arena byte copy
        // before any acquire-load of this slot.
        leaf.keys[i].store(pack_key(ptr, key.len()), Ordering::Release);
        vals[i].store(val_word, Ordering::Relaxed);
        leaf.count.store(n + 1, Ordering::Relaxed);
    }

    /// Remove slot `i` from a latched leaf, shifting greater slots left.
    /// Returns the removed value word. Requires the leaf latch held.
    fn leaf_remove(leaf: &Node, i: usize) -> u64 {
        let n = leaf.count.load(Ordering::Relaxed);
        debug_assert!(i < n);
        let Body::Leaf { vals, .. } = &leaf.body else { unreachable!("leaf") };
        let old = vals[i].load(Ordering::Relaxed);
        for j in i..n - 1 {
            leaf.heads[j].store(leaf.heads[j + 1].load(Ordering::Relaxed), Ordering::Relaxed);
            leaf.keys[j].store(leaf.keys[j + 1].load(Ordering::Acquire), Ordering::Release);
            vals[j].store(vals[j + 1].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        leaf.count.store(n - 1, Ordering::Relaxed);
        old
    }

    /// Split a latched, full node; returns the separator (head + packed
    /// word) and the new right sibling. For leaves the separator is the
    /// right node's first key; for inner nodes `keys[mid]` moves up.
    /// Requires `node`'s latch held (plus the parent's, at the call sites).
    fn split_node(&self, node: &Node) -> (u64, u64, *mut Node) {
        let n = node.count.load(Ordering::Relaxed);
        debug_assert_eq!(n, NODE_CAPACITY);
        let mid = n / 2;
        match &node.body {
            Body::Leaf { vals, next } => {
                let right_ptr = self.alloc_node(true);
                // SAFETY: freshly allocated, unpublished — we are the only
                // accessor until the stores below publish it.
                let right = unsafe { &*right_ptr };
                let Body::Leaf { vals: rvals, next: rnext } = &right.body else {
                    unreachable!("leaf")
                };
                for j in mid..n {
                    right.heads[j - mid]
                        .store(node.heads[j].load(Ordering::Relaxed), Ordering::Relaxed);
                    right.keys[j - mid]
                        .store(node.keys[j].load(Ordering::Acquire), Ordering::Release);
                    rvals[j - mid].store(vals[j].load(Ordering::Relaxed), Ordering::Relaxed);
                }
                rnext.store(next.load(Ordering::Acquire), Ordering::Release);
                right.count.store(n - mid, Ordering::Relaxed);
                let sep_head = node.heads[mid].load(Ordering::Relaxed);
                let sep_word = node.keys[mid].load(Ordering::Acquire);
                next.store(right_ptr, Ordering::Release);
                node.count.store(mid, Ordering::Relaxed);
                (sep_head, sep_word, right_ptr)
            }
            Body::Inner { children } => {
                let right_ptr = self.alloc_node(false);
                // SAFETY: freshly allocated, unpublished (as above).
                let right = unsafe { &*right_ptr };
                let Body::Inner { children: rchildren } = &right.body else {
                    unreachable!("inner")
                };
                // keys[mid] moves up; right gets keys[mid+1..n] and
                // children[mid+1..=n].
                for j in mid + 1..n {
                    right.heads[j - mid - 1]
                        .store(node.heads[j].load(Ordering::Relaxed), Ordering::Relaxed);
                    right.keys[j - mid - 1]
                        .store(node.keys[j].load(Ordering::Acquire), Ordering::Release);
                }
                for j in mid + 1..=n {
                    rchildren[j - mid - 1]
                        .store(children[j].load(Ordering::Acquire), Ordering::Release);
                }
                right.count.store(n - mid - 1, Ordering::Relaxed);
                let sep_head = node.heads[mid].load(Ordering::Relaxed);
                let sep_word = node.keys[mid].load(Ordering::Acquire);
                node.count.store(mid, Ordering::Relaxed);
                (sep_head, sep_word, right_ptr)
            }
        }
    }

    /// Insert a separator + right child into a latched, non-full inner
    /// node at key slot `idx` / child slot `idx + 1`. Requires the latch.
    fn insert_separator(parent: &Node, idx: usize, sep_head: u64, sep_word: u64, right: *mut Node) {
        let n = parent.count.load(Ordering::Relaxed);
        debug_assert!(n < NODE_CAPACITY, "descents never enter a full node");
        let Body::Inner { children } = &parent.body else { unreachable!("inner") };
        let mut j = n;
        while j > idx {
            parent.heads[j].store(parent.heads[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
            parent.keys[j].store(parent.keys[j - 1].load(Ordering::Acquire), Ordering::Release);
            j -= 1;
        }
        let mut j = n + 1;
        while j > idx + 1 {
            children[j].store(children[j - 1].load(Ordering::Acquire), Ordering::Release);
            j -= 1;
        }
        parent.heads[idx].store(sep_head, Ordering::Relaxed);
        parent.keys[idx].store(sep_word, Ordering::Release);
        children[idx + 1].store(right, Ordering::Release);
        parent.count.store(n + 1, Ordering::Relaxed);
    }

    /// Replace a full root with a fresh inner node over its two halves.
    /// Requires both the root-pointer latch and the root node's latch;
    /// the caller's `unlock_modified` on both publishes the swap.
    fn split_root(&self, root: &Node) {
        let (sep_head, sep_word, right) = self.split_node(root);
        let new_root_ptr = self.alloc_node(false);
        // SAFETY: freshly allocated, unpublished until the store below.
        let new_root = unsafe { &*new_root_ptr };
        let Body::Inner { children } = &new_root.body else { unreachable!("inner") };
        new_root.heads[0].store(sep_head, Ordering::Relaxed);
        new_root.keys[0].store(sep_word, Ordering::Release);
        children[0].store(root as *const Node as *mut Node, Ordering::Release);
        children[1].store(right, Ordering::Release);
        new_root.count.store(1, Ordering::Relaxed);
        self.root.store(new_root_ptr, Ordering::Release);
    }

    /// Optimistic descent to the leaf whose range covers `key` (or one to
    /// its left, if a racing split just moved the range right — the scan's
    /// next-chain walk absorbs that).
    fn find_leaf(&self, key: &[u8]) -> *const Node {
        let probe_head = head_of(key);
        let mut attempt = 0u32;
        'restart: loop {
            attempt += 1;
            if attempt > 1 {
                Self::note_restart(attempt);
            }
            let Some((mut node, mut v, _)) = self.enter_root() else { continue 'restart };
            loop {
                match &node.body {
                    Body::Inner { children } => {
                        let idx = node.child_index(key, probe_head).min(NODE_CAPACITY);
                        let child_ptr = children[idx].load(Ordering::Acquire);
                        if child_ptr.is_null() {
                            continue 'restart;
                        }
                        // SAFETY: nodes live until the tree drops.
                        let child = unsafe { &*child_ptr };
                        let Some(v_child) = child.latch.optimistic() else { continue 'restart };
                        if !node.latch.validate(v) {
                            continue 'restart;
                        }
                        node = child;
                        v = v_child;
                    }
                    Body::Leaf { .. } => return node as *const Node,
                }
            }
        }
    }

    /// Snapshot a leaf's live `(key word, value word)` pairs and its next
    /// pointer. Caller synchronizes (optimistic + validate, or the latch).
    fn capture_into(leaf: &Node, snap: &mut Vec<(u64, u64)>) -> *mut Node {
        let Body::Leaf { vals, next } = &leaf.body else { unreachable!("leaf") };
        let n = leaf.count.load(Ordering::Relaxed).min(NODE_CAPACITY);
        for i in 0..n {
            snap.push((leaf.keys[i].load(Ordering::Acquire), vals[i].load(Ordering::Relaxed)));
        }
        next.load(Ordering::Acquire)
    }

    /// Capture one leaf for a scan: a few optimistic tries, then the
    /// locked fallback (counted in `index_scan_fallbacks`) — scans never
    /// restart from the root once they are emitting. Returns the captured
    /// next pointer.
    fn capture_leaf(leaf: &Node, snap: &mut Vec<(u64, u64)>) -> *mut Node {
        for _ in 0..SCAN_OPTIMISTIC_TRIES {
            snap.clear();
            let Some(v) = leaf.latch.optimistic() else {
                std::hint::spin_loop();
                continue;
            };
            let next = Self::capture_into(leaf, snap);
            if leaf.latch.validate(v) {
                return next;
            }
        }
        crate::obs::INDEX_SCAN_FALLBACKS.inc();
        leaf.latch.lock();
        snap.clear();
        let next = Self::capture_into(leaf, snap);
        leaf.latch.unlock_clean();
        next
    }

    /// Range scan over `[lo, hi)` (hi `None` = unbounded). Calls `f(key, val)`
    /// for each entry in order; stop early by returning `false`.
    ///
    /// Each leaf is emitted from a validated snapshot, so `f` never sees a
    /// torn node and is never re-invoked for the same snapshot. Entries
    /// inserted behind the scan cursor after their leaf was captured may be
    /// missed (same non-snapshot semantics as the crabbing tree).
    pub fn scan_range(&self, lo: &[u8], hi: Option<&[u8]>, mut f: impl FnMut(&[u8], &V) -> bool) {
        let mut cur = self.find_leaf(lo);
        let mut snap: Vec<(u64, u64)> = Vec::with_capacity(NODE_CAPACITY);
        while !cur.is_null() {
            // SAFETY: nodes live until the tree drops.
            let leaf = unsafe { &*cur };
            let next = Self::capture_leaf(leaf, &mut snap);
            for &(kw, vw) in snap.iter() {
                // SAFETY: validated slot words name live arena bytes.
                let k = unsafe { unpack_key(kw) };
                if k < lo {
                    continue;
                }
                if let Some(hi) = hi {
                    if k >= hi {
                        return;
                    }
                }
                let v = V::from_word(vw);
                if !f(k, &v) {
                    return;
                }
            }
            cur = next;
        }
    }

    /// Collect up to `limit` entries in `[lo, hi)`.
    pub fn range_collect(&self, lo: &[u8], hi: Option<&[u8]>, limit: usize) -> Vec<(Key, V)> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        self.scan_range(lo, hi, |k, v| {
            out.push((k.to_vec(), *v));
            out.len() < limit
        });
        out
    }

    /// Collect every entry whose key starts with `prefix`.
    pub fn prefix_collect(&self, prefix: &[u8], limit: usize) -> Vec<(Key, V)> {
        let hi = crate::key::prefix_upper_bound(prefix);
        self.range_collect(prefix, hi.as_deref(), limit)
    }

    /// First entry at or after `lo` (useful for min-lookups, e.g. the oldest
    /// NEW_ORDER in TPC-C Delivery).
    pub fn first_at_or_after(&self, lo: &[u8]) -> Option<(Key, V)> {
        let mut out = None;
        self.scan_range(lo, None, |k, v| {
            out = Some((k.to_vec(), *v));
            false
        });
        out
    }

    /// Depth of the tree (test/debug aid; optimistic walk down the left
    /// edge, restarting on conflict like any other descent).
    pub fn depth(&self) -> usize {
        let mut attempt = 0u32;
        'restart: loop {
            attempt += 1;
            if attempt > 1 {
                Self::note_restart(attempt);
            }
            let Some((mut node, mut v, _)) = self.enter_root() else { continue 'restart };
            let mut d = 1;
            loop {
                match &node.body {
                    Body::Leaf { .. } => return d,
                    Body::Inner { children } => {
                        let child_ptr = children[0].load(Ordering::Acquire);
                        if child_ptr.is_null() {
                            continue 'restart;
                        }
                        // SAFETY: nodes live until the tree drops.
                        let child = unsafe { &*child_ptr };
                        let Some(v_child) = child.latch.optimistic() else { continue 'restart };
                        if !node.latch.validate(v) {
                            continue 'restart;
                        }
                        node = child;
                        v = v_child;
                        d += 1;
                    }
                }
            }
        }
    }
}

impl<V> Drop for BPlusTree<V> {
    fn drop(&mut self) {
        let nodes = self.nodes.get_mut();
        for &p in nodes.iter() {
            // SAFETY: every pointer came from `Box::into_raw` in
            // `alloc_node`/`new` and is dropped exactly once, here.
            drop(unsafe { Box::from_raw(p) });
        }
        nodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;
    use std::sync::Arc;

    fn key(i: i64) -> Vec<u8> {
        KeyBuilder::new().add_i64(i).finish()
    }

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&key(1)), None);
        assert_eq!(t.remove(&key(1)), None);
        assert_eq!(t.range_collect(&key(0), None, 10), vec![]);
    }

    #[test]
    fn insert_get_many() {
        let t = BPlusTree::new();
        let n = 10_000i64;
        for i in 0..n {
            assert!(t.insert_unique(&key(i * 7 % n), i as u64));
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.depth() > 1, "tree should have split");
        for i in 0..n {
            assert_eq!(t.get(&key(i * 7 % n)), Some(i as u64), "key {i}");
        }
        assert_eq!(t.get(&key(n + 1)), None);
    }

    #[test]
    fn unique_rejects_duplicates() {
        let t = BPlusTree::new();
        assert!(t.insert_unique(&key(5), 1u64));
        assert!(!t.insert_unique(&key(5), 2u64));
        assert_eq!(t.get(&key(5)), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn upsert_overwrites() {
        let t = BPlusTree::new();
        assert_eq!(t.upsert(&key(1), 10u64), None);
        assert_eq!(t.upsert(&key(1), 20u64), Some(10));
        assert_eq!(t.get(&key(1)), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_and_reinsert() {
        let t = BPlusTree::new();
        for i in 0..1000 {
            t.insert_unique(&key(i), i as u64);
        }
        for i in (0..1000).step_by(2) {
            assert_eq!(t.remove(&key(i)), Some(i as u64));
        }
        assert_eq!(t.len(), 500);
        for i in 0..1000 {
            assert_eq!(t.get(&key(i)).is_some(), i % 2 == 1);
        }
        for i in (0..1000).step_by(2) {
            assert!(t.insert_unique(&key(i), 999));
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn range_scan_ordered() {
        let t = BPlusTree::new();
        let mut ids: Vec<i64> = (0..5000).collect();
        // Insert in a scrambled order.
        let mut rng = mainline_common::rng::Xoshiro256::seed_from_u64(1);
        rng.shuffle(&mut ids);
        for &i in &ids {
            t.insert_unique(&key(i), i as u64);
        }
        let got = t.range_collect(&key(100), Some(&key(200)), usize::MAX);
        assert_eq!(got.len(), 100);
        for (i, (k, v)) in got.iter().enumerate() {
            assert_eq!(*k, key(100 + i as i64));
            assert_eq!(*v, 100 + i as u64);
        }
    }

    #[test]
    fn range_scan_limit_and_early_stop() {
        let t = BPlusTree::new();
        for i in 0..100 {
            t.insert_unique(&key(i), i as u64);
        }
        assert_eq!(t.range_collect(&key(0), None, 7).len(), 7);
        assert_eq!(t.first_at_or_after(&key(50)).unwrap().1, 50);
        assert_eq!(t.first_at_or_after(&key(1000)), None);
    }

    #[test]
    fn prefix_scan_composite() {
        let t = BPlusTree::new();
        for d in 0..10i32 {
            for o in 0..20i64 {
                let k = KeyBuilder::new().add_i32(d).add_i64(o).finish();
                t.insert_unique(&k, (d as u64) * 100 + o as u64);
            }
        }
        let prefix = KeyBuilder::new().add_i32(4).finish();
        let got = t.prefix_collect(&prefix, usize::MAX);
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|(_, v)| (400..420).contains(v)));
    }

    #[test]
    fn matches_btreemap_model_random_ops() {
        use std::collections::BTreeMap;
        let t = BPlusTree::new();
        let mut model = BTreeMap::new();
        let mut rng = mainline_common::rng::Xoshiro256::seed_from_u64(42);
        for _ in 0..20_000 {
            let k = key(rng.int_range(0, 500));
            match rng.next_below(3) {
                0 => {
                    let inserted = t.insert_unique(&k, 7u64);
                    let model_inserted = !model.contains_key(&k);
                    if model_inserted {
                        model.insert(k.clone(), 7u64);
                    }
                    assert_eq!(inserted, model_inserted);
                }
                1 => {
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    assert_eq!(t.get(&k), model.get(&k).copied());
                }
            }
        }
        assert_eq!(t.len(), model.len());
        let all = t.range_collect(&[], None, usize::MAX);
        let model_all: Vec<_> = model.into_iter().collect();
        assert_eq!(all, model_all);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = Arc::new(BPlusTree::new());
        let threads = 8;
        let per = 5000;
        let mut handles = vec![];
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = key((tid * per + i) as i64);
                    assert!(t.insert_unique(&k, (tid * per + i) as u64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), threads * per);
        for i in 0..(threads * per) as i64 {
            assert_eq!(t.get(&key(i)), Some(i as u64), "key {i}");
        }
    }

    #[test]
    fn concurrent_mixed_readers_writers_scanners() {
        let t = Arc::new(BPlusTree::new());
        for i in 0..2000 {
            t.insert_unique(&key(i), i as u64);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = vec![];
        // Writers insert/remove high keys.
        for tid in 0..3u64 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let k = key(10_000 + (tid as i64) * 1_000_000 + i);
                    t.insert_unique(&k, i as u64);
                    if i % 2 == 0 {
                        t.remove(&k);
                    }
                    i += 1;
                }
            }));
        }
        // Scanners check the stable low range is intact and ordered.
        for _ in 0..3 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let got = t.range_collect(&key(0), Some(&key(2000)), usize::MAX);
                    assert_eq!(got.len(), 2000);
                    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn duplicate_insert_race_exactly_one_wins() {
        let t = Arc::new(BPlusTree::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            let barrier = Arc::clone(&barrier);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                for i in 0..500i64 {
                    if i % 50 == 0 {
                        barrier.wait();
                    }
                    if t.insert_unique(&key(i), tid) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 500);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn head_truncation_orders_colliding_and_short_keys() {
        // Keys sharing an 8+ byte prefix force the equal-heads full-compare
        // path; sub-8-byte keys exercise zero padding; an 8-byte-boundary
        // pair checks the prefix property (head("longerXY") vs "longer").
        let t: BPlusTree<u64> = BPlusTree::new();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for i in 0..500u64 {
            keys.push(format!("shared-prefix-beyond-eight-bytes-{i:05}").into_bytes());
        }
        keys.push(b"a".to_vec());
        keys.push(b"ab".to_vec());
        keys.push(b"abcdefgh".to_vec());
        keys.push(b"abcdefghi".to_vec());
        keys.push(Vec::new()); // empty key
        for (i, k) in keys.iter().enumerate() {
            assert!(t.insert_unique(k, i as u64), "insert {i}");
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "get {i}");
        }
        let all = t.range_collect(&[], None, usize::MAX);
        assert_eq!(all.len(), keys.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "memcmp order preserved");
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(all.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn len_is_exact_after_concurrent_churn() {
        // Satellite: len() is linearizable — the counter moves inside the
        // leaf latch, so paired insert+remove churn must land back exactly.
        let t = Arc::new(BPlusTree::new());
        for i in 0..512 {
            t.insert_unique(&key(i), i as u64);
        }
        let mut handles = vec![];
        for tid in 0..4i64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for round in 0..300i64 {
                    let k = key(100_000 + tid * 1_000_000 + round);
                    assert!(t.insert_unique(&k, 1));
                    assert_eq!(t.remove(&k), Some(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 512);
    }

    #[test]
    fn reader_restarts_deterministically_while_root_latch_held() {
        // Deterministic restart: hold the root-pointer latch; a get() must
        // spin in restarts (counted) until release, then still answer right.
        let t = Arc::new(BPlusTree::new());
        for i in 0..100 {
            t.insert_unique(&key(i), i as u64);
        }
        let before = crate::obs::INDEX_DESCENT_RESTARTS.get();
        let v = t.root_latch.optimistic().unwrap();
        assert!(t.root_latch.try_lock_at(v));
        let reader = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.get(&key(63)))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        t.root_latch.unlock_clean();
        assert_eq!(reader.join().unwrap(), Some(63));
        assert!(
            crate::obs::INDEX_DESCENT_RESTARTS.get() > before,
            "the blocked reader must have restarted at least once"
        );
    }

    #[test]
    fn scan_takes_locked_fallback_when_leaf_latch_held() {
        // Deterministic fallback: hold a leaf latch; capture_leaf must burn
        // its optimistic tries, count a fallback, then block in lock() until
        // release — and still capture a complete snapshot.
        let t: BPlusTree<u64> = BPlusTree::new();
        for i in 0..10 {
            t.insert_unique(&key(i), i as u64);
        }
        // Ten keys fit in one leaf, so the root *is* the leaf.
        let leaf: &'static Node = unsafe { &*t.root.load(Ordering::Acquire) };
        let v = leaf.latch.optimistic().unwrap();
        assert!(leaf.latch.try_lock_at(v));
        let before = crate::obs::INDEX_SCAN_FALLBACKS.get();
        let capturer = std::thread::spawn(move || {
            let mut snap = Vec::new();
            let next = BPlusTree::<u64>::capture_leaf(leaf, &mut snap);
            (snap.len(), next.is_null())
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        leaf.latch.unlock_clean();
        let (n, next_null) = capturer.join().unwrap();
        assert_eq!(n, 10, "fallback capture must see the whole leaf");
        assert!(next_null, "single-leaf tree has no right sibling");
        assert!(
            crate::obs::INDEX_SCAN_FALLBACKS.get() > before,
            "the blocked capture must have taken the locked fallback"
        );
    }

    #[test]
    fn values_of_other_word_types_round_trip() {
        let t: BPlusTree<i64> = BPlusTree::new();
        t.insert_unique(&key(1), -42i64);
        assert_eq!(t.get(&key(1)), Some(-42));
        let t: BPlusTree<u32> = BPlusTree::new();
        t.upsert(&key(1), 7u32);
        assert_eq!(t.get(&key(1)), Some(7));
        let t: BPlusTree<usize> = BPlusTree::new();
        t.insert_unique(&key(1), usize::MAX);
        assert_eq!(t.get(&key(1)), Some(usize::MAX));
    }
}
