//! Concurrent B+-tree with per-node reader-writer latches.
//!
//! Concurrency protocol:
//!
//! * **Readers** descend with hand-over-hand read latches (lock child, release
//!   parent).
//! * **Writers** descend with hand-over-hand write latches and *preemptively
//!   split* any full child before entering it, so a writer never holds more
//!   than two node latches (parent + child) and never needs to re-traverse.
//! * **Deletes** are lazy: keys are removed from leaves without rebalancing,
//!   so leaf sibling pointers are immutable once set and range scans can
//!   hand-over-hand along the leaf level without deadlock.
//!
//! Lock ordering is strictly top-down / left-to-right, which makes the
//! protocol deadlock-free.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Max keys per node before a preemptive split.
const NODE_CAPACITY: usize = 64;

type Key = Vec<u8>;
type NodeRef<V> = Arc<RwLock<Node<V>>>;

enum Node<V> {
    Leaf {
        keys: Vec<Key>,
        vals: Vec<V>,
        next: Option<NodeRef<V>>,
    },
    Inner {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
        keys: Vec<Key>,
        children: Vec<NodeRef<V>>,
    },
}

impl<V: Clone> Node<V> {
    fn is_full(&self) -> bool {
        match self {
            Node::Leaf { keys, .. } => keys.len() >= NODE_CAPACITY,
            Node::Inner { keys, .. } => keys.len() >= NODE_CAPACITY,
        }
    }

    /// Split a full node; returns (separator key, right sibling).
    /// For leaves the separator is the first key of the right node.
    fn split(&mut self) -> (Key, NodeRef<V>) {
        match self {
            Node::Leaf { keys, vals, next } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0].clone();
                let right = Arc::new(RwLock::new(Node::Leaf {
                    keys: right_keys,
                    vals: right_vals,
                    next: next.take(),
                }));
                *next = Some(Arc::clone(&right));
                (sep, right)
            }
            Node::Inner { keys, children } => {
                let mid = keys.len() / 2;
                // keys[mid] moves up; right gets keys[mid+1..], children[mid+1..].
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().unwrap();
                let right_children = children.split_off(mid + 1);
                let right = Arc::new(RwLock::new(Node::Inner {
                    keys: right_keys,
                    children: right_children,
                }));
                (sep, right)
            }
        }
    }

    /// Child index to descend into for `key`.
    fn child_index(keys: &[Key], key: &[u8]) -> usize {
        match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
            Ok(i) => i + 1, // equal separators go right
            Err(i) => i,
        }
    }
}

/// A thread-safe ordered map from byte keys to values.
pub struct BPlusTree<V> {
    root: RwLock<NodeRef<V>>,
    len: AtomicUsize,
}

impl<V: Clone + 'static> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + 'static> BPlusTree<V> {
    /// Empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: RwLock::new(Arc::new(RwLock::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }))),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of live entries (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        let root_ptr = self.root.read();
        let mut cur = Arc::clone(&root_ptr);
        drop(root_ptr);
        let mut guard = cur.read_arc();
        loop {
            match &*guard {
                Node::Leaf { keys, vals, .. } => {
                    return keys
                        .binary_search_by(|k| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| vals[i].clone());
                }
                Node::Inner { keys, children } => {
                    let idx = Node::<V>::child_index(keys, key);
                    let child = Arc::clone(&children[idx]);
                    let child_guard = child.read_arc();
                    drop(guard);
                    cur = child;
                    let _ = &cur; // cur kept alive by guard's Arc already
                    guard = child_guard;
                }
            }
        }
    }

    /// Insert if the key is absent. Returns `false` (and leaves the tree
    /// unchanged) if the key is already present — the unique-constraint path.
    pub fn insert_unique(&self, key: &[u8], val: V) -> bool {
        self.write_leaf(key, |keys, vals, pos| match pos {
            Ok(_) => false,
            Err(i) => {
                keys.insert(i, key.to_vec());
                vals.insert(i, val);
                true
            }
        })
        .inspect(|&inserted| {
            if inserted {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap()
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn upsert(&self, key: &[u8], val: V) -> Option<V> {
        let prev = self
            .write_leaf(key, |keys, vals, pos| match pos {
                Ok(i) => Some(std::mem::replace(&mut vals[i], val)),
                Err(i) => {
                    keys.insert(i, key.to_vec());
                    vals.insert(i, val);
                    None
                }
            })
            .unwrap();
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        prev
    }

    /// Remove a key; returns its value if it was present.
    pub fn remove(&self, key: &[u8]) -> Option<V> {
        let removed = self
            .write_leaf(key, |keys, vals, pos| match pos {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            })
            .unwrap();
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Descend to the leaf owning `key` with write-crabbing and preemptive
    /// splits, then run `f(keys, vals, binary_search_result)` on the leaf.
    fn write_leaf<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&mut Vec<Key>, &mut Vec<V>, std::result::Result<usize, usize>) -> R,
    ) -> Option<R> {
        // Handle a full root first (the only place the root pointer changes).
        loop {
            let root_ptr = self.root.upgradable_read();
            let root = Arc::clone(&root_ptr);
            let root_guard = root.write_arc();
            if root_guard.is_full() {
                let mut root_ptr = parking_lot::RwLockUpgradableReadGuard::upgrade(root_ptr);
                // Re-check under the write lock on the root pointer: another
                // writer may have already replaced the root.
                if !Arc::ptr_eq(&root, &*root_ptr) {
                    continue;
                }
                let mut old_root = root_guard;
                let (sep, right) = old_root.split();
                let new_root = Arc::new(RwLock::new(Node::Inner {
                    keys: vec![sep],
                    children: vec![Arc::clone(&root), right],
                }));
                *root_ptr = new_root;
                // Restart: descend through the new root.
                continue;
            }
            drop(root_ptr);
            // Descend holding only `guard` (parent) at a time.
            let mut guard = root_guard;
            loop {
                // Preemptively split the child we are about to enter.
                let next = match &mut *guard {
                    Node::Leaf { keys, vals, .. } => {
                        let pos = keys.binary_search_by(|k| k.as_slice().cmp(key));
                        return Some(f(keys, vals, pos));
                    }
                    Node::Inner { keys, children } => {
                        let idx = Node::<V>::child_index(keys, key);
                        let child = Arc::clone(&children[idx]);
                        let mut child_guard = child.write_arc();
                        if child_guard.is_full() {
                            let (sep, right) = child_guard.split();
                            // Parent has room (invariant: we never descend
                            // into a full node).
                            keys.insert(idx, sep.clone());
                            children.insert(idx + 1, Arc::clone(&right));
                            if key >= sep.as_slice() {
                                drop(child_guard);

                                right.write_arc()
                            } else {
                                child_guard
                            }
                        } else {
                            child_guard
                        }
                    }
                };
                guard = next;
            }
        }
    }

    /// Range scan over `[lo, hi)` (hi `None` = unbounded). Calls `f(key, val)`
    /// for each entry in order; stop early by returning `false`.
    pub fn scan_range(&self, lo: &[u8], hi: Option<&[u8]>, mut f: impl FnMut(&[u8], &V) -> bool) {
        // Descend to the leaf containing lo with read-crabbing.
        let root_ptr = self.root.read();
        let cur = Arc::clone(&root_ptr);
        drop(root_ptr);
        let mut guard = cur.read_arc();
        while let Node::Inner { keys, children } = &*guard {
            let idx = Node::<V>::child_index(keys, lo);
            let child = Arc::clone(&children[idx]);
            let child_guard = child.read_arc();
            drop(guard);
            guard = child_guard;
        }
        // Walk the leaf level.
        loop {
            let next = match &*guard {
                Node::Leaf { keys, vals, next } => {
                    let start = match keys.binary_search_by(|k| k.as_slice().cmp(lo)) {
                        Ok(i) => i,
                        Err(i) => i,
                    };
                    for i in start..keys.len() {
                        if let Some(hi) = hi {
                            if keys[i].as_slice() >= hi {
                                return;
                            }
                        }
                        if !f(&keys[i], &vals[i]) {
                            return;
                        }
                    }
                    match next {
                        Some(n) => Arc::clone(n),
                        None => return,
                    }
                }
                Node::Inner { .. } => unreachable!("leaf level only"),
            };
            let next_guard = next.read_arc();
            drop(guard);
            guard = next_guard;
        }
    }

    /// Collect up to `limit` entries in `[lo, hi)`.
    pub fn range_collect(&self, lo: &[u8], hi: Option<&[u8]>, limit: usize) -> Vec<(Key, V)> {
        let mut out = Vec::new();
        self.scan_range(lo, hi, |k, v| {
            out.push((k.to_vec(), v.clone()));
            out.len() < limit
        });
        out
    }

    /// Collect every entry whose key starts with `prefix`.
    pub fn prefix_collect(&self, prefix: &[u8], limit: usize) -> Vec<(Key, V)> {
        let hi = crate::key::prefix_upper_bound(prefix);
        self.range_collect(prefix, hi.as_deref(), limit)
    }

    /// First entry at or after `lo` (useful for min-lookups, e.g. the oldest
    /// NEW_ORDER in TPC-C Delivery).
    pub fn first_at_or_after(&self, lo: &[u8]) -> Option<(Key, V)> {
        let mut out = None;
        self.scan_range(lo, None, |k, v| {
            out = Some((k.to_vec(), v.clone()));
            false
        });
        out
    }

    /// Depth of the tree (test/debug aid; takes read locks down the left edge).
    pub fn depth(&self) -> usize {
        let root_ptr = self.root.read();
        let cur = Arc::clone(&root_ptr);
        drop(root_ptr);
        let mut d = 1;
        let mut guard = cur.read_arc();
        loop {
            match &*guard {
                Node::Leaf { .. } => return d,
                Node::Inner { children, .. } => {
                    let child = Arc::clone(&children[0]);
                    let child_guard = child.read_arc();
                    drop(guard);
                    guard = child_guard;
                    d += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn key(i: i64) -> Vec<u8> {
        KeyBuilder::new().add_i64(i).finish()
    }

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&key(1)), None);
        assert_eq!(t.remove(&key(1)), None);
        assert_eq!(t.range_collect(&key(0), None, 10), vec![]);
    }

    #[test]
    fn insert_get_many() {
        let t = BPlusTree::new();
        let n = 10_000i64;
        for i in 0..n {
            assert!(t.insert_unique(&key(i * 7 % n), i as u64));
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.depth() > 1, "tree should have split");
        for i in 0..n {
            assert_eq!(t.get(&key(i * 7 % n)), Some(i as u64), "key {i}");
        }
        assert_eq!(t.get(&key(n + 1)), None);
    }

    #[test]
    fn unique_rejects_duplicates() {
        let t = BPlusTree::new();
        assert!(t.insert_unique(&key(5), 1u64));
        assert!(!t.insert_unique(&key(5), 2u64));
        assert_eq!(t.get(&key(5)), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn upsert_overwrites() {
        let t = BPlusTree::new();
        assert_eq!(t.upsert(&key(1), 10u64), None);
        assert_eq!(t.upsert(&key(1), 20u64), Some(10));
        assert_eq!(t.get(&key(1)), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_and_reinsert() {
        let t = BPlusTree::new();
        for i in 0..1000 {
            t.insert_unique(&key(i), i as u64);
        }
        for i in (0..1000).step_by(2) {
            assert_eq!(t.remove(&key(i)), Some(i as u64));
        }
        assert_eq!(t.len(), 500);
        for i in 0..1000 {
            assert_eq!(t.get(&key(i)).is_some(), i % 2 == 1);
        }
        for i in (0..1000).step_by(2) {
            assert!(t.insert_unique(&key(i), 999));
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn range_scan_ordered() {
        let t = BPlusTree::new();
        let mut ids: Vec<i64> = (0..5000).collect();
        // Insert in a scrambled order.
        let mut rng = mainline_common::rng::Xoshiro256::seed_from_u64(1);
        rng.shuffle(&mut ids);
        for &i in &ids {
            t.insert_unique(&key(i), i as u64);
        }
        let got = t.range_collect(&key(100), Some(&key(200)), usize::MAX);
        assert_eq!(got.len(), 100);
        for (i, (k, v)) in got.iter().enumerate() {
            assert_eq!(*k, key(100 + i as i64));
            assert_eq!(*v, 100 + i as u64);
        }
    }

    #[test]
    fn range_scan_limit_and_early_stop() {
        let t = BPlusTree::new();
        for i in 0..100 {
            t.insert_unique(&key(i), i as u64);
        }
        assert_eq!(t.range_collect(&key(0), None, 7).len(), 7);
        assert_eq!(t.first_at_or_after(&key(50)).unwrap().1, 50);
        assert_eq!(t.first_at_or_after(&key(1000)), None);
    }

    #[test]
    fn prefix_scan_composite() {
        let t = BPlusTree::new();
        for d in 0..10i32 {
            for o in 0..20i64 {
                let k = KeyBuilder::new().add_i32(d).add_i64(o).finish();
                t.insert_unique(&k, (d as u64) * 100 + o as u64);
            }
        }
        let prefix = KeyBuilder::new().add_i32(4).finish();
        let got = t.prefix_collect(&prefix, usize::MAX);
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|(_, v)| (400..420).contains(v)));
    }

    #[test]
    fn matches_btreemap_model_random_ops() {
        use std::collections::BTreeMap;
        let t = BPlusTree::new();
        let mut model = BTreeMap::new();
        let mut rng = mainline_common::rng::Xoshiro256::seed_from_u64(42);
        for _ in 0..20_000 {
            let k = key(rng.int_range(0, 500));
            match rng.next_below(3) {
                0 => {
                    let inserted = t.insert_unique(&k, 7u64);
                    let model_inserted = !model.contains_key(&k);
                    if model_inserted {
                        model.insert(k.clone(), 7u64);
                    }
                    assert_eq!(inserted, model_inserted);
                }
                1 => {
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    assert_eq!(t.get(&k), model.get(&k).copied());
                }
            }
        }
        assert_eq!(t.len(), model.len());
        let all = t.range_collect(&[], None, usize::MAX);
        let model_all: Vec<_> = model.into_iter().collect();
        assert_eq!(all, model_all);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = Arc::new(BPlusTree::new());
        let threads = 8;
        let per = 5000;
        let mut handles = vec![];
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = key((tid * per + i) as i64);
                    assert!(t.insert_unique(&k, (tid * per + i) as u64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), threads * per);
        for i in 0..(threads * per) as i64 {
            assert_eq!(t.get(&key(i)), Some(i as u64), "key {i}");
        }
    }

    #[test]
    fn concurrent_mixed_readers_writers_scanners() {
        let t = Arc::new(BPlusTree::new());
        for i in 0..2000 {
            t.insert_unique(&key(i), i as u64);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = vec![];
        // Writers insert/remove high keys.
        for tid in 0..3u64 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let k = key(10_000 + (tid as i64) * 1_000_000 + i);
                    t.insert_unique(&k, i as u64);
                    if i % 2 == 0 {
                        t.remove(&k);
                    }
                    i += 1;
                }
            }));
        }
        // Scanners check the stable low range is intact and ordered.
        for _ in 0..3 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let got = t.range_collect(&key(0), Some(&key(2000)), usize::MAX);
                    assert_eq!(got.len(), 2000);
                    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn duplicate_insert_race_exactly_one_wins() {
        let t = Arc::new(BPlusTree::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            let barrier = Arc::clone(&barrier);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                for i in 0..500i64 {
                    if i % 50 == 0 {
                        barrier.wait();
                    }
                    if t.insert_unique(&key(i), tid) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 500);
        assert_eq!(t.len(), 500);
    }
}
