//! Versioned node latches and the append-only key arena that back the
//! B+-tree's optimistic lock coupling.
//!
//! # The latch word
//!
//! [`VersionLatch`] packs an exclusive lock bit and a modification version
//! into one `AtomicU64` — the same packed-word discipline
//! `mainline-storage`'s residency word uses (bit 0 = lock, upper bits =
//! version, stride 2 so the version never collides with the lock bit).
//!
//! * **Readers take no latch.** They [`optimistic`](VersionLatch::optimistic)-
//!   read the word (restarting if locked), read the node through atomic
//!   loads, and then [`validate`](VersionLatch::validate) that the word is
//!   unchanged. A concurrent writer either holds the lock bit (the
//!   optimistic read refuses to start) or has already bumped the version
//!   (validation fails) — either way the reader restarts instead of acting
//!   on a torn view.
//! * **Writers** acquire the lock bit with
//!   [`try_lock_at`](VersionLatch::try_lock_at) against the exact version
//!   they validated (so a writer never locks a node that changed under its
//!   descent), mutate, and release with
//!   [`unlock_modified`](VersionLatch::unlock_modified) (version bump —
//!   this bump is what invalidates in-flight optimistic readers; the
//!   interleaving model checker in `tests/olc_interleavings.rs` proves the
//!   protocol collapses without it) or
//!   [`unlock_clean`](VersionLatch::unlock_clean) when nothing changed.
//!
//! # The key arena
//!
//! Optimistic readers dereference key bytes *before* validating, so key
//! storage must stay readable even while a racing writer rearranges the
//! node: [`KeyArena`] is an append-only bump allocator whose bytes are
//! immutable once written and freed only when the tree drops. A node slot
//! holds a `(ptr, len)` pair packed into a single `AtomicU64` (48-bit
//! pointer, 16-bit length), so a reader can never observe a torn pointer /
//! length combination — any word it loads names bytes that were once a
//! complete, published key. Removed keys' bytes are retained until the
//! tree drops (epoch-based arena reclamation is a recorded follow-up).

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};

const LOCKED: u64 = 1;
/// Versions advance by 2, keeping bit 0 free for the lock flag.
const VERSION_STRIDE: u64 = 2;

/// An exclusive latch fused with a modification version (see module docs).
#[derive(Debug, Default)]
pub struct VersionLatch {
    word: AtomicU64,
}

impl VersionLatch {
    /// A fresh, unlocked latch at version 0.
    pub const fn new() -> Self {
        VersionLatch { word: AtomicU64::new(0) }
    }

    /// Begin an optimistic read: returns the current version, or `None`
    /// when a writer holds the lock bit (the caller should restart).
    #[inline(always)]
    pub fn optimistic(&self) -> Option<u64> {
        let w = self.word.load(Ordering::Acquire);
        if w & LOCKED != 0 {
            None
        } else {
            Some(w)
        }
    }

    /// Finish an optimistic read: `true` iff the word still equals the
    /// version returned by [`optimistic`](Self::optimistic) — i.e. no
    /// writer locked or modified the node while the caller was reading.
    ///
    /// The acquire fence orders the caller's preceding data loads before
    /// the re-read (the seqlock read-side barrier).
    #[inline(always)]
    pub fn validate(&self, version: u64) -> bool {
        fence(Ordering::Acquire);
        self.word.load(Ordering::Relaxed) == version
    }

    /// Try to acquire the lock *at* the validated version: succeeds only
    /// if the word still equals `version`, so the caller knows the node is
    /// exactly what it read optimistically. On failure the caller restarts.
    #[inline(always)]
    pub fn try_lock_at(&self, version: u64) -> bool {
        debug_assert_eq!(version & LOCKED, 0, "validated versions are never locked");
        self.word
            .compare_exchange(version, version | LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquire the lock unconditionally (spin). Used only by the locked
    /// scan fallback, which never holds another latch while spinning — so
    /// this cannot deadlock.
    pub fn lock(&self) {
        loop {
            let w = self.word.load(Ordering::Relaxed);
            if w & LOCKED == 0
                && self
                    .word
                    .compare_exchange_weak(w, w | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Release the lock after a modification: clears the lock bit and
    /// bumps the version, failing every optimistic read that overlapped
    /// the critical section.
    #[inline(always)]
    pub fn unlock_modified(&self) {
        let w = self.word.load(Ordering::Relaxed);
        debug_assert_ne!(w & LOCKED, 0, "unlocking an unlocked latch");
        self.word.store((w & !LOCKED) + VERSION_STRIDE, Ordering::Release);
    }

    /// Release the lock without bumping the version — for critical
    /// sections that ended up not modifying the node (duplicate-key
    /// insert, remove of an absent key, the locked scan fallback).
    /// Readers that overlapped only the lock window still observed
    /// unchanged data, so letting them validate is sound.
    #[inline(always)]
    pub fn unlock_clean(&self) {
        let w = self.word.load(Ordering::Relaxed);
        debug_assert_ne!(w & LOCKED, 0, "unlocking an unlocked latch");
        self.word.store(w & !LOCKED, Ordering::Release);
    }

    /// Whether the lock bit is currently set (diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::Relaxed) & LOCKED != 0
    }

    /// Raw word access for the interleaving model checker (restore/capture
    /// of explored configurations). Not part of the latch protocol.
    #[doc(hidden)]
    pub fn raw(&self) -> u64 {
        self.word.load(Ordering::SeqCst)
    }

    /// See [`raw`](Self::raw).
    #[doc(hidden)]
    pub fn set_raw(&self, w: u64) {
        self.word.store(w, Ordering::SeqCst);
    }
}

/// Chunk size for the arena (oversized keys get a dedicated chunk).
const CHUNK_BYTES: usize = 64 << 10;

struct ArenaChunk {
    buf: Box<[UnsafeCell<u8>]>,
    used: AtomicUsize,
}

impl ArenaChunk {
    fn with_capacity(cap: usize) -> Box<ArenaChunk> {
        let buf: Vec<UnsafeCell<u8>> = (0..cap).map(|_| UnsafeCell::new(0)).collect();
        Box::new(ArenaChunk { buf: buf.into_boxed_slice(), used: AtomicUsize::new(0) })
    }
}

/// Append-only byte arena for index keys (see module docs): bytes are
/// written once, before the slot word naming them is published, and stay
/// valid until the arena drops — so optimistic readers may dereference a
/// slot word without holding any latch.
pub struct KeyArena {
    current: AtomicPtr<ArenaChunk>,
    /// Every chunk ever allocated (owned; freed on drop). Touched only on
    /// chunk rollover, never on the per-key fast path.
    chunks: Mutex<Vec<*mut ArenaChunk>>,
}

// SAFETY: the arena hands out raw pointers into heap chunks it owns until
// drop; allocation reserves disjoint ranges via `fetch_add`, and readers
// only dereference ranges published to them through release/acquire slot
// words — there is no unsynchronized aliasing.
unsafe impl Send for KeyArena {}
unsafe impl Sync for KeyArena {}

impl KeyArena {
    /// An arena with one empty chunk.
    pub fn new() -> Self {
        let first = Box::into_raw(ArenaChunk::with_capacity(CHUNK_BYTES));
        KeyArena { current: AtomicPtr::new(first), chunks: Mutex::new(vec![first]) }
    }

    /// Copy `bytes` into the arena; the returned pointer stays valid (and
    /// the bytes immutable) until the arena drops.
    pub fn alloc(&self, bytes: &[u8]) -> *const u8 {
        loop {
            let chunk_ptr = self.current.load(Ordering::Acquire);
            // SAFETY: chunks are never freed before the arena drops.
            let chunk = unsafe { &*chunk_ptr };
            let off = chunk.used.fetch_add(bytes.len(), Ordering::Relaxed);
            if off + bytes.len() <= chunk.buf.len() {
                let dst = chunk.buf[off].get();
                // SAFETY: [off, off+len) was exclusively reserved by the
                // fetch_add above; nobody else writes this range, and no
                // reader sees it before the caller publishes a slot word
                // (release) naming it.
                unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len()) };
                return dst;
            }
            // Chunk exhausted (the overshoot of `used` is harmless — every
            // later reservation fails the same way): install a fresh one.
            self.grow(chunk_ptr, bytes.len());
        }
    }

    fn grow(&self, exhausted: *mut ArenaChunk, need: usize) {
        let mut chunks = self.chunks.lock();
        // Someone else already rolled the chunk while we waited.
        if self.current.load(Ordering::Acquire) != exhausted {
            return;
        }
        let fresh = Box::into_raw(ArenaChunk::with_capacity(CHUNK_BYTES.max(need)));
        chunks.push(fresh);
        self.current.store(fresh, Ordering::Release);
    }

    /// Total bytes handed out (diagnostics; includes rollover overshoot
    /// slack of at most one reservation per exhausted chunk).
    pub fn allocated_bytes(&self) -> usize {
        let chunks = self.chunks.lock();
        chunks
            .iter()
            .map(|&c| {
                let c = unsafe { &*c };
                c.used.load(Ordering::Relaxed).min(c.buf.len())
            })
            .sum()
    }
}

impl Default for KeyArena {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for KeyArena {
    fn drop(&mut self) {
        let chunks = self.chunks.get_mut();
        for &c in chunks.iter() {
            // SAFETY: every pointer in `chunks` came from Box::into_raw and
            // is dropped exactly once, here.
            drop(unsafe { Box::from_raw(c) });
        }
        chunks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn latch_optimistic_read_sees_lock_and_bump() {
        let l = VersionLatch::new();
        let v = l.optimistic().unwrap();
        assert!(l.validate(v));
        assert!(l.try_lock_at(v));
        assert_eq!(l.optimistic(), None, "locked latch must refuse optimistic reads");
        assert!(!l.validate(v), "validation must fail while locked");
        l.unlock_modified();
        assert!(!l.validate(v), "validation must fail after a modifying unlock");
        let v2 = l.optimistic().unwrap();
        assert!(v2 > v);
    }

    #[test]
    fn latch_clean_unlock_preserves_version() {
        let l = VersionLatch::new();
        let v = l.optimistic().unwrap();
        assert!(l.try_lock_at(v));
        l.unlock_clean();
        assert!(l.validate(v), "clean unlock must let overlapping readers validate");
        // A second lock attempt at the same version still works.
        assert!(l.try_lock_at(v));
        l.unlock_modified();
        assert!(!l.try_lock_at(v), "stale version must not lock");
    }

    #[test]
    fn arena_bytes_stable_across_growth() {
        let a = KeyArena::new();
        let mut ptrs = Vec::new();
        for i in 0..5000usize {
            let bytes = vec![(i % 251) as u8; 64];
            ptrs.push((a.alloc(&bytes), bytes));
        }
        // Every allocation — including ones before chunk rollovers — must
        // still read back exactly.
        for (p, bytes) in &ptrs {
            let got = unsafe { std::slice::from_raw_parts(*p, bytes.len()) };
            assert_eq!(got, &bytes[..]);
        }
        assert!(a.allocated_bytes() >= 5000 * 64);
    }

    #[test]
    fn arena_concurrent_alloc_disjoint() {
        let a = Arc::new(KeyArena::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut ptrs = Vec::new();
                for i in 0..2000usize {
                    let bytes = vec![t.wrapping_mul(31).wrapping_add(i as u8); 1 + (i % 40)];
                    ptrs.push((a.alloc(&bytes) as usize, bytes));
                }
                ptrs
            }));
        }
        for h in handles {
            for (p, bytes) in h.join().unwrap() {
                let got = unsafe { std::slice::from_raw_parts(p as *const u8, bytes.len()) };
                assert_eq!(got, &bytes[..]);
            }
        }
    }

    #[test]
    fn arena_oversized_key_gets_dedicated_chunk() {
        let a = KeyArena::new();
        let big = vec![7u8; CHUNK_BYTES * 2];
        let p = a.alloc(&big);
        let got = unsafe { std::slice::from_raw_parts(p, big.len()) };
        assert_eq!(got, &big[..]);
    }
}
