//! Memcmp-comparable composite key encoding.
//!
//! Index keys are byte strings compared lexicographically. The encoders here
//! guarantee that the byte order matches the logical order of the encoded
//! tuple of values:
//!
//! * integers: big-endian with the sign bit flipped,
//! * doubles: IEEE-754 total-order trick,
//! * byte strings: `0x00` escaped as `0x00 0xFF`, terminated by `0x00 0x00`
//!   (so no encoded string is a strict prefix of another).

/// Incremental builder for composite keys.
#[derive(Debug, Default, Clone)]
pub struct KeyBuilder {
    bytes: Vec<u8>,
}

impl KeyBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        KeyBuilder { bytes: Vec::with_capacity(24) }
    }

    /// Append an `i64` component.
    pub fn add_i64(mut self, v: i64) -> Self {
        let flipped = (v as u64) ^ (1 << 63);
        self.bytes.extend_from_slice(&flipped.to_be_bytes());
        self
    }

    /// Append an `i32` component.
    pub fn add_i32(mut self, v: i32) -> Self {
        let flipped = (v as u32) ^ (1 << 31);
        self.bytes.extend_from_slice(&flipped.to_be_bytes());
        self
    }

    /// Append an `i16` component.
    pub fn add_i16(mut self, v: i16) -> Self {
        let flipped = (v as u16) ^ (1 << 15);
        self.bytes.extend_from_slice(&flipped.to_be_bytes());
        self
    }

    /// Append an `i8` component.
    pub fn add_i8(mut self, v: i8) -> Self {
        self.bytes.push((v as u8) ^ (1 << 7));
        self
    }

    /// Append an `f64` component (total order; NaNs sort high).
    pub fn add_f64(mut self, v: f64) -> Self {
        let bits = v.to_bits();
        // If negative, flip all bits; if positive, flip the sign bit.
        let ordered = if bits & (1 << 63) != 0 { !bits } else { bits ^ (1 << 63) };
        self.bytes.extend_from_slice(&ordered.to_be_bytes());
        self
    }

    /// Append a byte-string component (escaped and terminated).
    pub fn add_bytes(mut self, s: &[u8]) -> Self {
        for &b in s {
            self.bytes.push(b);
            if b == 0x00 {
                self.bytes.push(0xFF);
            }
        }
        self.bytes.extend_from_slice(&[0x00, 0x00]);
        self
    }

    /// Finish into the key bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// The exclusive upper bound for a prefix scan: the shortest key strictly
/// greater than every key starting with `prefix` (last non-`0xFF` byte
/// incremented, trailing `0xFF`s dropped). `None` means "unbounded above"
/// (the prefix is all `0xFF`s).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    while let Some(&last) = hi.last() {
        if last == 0xFF {
            hi.pop();
        } else {
            *hi.last_mut().unwrap() = last + 1;
            return Some(hi);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(f: impl FnOnce(KeyBuilder) -> KeyBuilder) -> Vec<u8> {
        f(KeyBuilder::new()).finish()
    }

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -100, -1, 0, 1, 100, i64::MAX];
        let keys: Vec<_> = vals.iter().map(|&v| k(|b| b.add_i64(v))).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mixed_width_ints() {
        for vals in [[-5i64, 3], [0, 1], [-1, 0]] {
            assert!(k(|b| b.add_i32(vals[0] as i32)) < k(|b| b.add_i32(vals[1] as i32)));
            assert!(k(|b| b.add_i16(vals[0] as i16)) < k(|b| b.add_i16(vals[1] as i16)));
            assert!(k(|b| b.add_i8(vals[0] as i8)) < k(|b| b.add_i8(vals[1] as i8)));
        }
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [f64::NEG_INFINITY, -2.5, -0.0, 0.0, 1.0, f64::INFINITY];
        let keys: Vec<_> = vals.iter().map(|&v| k(|b| b.add_f64(v))).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1], "{w:?}");
        }
        assert!(k(|b| b.add_f64(-1.0)) < k(|b| b.add_f64(1.0)));
    }

    #[test]
    fn strings_not_prefix_confusable() {
        // "ab" < "ab\0" < "abc" logically; encoded order must match.
        let ab = k(|b| b.add_bytes(b"ab"));
        let ab0 = k(|b| b.add_bytes(b"ab\0"));
        let abc = k(|b| b.add_bytes(b"abc"));
        assert!(ab < ab0);
        assert!(ab0 < abc);
    }

    #[test]
    fn composite_component_order_dominates() {
        // (1, "zzz") < (2, "aaa")
        let a = k(|b| b.add_i32(1).add_bytes(b"zzz"));
        let b_ = k(|b| b.add_i32(2).add_bytes(b"aaa"));
        assert!(a < b_);
        // Same first component: second decides.
        let c = k(|b| b.add_i32(1).add_bytes(b"aaa"));
        assert!(c < a);
    }

    #[test]
    fn prefix_bound_covers_extensions() {
        let prefix = KeyBuilder::new().add_i32(7).finish();
        let hi = prefix_upper_bound(&prefix).unwrap();
        let inside = KeyBuilder::new().add_i32(7).add_i64(i64::MAX).finish();
        let outside = KeyBuilder::new().add_i32(8).finish();
        assert!(inside >= prefix && inside < hi);
        assert!(outside >= hi);
    }

    #[test]
    fn prefix_bound_carries_and_saturates() {
        assert_eq!(prefix_upper_bound(&[1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(&[]), None);
    }
}
