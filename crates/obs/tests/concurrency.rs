//! Concurrency properties of the record path (ISSUE 9 satellite): counters
//! are monotonic and exact under racing recorders, histogram bucket totals
//! always sum to the observation count, and gauges settle back to zero
//! after a symmetric drain. Metrics here are local `static`s — the record
//! path under test is identical to the instrumented engine paths.

use mainline_obs::{Counter, Event, EventRing, Gauge, Histogram};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn counters_exact_under_racing_recorders(
        threads in 2usize..8,
        per_thread in 1u64..2000,
    ) {
        static C: Counter = Counter::new("race_counter", "test");
        let before = C.get();
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..per_thread {
                        C.inc();
                    }
                });
            }
        });
        // Exact: no lost updates, ever.
        prop_assert_eq!(C.get() - before, threads as u64 * per_thread);
    }

    #[test]
    fn counter_monotonic_while_recording(rounds in 1u64..500) {
        static C: Counter = Counter::new("mono_counter", "test");
        static HIGH: AtomicU64 = AtomicU64::new(0);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for _ in 0..rounds {
                    C.add(3);
                }
            });
            // A racing reader must never observe the value going backwards.
            let reader = s.spawn(|| {
                let mut last = C.get();
                loop {
                    let now = C.get();
                    assert!(now >= last, "counter went backwards: {last} -> {now}");
                    last = now;
                    HIGH.fetch_max(now, Ordering::Relaxed);
                    if now >= rounds {
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });
        prop_assert!(HIGH.load(Ordering::Relaxed) >= rounds);
    }

    #[test]
    fn histogram_bucket_sum_equals_observation_count(
        threads in 2usize..6,
        values in proptest::collection::vec(any::<u64>(), 1..400),
    ) {
        static H: Histogram = Histogram::new("race_hist", "test");
        let before = H.snapshot();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for &v in &values {
                        H.observe(v);
                    }
                });
            }
        });
        let after = H.snapshot();
        let recorded = after.count - before.count;
        prop_assert_eq!(recorded, (threads * values.len()) as u64);
        // count is *defined* as the bucket sum; assert it against the raw
        // buckets anyway so a future cached-count optimization can't skew.
        let bucket_sum: u64 = after.buckets.iter().sum();
        prop_assert_eq!(after.count, bucket_sum);
        let expected_sum: u64 =
            values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v)).wrapping_mul(threads as u64);
        prop_assert_eq!(after.sum.wrapping_sub(before.sum), expected_sum);
    }

    #[test]
    fn gauge_settles_to_zero_after_drain(
        threads in 2usize..8,
        deltas in proptest::collection::vec(1i64..10_000, 1..200),
    ) {
        static G: Gauge = Gauge::new("race_gauge", "test");
        // Every thread adds each delta then subtracts it: whatever the
        // interleaving, a drained gauge reads exactly zero.
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for &d in &deltas {
                        G.add(d);
                    }
                    for &d in &deltas {
                        G.sub(d);
                    }
                });
            }
        });
        prop_assert_eq!(G.get(), 0);
    }

    #[test]
    fn event_ring_sequences_are_dense_under_races(
        threads in 2usize..6,
        per_thread in 1u64..300,
    ) {
        let ring = EventRing::new(usize::MAX >> 1, true);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..per_thread {
                        ring.record("race", i, 0);
                    }
                });
            }
        });
        let snap: Vec<Event> = ring.snapshot();
        prop_assert_eq!(snap.len() as u64, threads as u64 * per_thread);
        // Sequence numbers are dense from 0 and timestamps are monotonic in
        // sequence order.
        for (i, e) in snap.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64);
        }
        prop_assert!(snap.windows(2).all(|w| w[0].micros <= w[1].micros));
    }
}
