//! `mainline-obs`: the engine's sensor layer — a process-wide
//! [`MetricsRegistry`] of named counters, gauges, and log₂-bucketed
//! histograms, plus a fixed-capacity structured [`EventRing`] for tracing
//! discrete occurrences (freezes, checkpoints, evictions, stalls, …).
//!
//! Design constraints, in order:
//!
//! 1. **The record path is lock-free and hash-free.** Metrics are `static`
//!    items with `const` constructors; hot paths hold a `&'static` handle
//!    and recording is one relaxed `fetch_add` (two for histograms, which
//!    also accumulate a sum). Names are only ever touched at registration
//!    and snapshot time.
//! 2. **Counters and histograms are always on.** There is no compile-time
//!    feature gate; the `fig_obs` bench proves the always-on cost. A
//!    runtime [`set_stubbed`] flag exists solely so that bench can measure
//!    the instrumented-vs-stubbed delta inside one binary.
//! 3. **The event ring is opt-in.** Recording an event takes a mutex, so
//!    the ring is gated behind [`set_events_enabled`] (driven by
//!    `DbConfig::observability` / the `MAINLINE_OBS` environment variable);
//!    when disabled, [`record_event`] is a single relaxed load.
//!
//! The registry is process-global: subsystem constructors (`LogManager`,
//! `TransformCoordinator`, `Database`, `Server`) register their statics
//! once, and every snapshot sees the union. Per-instance stats (e.g. a
//! server's byte counters) join through dynamic [`MetricsRegistry::
//! register_source`] callbacks, which is how `Database::metrics_snapshot`
//! absorbs the pre-existing ad-hoc stats structs without hand-duplication.

#![warn(missing_docs)]

mod ring;

pub use ring::{Event, EventRing, RING_CAPACITY};

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Well-known event kinds recorded by the engine's instrumented paths.
/// Free-form kinds are also accepted — these constants just keep the
/// cross-crate spelling consistent.
pub mod kind {
    /// A cooling block completed phase 2 (`a` = live bytes, `b` = nanos).
    pub const FREEZE: &str = "transform.freeze";
    /// A checkpoint was published (`a` = checkpoint ts, `b` = nanos).
    pub const CHECKPOINT: &str = "checkpoint.publish";
    /// A chain-compaction pass ran (`a` = generations, `b` = nanos).
    pub const COMPACTION: &str = "checkpoint.compaction";
    /// A frozen block's body was released (`a` = bytes).
    pub const EVICTION: &str = "buffer.evict";
    /// An evicted block was faulted back in (`a` = bytes, `b` = nanos).
    pub const FAULT_IN: &str = "buffer.fault";
    /// A writer entered a hard-watermark stall (`a` = pending bytes).
    pub const STALL_ENTER: &str = "admission.stall.enter";
    /// A stalled writer resumed (`a` = stalled nanos, `b` = pending bytes).
    pub const STALL_EXIT: &str = "admission.stall.exit";
    /// The server accepted a connection (`a` = open connections).
    pub const CONN_OPEN: &str = "server.conn.open";
    /// A connection died on a protocol error.
    pub const CONN_ERROR: &str = "server.conn.error";
}

/// Bench-only stub flag: when set, every counter/gauge/histogram record
/// call returns after one relaxed load, without touching its atomics. This
/// exists so `fig_obs` can A/B the instrumented and stubbed-out hot paths
/// in a single binary; production code never sets it.
static STUBBED: AtomicBool = AtomicBool::new(false);

/// Set (or clear) the bench-only stub flag (see the module note above on
/// its invariants): this is a measurement tool, not a configuration knob.
pub fn set_stubbed(on: bool) {
    STUBBED.store(on, Ordering::Relaxed);
}

#[inline(always)]
fn stubbed() -> bool {
    STUBBED.load(Ordering::Relaxed)
}

/// A monotonically increasing `u64` metric. `const`-constructible so hot
/// paths can hold `&'static Counter` handles and never hash a name.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Define a counter (usually as a `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter { name, help, value: AtomicU64::new(0) }
    }

    /// Add 1. One relaxed `fetch_add`.
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. One relaxed `fetch_add`.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if stubbed() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// A signed instantaneous value (queue depths, resident bytes, …).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// Define a gauge (usually as a `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge { name, help, value: AtomicI64::new(0) }
    }

    /// Add `n` (may be negative).
    #[inline(always)]
    pub fn add(&self, n: i64) {
        if stubbed() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline(always)]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Overwrite the value.
    #[inline(always)]
    pub fn set(&self, n: i64) {
        if stubbed() {
            return;
        }
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, up to `i = 64` for values with the top
/// bit set. Power-of-two bucketing keeps the record path at a
/// `leading_zeros` plus one `fetch_add` — no binary search, no config.
pub const HISTOGRAM_BUCKETS: usize = 65;

// A `const` initializer is exactly what the array-repeat below needs: each
// bucket gets its own fresh atomic (the "interior mutability" a shared
// `static` would wrongly alias is the point of the repeat).
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_BUCKET: AtomicU64 = AtomicU64::new(0);

/// A log₂-bucketed histogram. Observation cost: one `leading_zeros` and two
/// relaxed `fetch_add`s (bucket + sum). Count is derived from the bucket
/// totals, so "bucket sum == observation count" holds by construction — the
/// concurrency proptest pins it anyway.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Define a histogram (usually as a `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Histogram { name, help, sum: AtomicU64::new(0), buckets: [ZERO_BUCKET; HISTOGRAM_BUCKETS] }
    }

    /// Record one observation.
    #[inline(always)]
    pub fn observe(&self, v: u64) {
        if stubbed() {
            return;
        }
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration, in nanoseconds. (Histograms whose name ends in
    /// `_nanos` are rendered as human time by the text report.)
    #[inline(always)]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// The bucket an observation lands in.
    #[inline(always)]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, …).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Point-in-time copy of the bucket totals and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { count, sum: self.sum.load(Ordering::Relaxed), buckets }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations (sum of all buckets).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Bucket totals, [`HISTOGRAM_BUCKETS`] entries (see
    /// [`Histogram::bucket_lower_bound`] for the scale).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile: the lower bound of the bucket containing the
    /// `q`-th ranked observation (so `p50`/`p99` are within one power of
    /// two of the true value — plenty for a latency report).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_lower_bound(i);
            }
        }
        Histogram::bucket_lower_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Lower bound of the highest non-empty bucket (≈ max observation).
    pub fn max_bound(&self) -> u64 {
        self.buckets.iter().rposition(|&n| n > 0).map(Histogram::bucket_lower_bound).unwrap_or(0)
    }
}

/// A statically-registered metric handle, as stored by the registry.
#[derive(Clone, Copy)]
pub enum Metric {
    /// A [`Counter`].
    Counter(&'static Counter),
    /// A [`Gauge`].
    Gauge(&'static Gauge),
    /// A [`Histogram`].
    Histogram(&'static Histogram),
}

impl Metric {
    fn addr(&self) -> usize {
        match self {
            Metric::Counter(c) => *c as *const Counter as usize,
            Metric::Gauge(g) => *g as *const Gauge as usize,
            Metric::Histogram(h) => *h as *const Histogram as usize,
        }
    }
}

type SourceFn = Box<dyn Fn(&mut MetricsSnapshot) + Send + Sync>;

/// The process-wide registry: statically-registered metric handles, dynamic
/// snapshot sources, and the event ring. Obtain it with [`registry`].
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
    sources: Mutex<Vec<(u64, SourceFn)>>,
    next_source_id: AtomicU64,
    ring: EventRing,
}

impl MetricsRegistry {
    fn new(events_enabled: bool) -> Self {
        MetricsRegistry {
            metrics: Mutex::new(Vec::new()),
            sources: Mutex::new(Vec::new()),
            next_source_id: AtomicU64::new(1),
            ring: EventRing::new(RING_CAPACITY, events_enabled),
        }
    }

    /// Register static metric handles. Idempotent per handle (re-registering
    /// the same `static` is a no-op), so subsystem constructors can call
    /// this unconditionally.
    pub fn register(&self, metrics: &[Metric]) {
        let mut reg = self.metrics.lock();
        for m in metrics {
            if !reg.iter().any(|r| r.addr() == m.addr()) {
                reg.push(*m);
            }
        }
    }

    /// Register a dynamic snapshot source: a callback that appends
    /// per-instance values (e.g. one server's stats) to every snapshot.
    /// The source lives until the returned handle is dropped.
    pub fn register_source(
        &self,
        source: impl Fn(&mut MetricsSnapshot) + Send + Sync + 'static,
    ) -> SourceHandle {
        let id = self.next_source_id.fetch_add(1, Ordering::Relaxed);
        self.sources.lock().push((id, Box::new(source)));
        SourceHandle { id }
    }

    fn unregister_source(&self, id: u64) {
        self.sources.lock().retain(|(sid, _)| *sid != id);
    }

    /// One coherent point-in-time snapshot of every registered metric and
    /// source, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for m in self.metrics.lock().iter() {
            match m {
                Metric::Counter(c) => snap.push_counter(c.name(), c.get()),
                Metric::Gauge(g) => snap.push_gauge(g.name(), g.get()),
                Metric::Histogram(h) => snap.push_histogram(h.name(), h.snapshot()),
            }
        }
        for (_, src) in self.sources.lock().iter() {
            src(&mut snap);
        }
        snap.sort();
        snap
    }

    /// The process-wide event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }
}

/// RAII handle for a dynamic snapshot source; dropping it unregisters the
/// source (so a stopped server's stats stop appearing in snapshots).
pub struct SourceHandle {
    id: u64,
}

impl Drop for SourceHandle {
    fn drop(&mut self) {
        if let Some(reg) = REGISTRY.get() {
            reg.unregister_source(self.id);
        }
    }
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide [`MetricsRegistry`]. First use initializes the event
/// ring's default enablement from the `MAINLINE_OBS` environment variable.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(|| MetricsRegistry::new(env_events_enabled()))
}

/// Whether `MAINLINE_OBS` asks for the event ring ("1"/"true"/"on", case
/// insensitive). This is only the *default*; `DbConfig::observability`
/// overrides it per process via [`set_events_enabled`].
pub fn env_events_enabled() -> bool {
    std::env::var("MAINLINE_OBS")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"))
        .unwrap_or(false)
}

/// Gate the event ring on or off (counters/histograms are unaffected).
pub fn set_events_enabled(on: bool) {
    registry().ring().set_enabled(on);
}

/// Whether the event ring is currently recording.
pub fn events_enabled() -> bool {
    registry().ring().enabled()
}

/// Record a structured event (no-op unless the ring is enabled — one
/// relaxed load on the disabled path). `a`/`b` are kind-specific payloads,
/// documented on the [`kind`] constants.
#[inline]
pub fn record_event(kind: &'static str, a: u64, b: u64) {
    registry().ring().record(kind, a, b);
}

/// Copy of the event ring's current contents, oldest first.
pub fn events_snapshot() -> Vec<Event> {
    registry().ring().snapshot()
}

/// One coherent point-in-time view of every metric, plus whatever the
/// dynamic sources appended. `Database::metrics_snapshot` extends this with
/// aliases of its per-instance stats structs before returning it.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Append a counter value (used by dynamic sources and stats aliases).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Append a gauge value.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        self.gauges.push((name.to_string(), value));
    }

    /// Append a histogram snapshot.
    pub fn push_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.histograms.push((name.to_string(), h));
    }

    /// Sort all three sections by name (call after appending aliases so the
    /// text report and virtual table stay deterministic).
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// All counters, `(name, value)`, in sorted order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges, `(name, value)`, in sorted order.
    pub fn gauges(&self) -> &[(String, i64)] {
        &self.gauges
    }

    /// All histograms, `(name, snapshot)`, in sorted order.
    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// Compact single-line report of the named metrics, in the order given
    /// (absent names are skipped). Benches print this per cell.
    pub fn one_line(&self, names: &[&str]) -> String {
        let mut parts = Vec::new();
        for &n in names {
            if let Some(v) = self.counter(n) {
                parts.push(format!("{n}={v}"));
            } else if let Some(v) = self.gauge(n) {
                parts.push(format!("{n}={v}"));
            } else if let Some(h) = self.histogram(n) {
                parts.push(format!(
                    "{n}[n={} p50={} p99={}]",
                    h.count,
                    fmt_metric_value(n, h.quantile(0.50)),
                    fmt_metric_value(n, h.quantile(0.99)),
                ));
            }
        }
        parts.join(" ")
    }
}

/// Render a value with a time unit when the metric name says it carries
/// nanoseconds, raw otherwise.
fn fmt_metric_value(name: &str, v: u64) -> String {
    if name.ends_with("_nanos") {
        fmt_nanos(v)
    } else {
        v.to_string()
    }
}

/// Human formatting for nanosecond magnitudes (`1.5us`, `2.3ms`, `4.0s`).
pub fn fmt_nanos(v: u64) -> String {
    match v {
        0..=999 => format!("{v}ns"),
        1_000..=999_999 => format!("{:.1}us", v as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.1}s", v as f64 / 1e9),
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== mainline metrics ==")?;
        for (n, v) in &self.counters {
            writeln!(f, "counter    {n:<40} {v}")?;
        }
        for (n, v) in &self.gauges {
            writeln!(f, "gauge      {n:<40} {v}")?;
        }
        for (n, h) in &self.histograms {
            writeln!(
                f,
                "histogram  {n:<40} count={} mean={} p50={} p99={} max~{}",
                h.count,
                fmt_metric_value(n, h.mean()),
                fmt_metric_value(n, h.quantile(0.50)),
                fmt_metric_value(n, h.quantile(0.99)),
                fmt_metric_value(n, h.max_bound()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new("test_counter", "test");
    static G: Gauge = Gauge::new("test_gauge", "test");
    static H: Histogram = Histogram::new("test_hist", "test");

    #[test]
    fn bucket_math() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i);
        }
    }

    #[test]
    fn registry_roundtrip_and_idempotent_registration() {
        let reg = registry();
        reg.register(&[Metric::Counter(&C), Metric::Gauge(&G), Metric::Histogram(&H)]);
        reg.register(&[Metric::Counter(&C)]); // no duplicate
        C.add(5);
        G.set(-3);
        H.observe(1000);
        let snap = reg.snapshot();
        assert!(snap.counter("test_counter").unwrap() >= 5);
        assert_eq!(snap.gauge("test_gauge"), Some(-3));
        let h = snap.histogram("test_hist").unwrap();
        assert!(h.count >= 1);
        assert_eq!(
            snap.counters().iter().filter(|(n, _)| n == "test_counter").count(),
            1,
            "re-registration must not duplicate"
        );
        // Display renders all three sections.
        let text = snap.to_string();
        assert!(text.contains("test_counter") && text.contains("test_hist"));
    }

    #[test]
    fn sources_append_and_unregister_on_drop() {
        let reg = registry();
        let handle = reg.register_source(|s| s.push_counter("source_metric", 7));
        assert_eq!(reg.snapshot().counter("source_metric"), Some(7));
        drop(handle);
        assert_eq!(reg.snapshot().counter("source_metric"), None);
    }

    #[test]
    fn quantiles_bracket_observations() {
        static Q: Histogram = Histogram::new("q_hist", "test");
        for v in [10u64, 20, 30, 40, 1000] {
            Q.observe(v);
        }
        let s = Q.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1100);
        assert!(s.quantile(0.5) <= 30 && s.quantile(0.5) >= 8);
        assert!(s.max_bound() <= 1000 && s.max_bound() >= 512);
        assert_eq!(s.mean(), 220);
    }

    #[test]
    fn stub_flag_suppresses_recording() {
        static S: Counter = Counter::new("stub_counter", "test");
        S.inc();
        set_stubbed(true);
        S.inc();
        set_stubbed(false);
        S.inc();
        assert_eq!(S.get(), 2);
    }
}
