//! Fixed-capacity structured event ring: a bounded trace of discrete
//! occurrences (freeze completed, checkpoint published, eviction, stall
//! entered, …), each stamped with a monotonic timestamp and a small
//! payload. The ring is for *rare* events, so a mutex-protected `VecDeque`
//! is fine; the cost that matters is the **disabled** path, which is one
//! relaxed load (see `MAINLINE_OBS` / `DbConfig::observability`).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Default ring capacity (events, not bytes). Oldest entries are dropped
/// first; `dropped` counts them so a reader can tell the trace is partial.
pub const RING_CAPACITY: usize = 4096;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives wraparound).
    pub seq: u64,
    /// Microseconds since the ring was created (monotonic clock).
    pub micros: u64,
    /// Event kind — see [`crate::kind`] for the engine's vocabulary.
    pub kind: &'static str,
    /// Kind-specific payload (bytes, timestamps, nanos, …).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

struct Inner {
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

/// The bounded event trace. One per process, owned by the
/// [`MetricsRegistry`](crate::MetricsRegistry).
pub struct EventRing {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl EventRing {
    /// Build a ring with the given capacity and initial enablement.
    pub fn new(capacity: usize, enabled: bool) -> Self {
        EventRing {
            enabled: AtomicBool::new(enabled),
            capacity: capacity.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(Inner { next_seq: 0, dropped: 0, buf: VecDeque::new() }),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Existing entries are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event. No-op (one relaxed load) while disabled.
    #[inline]
    pub fn record(&self, kind: &'static str, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        let micros = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event { seq, micros, kind, a, b });
    }

    /// Copy of the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Events recorded since creation (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Drop all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner.lock().buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let r = EventRing::new(8, false);
        r.record("x", 1, 2);
        assert!(r.snapshot().is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let r = EventRing::new(4, true);
        for i in 0..10 {
            r.record("tick", i, 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(r.dropped(), 6);
        // Oldest-first, dense sequence numbers, monotonic timestamps.
        assert_eq!(snap.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert!(snap.windows(2).all(|w| w[0].micros <= w[1].micros));
        assert_eq!(snap.last().unwrap().a, 9);
    }

    #[test]
    fn toggling_keeps_existing_entries() {
        let r = EventRing::new(8, true);
        r.record("a", 0, 0);
        r.set_enabled(false);
        r.record("b", 0, 0);
        assert_eq!(r.snapshot().len(), 1);
        r.set_enabled(true);
        r.record("c", 0, 0);
        assert_eq!(r.snapshot().len(), 2);
    }
}
