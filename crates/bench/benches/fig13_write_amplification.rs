//! Figure 13: write amplification — tuples moved per transformation pass.
//!
//! "It suffices to measure the total number of tuple movements that trigger
//! index updates. The Snapshot algorithm always moves every tuple in the
//! compacted blocks"; compared against the approximate and the optimal
//! block-selection algorithms of §4.3.

use mainline_bench::{build_micro_table, emit, env_usize, MicroLayout};
use mainline_transform::compaction::{plan_approximate, plan_optimal};

fn main() {
    let nblocks = env_usize("MAINLINE_BLOCKS", 50);
    println!("# Figure 13 — write amplification ({nblocks} blocks)");
    println!("figure,series,pct_empty,value,unit");
    for pct in [0u32, 1, 5, 10, 20, 40, 60, 80] {
        let (_m, t, live) = build_micro_table(MicroLayout::Mixed, nblocks, pct, 7);
        let blocks = t.blocks();
        let approx = plan_approximate(&blocks);
        let optimal = plan_optimal(&blocks);
        // Snapshot moves every live tuple.
        emit("fig13", "snapshot", pct, live as f64, "tuples_moved");
        emit("fig13", "approximate", pct, approx.moves.len() as f64, "tuples_moved");
        emit("fig13", "optimal", pct, optimal.moves.len() as f64, "tuples_moved");
        // §4.3's bound: approx − optimal ≤ t mod s.
        let s = t.layout().num_slots() as usize;
        assert!(approx.moves.len() >= optimal.moves.len());
        assert!(approx.moves.len() - optimal.moves.len() <= live % s);
    }
    println!("# done");
}
