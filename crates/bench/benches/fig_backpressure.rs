//! Admission-control sweep: ingest throughput and writer stall time vs the
//! backpressure watermark (§4.4's control loop, closed by ISSUE 3).
//!
//! Each cell opens a full `Database` (GC thread + multi-worker
//! transformation), then hammers it with concurrent insert/delete writers
//! for a fixed wall-clock window. The watermark sweeps from "disabled"
//! (zero — writers never throttle, the cooling backlog is unbounded) down
//! to a few blocks. Reported per cell:
//!
//! * `rows_per_s` — sustained ingest throughput;
//! * `stall_ms` — total wall-clock time writers spent blocked;
//! * `stall_count` / `yield_count` — graduated-response breakdown;
//! * `pending_hw_mb` — the gauge's high-water mark, which must stay within
//!   one block per worker of the hard watermark when it is non-zero.
//!
//! Knobs: `MAINLINE_BP_SECONDS` (seconds per cell, default 2),
//! `MAINLINE_BP_THREADS` (writer threads, default 2).

use mainline_bench::{emit, env_usize};
use mainline_db::{Database, DbConfig};
use mainline_storage::BLOCK_SIZE;
use mainline_transform::TransformConfig;
use mainline_workloads::stress::{wide_row, wide_schema};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const COLS: usize = 32;

struct Cell {
    rows_per_s: f64,
    stall_ms: f64,
    stall_count: u64,
    yield_count: u64,
    pending_hw_mb: f64,
    budget_ok: bool,
}

fn run_cell(watermark: usize, seconds: f64, threads: usize) -> Cell {
    let workers = 2;
    let db = Database::open(DbConfig {
        transform: Some(TransformConfig {
            threshold_epochs: 1,
            group_size: 2,
            workers,
            backpressure_bytes: watermark,
            stall_timeout: Duration::from_millis(5),
            ..Default::default()
        }),
        gc_interval: Duration::from_millis(3),
        transform_interval: Duration::from_millis(1),
        ..Default::default()
    })
    .unwrap();
    let t = db.create_table("bp", wide_schema(COLS), vec![], true).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..threads {
        let db = Arc::clone(&db);
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = (w as i64) << 40;
            let mut rows = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let txn = db.manager().begin();
                let mut slots = Vec::with_capacity(200);
                for _ in 0..200 {
                    slots.push(t.insert(&txn, &wide_row(COLS, i)));
                    i += 1;
                    rows += 1;
                }
                // Gaps make compaction move tuples, so cooling blocks hold
                // versions and the backlog is real.
                for slot in slots.into_iter().step_by(10) {
                    let _ = t.delete(&txn, slot);
                }
                db.manager().commit(&txn);
            }
            rows
        }));
    }
    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let rows: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let adm = db.admission_stats();
    db.shutdown();
    Cell {
        rows_per_s: rows as f64 / seconds,
        stall_ms: adm.stalled_nanos as f64 / 1e6,
        stall_count: adm.stall_count,
        yield_count: adm.yield_count,
        pending_hw_mb: adm.pending_high_water as f64 / (1 << 20) as f64,
        budget_ok: watermark == 0 || adm.pending_high_water <= watermark + workers * BLOCK_SIZE,
    }
}

fn main() {
    let seconds = env_usize("MAINLINE_BP_SECONDS", 2) as f64;
    let threads = env_usize("MAINLINE_BP_THREADS", 2);
    println!("# Backpressure admission-control sweep ({threads} writer threads, {seconds}s/cell)");
    println!("figure,series,watermark_mb,value,unit");
    // 0 = disabled, then 32 / 8 / 2 blocks, then a quarter block (well
    // below any single cooling entry, so the bounded-stall path engages).
    for watermark in [0usize, 32 * BLOCK_SIZE, 8 * BLOCK_SIZE, 2 * BLOCK_SIZE, BLOCK_SIZE / 4] {
        let label = watermark as f64 / (1 << 20) as f64;
        let cell = run_cell(watermark, seconds, threads);
        emit("fig_bp", "rows_per_s", label, cell.rows_per_s, "rows_per_s");
        emit("fig_bp", "stall_ms", label, cell.stall_ms, "ms");
        emit("fig_bp", "stall_count", label, cell.stall_count as f64, "stalls");
        emit("fig_bp", "yield_count", label, cell.yield_count as f64, "yields");
        emit("fig_bp", "pending_high_water", label, cell.pending_hw_mb, "MB");
        if !cell.budget_ok {
            println!(
                "# WARNING: watermark={label}MB cell exceeded the admission budget \
                 (high water {:.1} MB)",
                cell.pending_hw_mb
            );
        }
        if watermark == 0 && (cell.stall_count > 0 || cell.yield_count > 0) {
            println!("# WARNING: disabled watermark still recorded throttling");
        }
    }
    println!("# done");
}
