//! Figure 10: TPC-C throughput and block-state coverage, varying worker
//! threads, with transformation disabled / varlen-gather / dictionary.
//!
//! One warehouse per worker (§6.1), standard mix, open-loop workers pinned
//! at full speed for `MAINLINE_TPCC_SECONDS` per cell. 10b reports the
//! percentage of the transform-target tables' blocks in cooling/frozen
//! state at the end of each run. Set `MAINLINE_TPCC_EXTRA_THREAD=1` to run
//! the §6.1 "one additional transformation thread" ablation.

use mainline_bench::{emit, env_usize};
use mainline_common::rng::Xoshiro256;
use mainline_db::{Database, DbConfig};
use mainline_transform::{TransformConfig, TransformFormat};
use mainline_workloads::tpcc::{Tpcc, TpccConfig, TpccStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn run_cell(workers: u32, transform: Option<TransformFormat>, seconds: u64, extra_thread: bool) {
    let db = Database::open(DbConfig {
        transform: transform.map(|format| TransformConfig {
            threshold_epochs: 2, // ~the paper's aggressive 10 ms threshold
            format,
            workers: if extra_thread { 2 } else { 1 },
            ..Default::default()
        }),
        gc_interval: Duration::from_millis(10),
        transform_interval: Duration::from_millis(10),
        ..Default::default()
    })
    .unwrap();
    let tpcc =
        Arc::new(Tpcc::create(&db, TpccConfig::bench(workers), transform.is_some()).unwrap());
    tpcc.load(&db, 42).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 1..=workers as i32 {
        let db = Arc::clone(&db);
        let tpcc = Arc::clone(&tpcc);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = Xoshiro256::seed_from_u64(w as u64);
            let mut stats = TpccStats::default();
            while !stop.load(Ordering::Relaxed) {
                tpcc.run_one(&db, &mut rng, w, &mut stats);
            }
            stats
        }));
    }
    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for h in handles {
        let s = h.join().unwrap();
        committed += s.total();
        aborted += s.aborted;
    }
    let series = match transform {
        None => "no_transformation",
        Some(TransformFormat::Gather) => "varlen_gather",
        Some(TransformFormat::Dictionary) => "dictionary_compression",
    };
    emit("fig10a", series, workers, committed as f64 / seconds as f64 / 1e3, "K_txn_per_s");

    if let Some(pipeline) = db.pipeline() {
        let (hot, cooling, freezing, frozen, _evicted) = pipeline.block_state_census();
        let total = (hot + cooling + freezing + frozen).max(1) as f64;
        emit("fig10b", &format!("{series}_frozen"), workers, frozen as f64 / total * 100.0, "pct");
        emit(
            "fig10b",
            &format!("{series}_cooling"),
            workers,
            (cooling + freezing) as f64 / total * 100.0,
            "pct",
        );
    }
    // Admission-control outcome per cell, the way fig_backpressure reports
    // it: how much the §4.4 loop throttled this TPC-C run.
    let adm = db.admission_stats();
    emit("fig10c", &format!("{series}_stall_count"), workers, adm.stall_count as f64, "stalls");
    emit("fig10c", &format!("{series}_stall_ms"), workers, adm.stalled_nanos as f64 / 1e6, "ms");
    emit("fig10c", &format!("{series}_yield_count"), workers, adm.yield_count as f64, "yields");
    emit(
        "fig10c",
        &format!("{series}_pending_high_water"),
        workers,
        adm.pending_high_water as f64 / (1 << 20) as f64,
        "MB",
    );
    let _ = aborted;
    tpcc.check_consistency(&db).expect("TPC-C invariants must hold after the run");
    db.shutdown();
}

fn main() {
    let seconds = env_usize("MAINLINE_TPCC_SECONDS", 3) as u64;
    let threads: Vec<u32> = std::env::var("MAINLINE_TPCC_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let extra = std::env::var("MAINLINE_TPCC_EXTRA_THREAD").is_ok();
    println!("# Figure 10 — TPC-C ({seconds}s per cell, workers {threads:?}, extra transform thread: {extra})");
    println!("figure,series,workers,value,unit");
    for &w in &threads {
        run_cell(w, None, seconds, extra);
        run_cell(w, Some(TransformFormat::Gather), seconds, extra);
        run_cell(w, Some(TransformFormat::Dictionary), seconds, extra);
    }
    println!("# done");
}
