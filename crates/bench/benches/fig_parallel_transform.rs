//! Parallel transformation scaling: end-to-end throughput (blocks frozen
//! per second) vs transformation workers, sweeping 1/2/4/8 workers.
//!
//! This exercises the multi-worker coordinator the way `mainline-db` runs
//! it: one OS thread per worker calling `worker_tick`, a concurrent GC
//! thread pruning compaction versions, cold candidates sharded by block
//! with work stealing. The `speedup` series reports throughput relative to
//! the single-worker cell; on a multi-core host 4 workers should clear
//! 1.5× (the ISSUE 2 acceptance bar).
//!
//! Knobs: `MAINLINE_PAR_BLOCKS` (blocks per cell, default 48),
//! `MAINLINE_PAR_EMPTY` (%empty per block, default 5).

use mainline_bench::{build_micro_table, emit, env_usize, time, MicroLayout};
use mainline_gc::collector::ModificationObserver;
use mainline_gc::GarbageCollector;
use mainline_transform::{AccessObserver, NoopHook, TransformConfig, TransformCoordinator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Run one cell: freeze every non-active block with `workers` worker
/// threads; returns (blocks frozen, seconds).
fn run_cell(workers: usize, nblocks: usize, pct_empty: u32) -> (usize, f64) {
    let (manager, table, _live) = build_micro_table(MicroLayout::Mixed, nblocks, pct_empty, 42);
    let mut gc = GarbageCollector::new(Arc::clone(&manager));
    let observer = Arc::new(AccessObserver::new());
    gc.add_observer(Arc::clone(&observer) as Arc<dyn ModificationObserver>);
    let coordinator = Arc::new(TransformCoordinator::new(
        Arc::clone(&manager),
        Arc::clone(&observer),
        gc.deferred(),
        TransformConfig { threshold_epochs: 1, group_size: 4, workers, ..Default::default() },
    ));
    coordinator.add_table(Arc::clone(&table), Arc::new(NoopHook));

    let stop = Arc::new(AtomicBool::new(false));
    let gc_stop = Arc::clone(&stop);
    let gc_thread = std::thread::spawn(move || {
        while !gc_stop.load(Ordering::Relaxed) {
            gc.run();
            std::thread::sleep(Duration::from_micros(500));
        }
        gc.run_to_quiescence();
    });

    let (frozen, secs) = time(|| {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let coordinator = &coordinator;
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if !coordinator.worker_tick(w) {
                            // Idle: nothing cold or coolable yet; don't
                            // burn the core the freeze work needs.
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                });
            }
            // Monitor: done when no transformable block is left in flight
            // (the active block stays hot by design).
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            let frozen = loop {
                let (hot, cooling, freezing, frozen, _evicted) = coordinator.block_state_census();
                if (hot <= 1 && cooling == 0 && freezing == 0 && frozen > 0)
                    || std::time::Instant::now() > deadline
                {
                    break frozen;
                }
                std::thread::sleep(Duration::from_micros(200));
            };
            stop.store(true, Ordering::Relaxed);
            frozen
        })
    });
    gc_thread.join().unwrap();
    (frozen, secs)
}

fn main() {
    let nblocks = env_usize("MAINLINE_PAR_BLOCKS", 48);
    let pct_empty = env_usize("MAINLINE_PAR_EMPTY", 5) as u32;
    println!("# Parallel transformation scaling ({nblocks} blocks, {pct_empty}% empty)");
    println!("figure,series,workers,value,unit");
    let mut base = None;
    for workers in WORKER_SWEEP {
        let (frozen, secs) = run_cell(workers, nblocks, pct_empty);
        if frozen == 0 {
            // Deadline hit without progress (e.g. GC starvation on a loaded
            // box): don't emit a 0 that would read as real data or poison
            // the speedup base with a NaN/inf divisor.
            println!("# WARNING: workers={workers} timed out with 0 frozen blocks; cell skipped");
            continue;
        }
        let throughput = frozen as f64 / secs;
        emit("fig_par", "blocks_frozen_per_s", workers, throughput, "blocks_per_s");
        let base = *base.get_or_insert(throughput);
        emit("fig_par", "speedup_vs_1_worker", workers, throughput / base, "x");
    }
    println!("# done");
}
