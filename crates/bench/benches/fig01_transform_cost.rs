//! Figure 1: data-transformation cost — loading a TPC-H LINEITEM table into
//! a columnar analytics client via three pipelines:
//!
//! * `in_memory`  — the Arrow hand-off (the theoretical best case),
//! * `csv`        — export to a CSV file on disk, then parse it back,
//! * `wire_protocol` — the row-based PostgreSQL-style protocol + client parse
//!   (the paper's "Python ODBC" pipeline).

use mainline_bench::{emit, env_usize, time};
use mainline_common::value::TypeId;
use mainline_db::{Database, DbConfig};
use mainline_export::materialize::block_batch;
use mainline_export::{export_table, ExportMethod};
use mainline_transform::TransformConfig;
use mainline_workloads::tpch;
use std::io::Write;

fn main() {
    let rows = env_usize("MAINLINE_FIG1_ROWS", 200_000) as u64;
    println!("# Figure 1 — data transformation cost ({rows} LINEITEM rows)");
    println!("figure,series,x,value,unit");

    let db = Database::open(DbConfig {
        transform: Some(TransformConfig { threshold_epochs: 1, ..Default::default() }),
        gc_interval: std::time::Duration::from_millis(1),
        transform_interval: std::time::Duration::from_millis(2),
        ..Default::default()
    })
    .unwrap();
    let lineitem = tpch::load_lineitem(&db, rows, 42).unwrap();
    let types: Vec<TypeId> = lineitem.table().types().to_vec();

    // Freeze the table (the data is cold by the time the scientist exports).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let (hot, cooling, freezing, _, _) = db.pipeline().unwrap().block_state_census();
        if hot + cooling + freezing <= 1 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // (1) In-memory Arrow hand-off.
    let (batches, t_mem) = time(|| {
        lineitem
            .table()
            .blocks()
            .iter()
            .map(|b| block_batch(db.manager(), lineitem.table(), b).0)
            .collect::<Vec<_>>()
    });
    emit("fig01", "in_memory", "load_seconds", t_mem, "s");

    // (2) CSV through a real file.
    let mut path = std::env::temp_dir();
    path.push(format!("mainline-fig01-{}.csv", std::process::id()));
    let (_, t_csv) = time(|| {
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            for b in &batches {
                mainline_arrowlite::csv::write_csv(b, &types, &mut f).unwrap();
            }
            f.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let schema = mainline_arrowlite::ArrowSchema::from_table_schema(lineitem.table().schema());
        let parsed = mainline_arrowlite::csv::read_csv(&text, &schema, &types).unwrap();
        assert!(parsed.num_rows() > 0);
    });
    emit("fig01", "csv", "load_seconds", t_csv, "s");
    let _ = std::fs::remove_file(&path);

    // (3) Row-based wire protocol.
    let (stats, t_wire) =
        time(|| export_table(ExportMethod::PostgresWire, db.manager(), lineitem.table()));
    emit("fig01", "wire_protocol", "load_seconds", t_wire, "s");
    assert_eq!(stats.rows, rows);

    println!(
        "# shape check: in-memory {t_mem:.3}s << csv {t_csv:.3}s, wire {t_wire:.3}s \
         (paper: 8.4s vs 284s vs 1380s at SF10)"
    );
    db.shutdown();
}
