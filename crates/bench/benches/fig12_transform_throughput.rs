//! Figure 12: transformation-algorithm throughput (blocks/s) vs %empty.
//!
//! Regenerates 12a (50% varlen columns), 12b (per-phase breakdown),
//! 12c (all fixed), and 12d (all varlen). Series: Hybrid-Gather, Snapshot,
//! Transactional In-Place, Hybrid-Compress; breakdown series: Compaction,
//! Varlen-Gather, Dictionary-Compression.

use mainline_bench::{build_micro_table, emit, env_usize, time, MicroLayout};
use mainline_transform::baselines::{inplace_block, snapshot_block};
use mainline_transform::compaction;
use mainline_transform::dictionary::compress_block;
use mainline_transform::gather::gather_block;
use mainline_txn::{DataTable, TransactionManager};
use std::sync::Arc;

const EMPTIES: [u32; 8] = [0, 1, 5, 10, 20, 40, 60, 80];

fn compact_all(manager: &TransactionManager, table: &Arc<DataTable>) {
    let blocks = table.blocks();
    for group in blocks.chunks(50) {
        let plan = compaction::plan_approximate(group);
        let txn = manager.begin();
        compaction::execute_plan(table, &txn, &plan, |_, _, _, _| Ok(())).unwrap();
        manager.commit(&txn);
        compaction::publish_insert_heads(&plan);
    }
}

fn gather_all(table: &Arc<DataTable>, dictionary: bool) {
    for block in table.blocks() {
        unsafe {
            let displaced = if dictionary { compress_block(&block) } else { gather_block(&block) };
            displaced.free();
        }
    }
}

fn run_layout(fig: &str, layout: MicroLayout, nblocks: usize) {
    for pct in EMPTIES {
        // Hybrid-Gather: compaction + gather (with a phase breakdown).
        let (m, t, _) = build_micro_table(layout, nblocks, pct, 42);
        let (_, t_compact) = time(|| compact_all(&m, &t));
        let (_, t_gather) = time(|| gather_all(&t, false));
        emit(fig, "hybrid_gather", pct, nblocks as f64 / (t_compact + t_gather), "blocks_per_s");
        if fig == "fig12a" {
            emit("fig12b", "compaction", pct, nblocks as f64 / t_compact, "blocks_per_s");
            emit("fig12b", "varlen_gather", pct, nblocks as f64 / t_gather, "blocks_per_s");
        }

        // Hybrid-Compress: compaction + dictionary compression.
        let (m, t, _) = build_micro_table(layout, nblocks, pct, 42);
        let (_, t_compact2) = time(|| compact_all(&m, &t));
        let (_, t_dict) = time(|| gather_all(&t, true));
        emit(fig, "hybrid_compress", pct, nblocks as f64 / (t_compact2 + t_dict), "blocks_per_s");
        if fig == "fig12a" {
            emit("fig12b", "dictionary_compression", pct, nblocks as f64 / t_dict, "blocks_per_s");
        }

        // Snapshot baseline.
        let (m, t, _) = build_micro_table(layout, nblocks, pct, 42);
        let (_, t_snap) = time(|| {
            let txn = m.begin();
            for block in t.blocks() {
                std::hint::black_box(snapshot_block(&t, &txn, &block));
            }
            m.commit(&txn);
        });
        emit(fig, "snapshot", pct, nblocks as f64 / t_snap, "blocks_per_s");

        // Transactional In-Place baseline.
        let (m, t, _) = build_micro_table(layout, nblocks, pct, 42);
        let (_, t_inplace) = time(|| {
            for block in t.blocks() {
                inplace_block(&m, &t, &block).unwrap();
            }
        });
        emit(fig, "txn_inplace", pct, nblocks as f64 / t_inplace, "blocks_per_s");
    }
}

fn main() {
    let nblocks = env_usize("MAINLINE_BLOCKS", 12);
    println!("# Figure 12 — transformation throughput ({nblocks} blocks per cell)");
    println!("figure,series,pct_empty,value,unit");
    run_layout("fig12a", MicroLayout::Mixed, nblocks);
    run_layout("fig12c", MicroLayout::Fixed, nblocks);
    run_layout("fig12d", MicroLayout::Varlen, nblocks);
    println!("# done");
}
