//! Contended-index sweep (ISSUE 10): point-lookup and mixed read/write
//! throughput on the OLC B+-tree as reader/writer threads scale, plus the
//! protocol's own health counters (descent restarts, scan fallbacks).
//!
//! Three series per thread count, each over the same pre-loaded tree:
//!
//! * **lookup** — pure point lookups, uniformly random over the loaded
//!   keyspace (the latch-free descent path);
//! * **mixed_90_10** — 90 % lookups / 10 % upserts into the same keyspace,
//!   so writers keep bumping versions under the readers;
//! * **scan100** — 100-entry range scans (the snapshot-per-leaf path).
//!
//! Lookup throughput should *rise* with threads on multi-core hardware —
//! the whole point of replacing reader crabbing — so the core count is
//! printed with the header: on a single-core runner the sweep can only
//! show the protocol not collapsing under oversubscription.
//!
//! Knobs: `MAINLINE_INDEX_ROWS` (default 200000), `MAINLINE_INDEX_SECONDS`
//! per cell (default 2), `MAINLINE_INDEX_THREADS` (default "1,2,4").

use mainline_bench::{emit, env_usize};
use mainline_common::rng::Xoshiro256;
use mainline_index::{BPlusTree, KeyBuilder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn key(i: u64) -> Vec<u8> {
    KeyBuilder::new().add_i64(i as i64).finish()
}

fn counter(name: &str) -> u64 {
    mainline_obs::registry().snapshot().counter(name).unwrap_or(0)
}

/// Run `threads` workers against `tree` for `seconds`; each worker calls
/// `op(rng_draw) -> ops_done` in a loop. Returns total ops.
fn drive(
    tree: &Arc<BPlusTree<u64>>,
    threads: u32,
    seconds: u64,
    rows: u64,
    mixed: bool,
    scan: bool,
) -> u64 {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(tree);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut rng = Xoshiro256::seed_from_u64(0x51CA + t as u64);
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..256 {
                    let k = rng.int_range(0, rows as i64) as u64;
                    if scan {
                        let mut seen = 0u32;
                        tree.scan_range(&key(k), None, |_, _| {
                            seen += 1;
                            seen < 100
                        });
                    } else if mixed && rng.next_below(10) == 0 {
                        tree.upsert(&key(k), k ^ done);
                    } else {
                        std::hint::black_box(tree.get(&key(k)));
                    }
                    done += 1;
                }
            }
            total.fetch_add(done, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    total.load(Ordering::Relaxed)
}

fn main() {
    let rows = env_usize("MAINLINE_INDEX_ROWS", 200_000) as u64;
    let seconds = env_usize("MAINLINE_INDEX_SECONDS", 2) as u64;
    let threads: Vec<u32> = std::env::var("MAINLINE_INDEX_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "# fig_index — OLC B+-tree contention sweep ({rows} rows, {seconds}s per cell, \
         threads {threads:?}, {cores} core(s))"
    );
    println!("figure,series,threads,value,unit");

    let tree: Arc<BPlusTree<u64>> = Arc::new(BPlusTree::new());
    for i in 0..rows {
        tree.insert_unique(&key(i), i);
    }

    for &t in &threads {
        let r0 = counter("index_descent_restarts");
        let ops = drive(&tree, t, seconds, rows, false, false);
        emit("fig_index", "lookup", t, ops as f64 / seconds as f64 / 1e6, "M_ops_per_s");

        let ops = drive(&tree, t, seconds, rows, true, false);
        emit("fig_index", "mixed_90_10", t, ops as f64 / seconds as f64 / 1e6, "M_ops_per_s");

        let ops = drive(&tree, t, seconds, rows, false, true);
        emit("fig_index", "scan100", t, ops as f64 / seconds as f64 / 1e3, "K_scans_per_s");

        emit(
            "fig_index",
            "descent_restarts",
            t,
            (counter("index_descent_restarts") - r0) as f64,
            "count",
        );
    }
    emit("fig_index", "scan_fallbacks", "all", counter("index_scan_fallbacks") as f64, "count");
    let snap = mainline_obs::registry().snapshot();
    println!("# {}", snap.one_line(&["index_lookup_nanos", "index_descent_restarts"]));
    println!("# done");
}
