//! Figure 11: row-store vs column-store raw storage throughput, varying the
//! number of attributes (inserts: attributes per inserted tuple; updates:
//! attributes updated).

use mainline_bench::{emit, env_usize};
use mainline_txn::TransactionManager;
use mainline_workloads::rowcol::{run_ops, RowColTable, StorageModel};

fn main() {
    let ops = env_usize("MAINLINE_FIG11_OPS", 200_000);
    println!("# Figure 11 — row vs column raw storage speed ({ops} ops per cell)");
    println!("figure,series,attrs,value,unit");
    for attrs in [1usize, 2, 4, 8, 16, 32, 64] {
        // Inserts: tuple has `attrs` attributes.
        for (series, model) in
            [("row_insert", StorageModel::Row), ("column_insert", StorageModel::Column)]
        {
            let t = RowColTable::new(model, attrs);
            let m = TransactionManager::new();
            let tput = run_ops(&t, &m, ops, attrs, false, 3);
            emit("fig11", series, attrs, tput / 1e6, "Mops_per_s");
        }
        // Updates: `attrs` of 64 attributes updated.
        for (series, model) in
            [("row_update", StorageModel::Row), ("column_update", StorageModel::Column)]
        {
            let t = RowColTable::new(model, 64);
            let m = TransactionManager::new();
            let tput = run_ops(&t, &m, ops, attrs, true, 4);
            emit("fig11", series, attrs, tput / 1e6, "Mops_per_s");
        }
    }
    println!("# done");
}
