//! Served-workload sweep (ISSUE 7): N concurrent network clients against
//! `mainline-server` over real sockets, mixing OLTP point writes (PG wire,
//! durable acks) with streaming analytics readers (Flight-style IPC,
//! zero-copy frozen frames).
//!
//! The database is preloaded and mostly frozen + checkpointed, so streams
//! cross the frozen encoder; writers keep appending hot rows while readers
//! stream, which is exactly the paper's mainlining regime: transactions in
//! the front door, Arrow out the side door, one copy of the data.
//!
//! Per cell (series × client count): total throughput plus p50/p95/p99
//! client-observed latency. Series:
//!
//! * **oltp**   — every client is a PG writer (1-row INSERT per op);
//! * **stream** — every client is a Flight reader (full-table DoGet per op);
//! * **mixed**  — half writers, half readers (the 8-client cell is the
//!   acceptance regime: 4 + 4).
//!
//! Knobs: `MAINLINE_SERVER_ROWS` (preload, default 60000),
//! `MAINLINE_SERVER_SECS` (seconds per cell, default 2).

use mainline_bench::emit;
use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_db::{CheckpointConfig, Database, DbConfig};
use mainline_server::client::{FlightClient, PgClient};
use mainline_server::{DatabaseServe, Server, ServerConfig};
use mainline_transform::TransformConfig;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Writers draw globally unique ids so every INSERT succeeds in every cell.
static NEXT_ID: AtomicI64 = AtomicI64::new(1 << 32);

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("payload", TypeId::Varchar),
        ColumnDef::new("version", TypeId::Integer),
    ])
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// One client thread: run ops until the deadline, returning per-op seconds.
fn run_client(addr: SocketAddr, writer: bool, deadline: Instant) -> Vec<f64> {
    let mut lat = Vec::new();
    if writer {
        let mut pg = PgClient::connect(addr).expect("writer connect");
        pg.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        while Instant::now() < deadline {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let sql = format!("INSERT INTO t VALUES ({id}, 'bench-{id}', 0)");
            let t0 = Instant::now();
            let out = pg.query(&sql).expect("write op");
            assert!(out.error.is_none(), "{:?}", out.error);
            lat.push(t0.elapsed().as_secs_f64());
        }
        let _ = pg.terminate();
    } else {
        let mut fl = FlightClient::connect(addr).expect("reader connect");
        fl.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        while Instant::now() < deadline {
            let t0 = Instant::now();
            let out = fl.do_get("t").expect("stream op");
            assert!(out.error.is_none(), "{:?}", out.error);
            assert!(out.rows > 0);
            lat.push(t0.elapsed().as_secs_f64());
        }
    }
    lat
}

fn run_cell(
    db: &Database,
    server: &Server,
    series: &str,
    clients: usize,
    writers: usize,
    secs: u64,
) {
    let addr = server.addr();
    let deadline = Instant::now() + Duration::from_secs(secs);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| std::thread::spawn(move || run_client(addr, c < writers, deadline)))
        .collect();
    let mut lat: Vec<f64> = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));
    emit("fig_server", &format!("{series}_tput"), clients, lat.len() as f64 / wall, "ops/s");
    emit("fig_server", &format!("{series}_p50_ms"), clients, percentile(&lat, 50.0) * 1e3, "ms");
    emit("fig_server", &format!("{series}_p95_ms"), clients, percentile(&lat, 95.0) * 1e3, "ms");
    emit("fig_server", &format!("{series}_p99_ms"), clients, percentile(&lat, 99.0) * 1e3, "ms");
    // One-line engine+server metrics view per cell (ISSUE 9): cumulative, so
    // deltas between consecutive cells attribute load to the cell.
    println!(
        "# {series}/{clients}: {}",
        db.metrics_snapshot().one_line(&[
            "server_queries",
            "server_rows_served",
            "wal_commits_acked",
            "server_query_nanos",
            "wal_fsync_nanos",
        ])
    );
}

fn main() {
    let rows: i64 =
        std::env::var("MAINLINE_SERVER_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let secs: u64 =
        std::env::var("MAINLINE_SERVER_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);

    let mut wal = std::env::temp_dir();
    wal.push(format!("mainline-fig-server-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let ckpt = wal.with_extension("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);

    let db = Database::open(DbConfig {
        log_path: Some(wal.clone()),
        fsync: false,
        checkpoint: Some(CheckpointConfig {
            dir: ckpt.clone(),
            wal_growth_bytes: u64::MAX, // manual checkpoints only
            poll_interval: Duration::from_millis(50),
            truncate_wal: false,
        }),
        transform: Some(TransformConfig { threshold_epochs: 1, workers: 2, ..Default::default() }),
        gc_interval: Duration::from_millis(2),
        transform_interval: Duration::from_millis(2),
        ..Default::default()
    })
    .unwrap();
    let t = db.create_table("t", schema(), vec![], true).unwrap();

    // Preload and freeze: streams must cross the zero-copy frozen path.
    let mut rng = Xoshiro256::seed_from_u64(7);
    for chunk in (0..rows).step_by(1000) {
        let txn = db.manager().begin();
        for i in chunk..(chunk + 1000).min(rows) {
            t.insert(
                &txn,
                &[
                    Value::BigInt(i),
                    if i % 11 == 0 { Value::Null } else { Value::Varchar(rng.alnum_string(8, 40)) },
                    Value::Integer(0),
                ],
            );
        }
        db.manager().commit(&txn);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let (hot, cooling, freezing, _, _) = db.pipeline().unwrap().block_state_census();
        if hot + cooling + freezing <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    db.checkpoint().unwrap();

    let server =
        db.serve(ServerConfig { workers: 4, max_connections: 64, ..Default::default() }).unwrap();
    println!("# fig_server: {rows} preloaded rows, {secs}s per cell, addr {}", server.addr());
    println!("figure,series,x,value,unit");

    for &clients in &[1usize, 2, 4, 8] {
        run_cell(&db, &server, "oltp", clients, clients, secs);
        run_cell(&db, &server, "stream", clients, 0, secs);
        run_cell(&db, &server, "mixed", clients, clients / 2, secs);
    }

    let stats = server.stats();
    assert!(stats.frozen_blocks_served > 0, "no frozen blocks served: {stats:?}");
    emit(
        "fig_server",
        "frozen_blocks_served",
        "total",
        stats.frozen_blocks_served as f64,
        "blocks",
    );
    emit("fig_server", "hot_blocks_served", "total", stats.hot_blocks_served as f64, "blocks");
    emit("fig_server", "rows_inserted", "total", stats.rows_inserted as f64, "rows");
    emit("fig_server", "rows_served", "total", stats.rows_served as f64, "rows");
    println!(
        "# served {} streams / {} queries over {} connections; {} protocol errors",
        stats.streams, stats.queries, stats.connections_accepted, stats.protocol_errors
    );

    server.shutdown();
    db.shutdown();
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let _ = std::fs::remove_dir_all(&ckpt);
}
