//! Observability overhead (ISSUE 9): what does the always-on metrics layer
//! cost on the hot paths it instruments?
//!
//! Three measurements:
//!
//! * **primitives** — raw ns/op of one counter `inc`, one histogram
//!   `observe`, and one gauge `add` on a single uncontended core;
//! * **insert path** — ns/op of the full `TableHandle::insert` path, A/B:
//!   metrics recording live vs. stubbed out (`mainline_obs::set_stubbed`
//!   turns every record into one relaxed load + branch — the floor the
//!   instrumented build could ever reach). The write counter is flushed
//!   once per *commit* from the undo-buffer length rather than bumped per
//!   row (a `lock`-prefixed RMW per ~350 ns insert costs ~5 % by itself),
//!   so the live arm's per-row cost is the stall-free admission probe
//!   alone. The acceptance bar is a **< 5 % delta**;
//! * **scan path** — same A/B over a full-table visible scan (reads are
//!   deliberately uninstrumented, so this pins the delta at ~zero).
//!
//! Knobs: `MAINLINE_OBS_ROWS` (rows per insert round, default 50000),
//! `MAINLINE_OBS_ROUNDS` (A/B rounds, default 5).

use mainline_bench::{emit, env_usize};
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_db::{Database, DbConfig};
use mainline_obs::{set_stubbed, Counter, Gauge, Histogram};
use std::hint::black_box;
use std::time::Instant;

fn ns_per_op(iters: u64, f: impl Fn(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn primitives() {
    static C: Counter = Counter::new("bench_counter", "fig_obs");
    static H: Histogram = Histogram::new("bench_hist", "fig_obs");
    static G: Gauge = Gauge::new("bench_gauge", "fig_obs");
    const N: u64 = 20_000_000;
    emit("fig_obs", "counter_inc", "ns", ns_per_op(N, |_| black_box(&C).inc()), "ns/op");
    emit("fig_obs", "histogram_observe", "ns", ns_per_op(N, |i| black_box(&H).observe(i)), "ns/op");
    emit("fig_obs", "gauge_add", "ns", ns_per_op(N, |_| black_box(&G).add(1)), "ns/op");
    set_stubbed(true);
    emit("fig_obs", "counter_inc_stubbed", "ns", ns_per_op(N, |_| black_box(&C).inc()), "ns/op");
    set_stubbed(false);
}

/// Arms alternate every `CHUNK` inserts: run-to-run drift (allocator state,
/// frequency scaling, background GC) moves far more than the instrumentation
/// costs, so the A/B must sample both arms inside the *same* drift regime.
const CHUNK: usize = 1_000;

/// One A/B insert round: one fresh table, `rows` inserts in one transaction,
/// the live/stubbed arm flipping every [`CHUNK`] rows (`start_stubbed` flips
/// which arm leads, so block-position bias cancels across rounds). Pushes
/// each chunk's ns/op into the matching arm's sample vector — per-chunk
/// samples, not per-arm sums, because a single scheduler preemption landing
/// inside one sub-millisecond chunk would otherwise swamp that arm's total.
fn insert_ab_round(
    db: &Database,
    name: &str,
    rows: usize,
    start_stubbed: bool,
    samples: &mut [Vec<f64>; 2],
) {
    let t = db
        .create_table(
            name,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::new("v", TypeId::BigInt),
            ]),
            vec![],
            false,
        )
        .unwrap();
    let txn = db.manager().begin();
    let mut i = 0;
    let mut chunk = 0usize;
    while i < rows {
        let stub = chunk.is_multiple_of(2) == start_stubbed;
        set_stubbed(stub);
        let end = (i + CHUNK).min(rows);
        let t0 = Instant::now();
        for j in i..end {
            t.insert(&txn, &[Value::BigInt(j as i64), Value::BigInt(0)]);
        }
        samples[stub as usize].push(t0.elapsed().as_nanos() as f64 / (end - i) as f64);
        i = end;
        chunk += 1;
    }
    set_stubbed(false);
    db.manager().commit(&txn);
    db.drop_table(name).unwrap();
}

fn scan_round(db: &Database, t: &mainline_db::TableHandle) -> f64 {
    let txn = db.manager().begin();
    let t0 = Instant::now();
    let n = t.table().count_visible(&txn);
    let ns = t0.elapsed().as_nanos() as f64 / n.max(1) as f64;
    db.manager().commit(&txn);
    black_box(n);
    ns
}

fn main() {
    let rows = env_usize("MAINLINE_OBS_ROWS", 50_000);
    let rounds = env_usize("MAINLINE_OBS_ROUNDS", 5);
    println!("# fig_obs: {rows} rows/round, {rounds} rounds per arm");
    println!("figure,series,x,value,unit");

    primitives();

    // No background transform/GC pressure: the measurement is the metrics
    // layer, not the engine's concurrency.
    let db = Database::open(DbConfig::default()).unwrap();

    // Chunk-interleaved A/B (see [`insert_ab_round`]); the estimator per arm
    // is the median over all per-chunk samples, which shrugs off preempted
    // chunks and shares every drift regime between the arms.
    let mut discard = [Vec::new(), Vec::new()];
    insert_ab_round(&db, "warmup", rows, false, &mut discard); // allocator warm-up
    let mut samples = [Vec::new(), Vec::new()];
    for r in 0..rounds {
        insert_ab_round(&db, &format!("round{r}"), rows, r % 2 == 1, &mut samples);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let live_ns = median(&mut samples[0]);
    let stubbed_ns = median(&mut samples[1]);
    let delta_pct = (live_ns - stubbed_ns) / stubbed_ns * 100.0;
    emit("fig_obs", "insert_live", "ns", live_ns, "ns/op");
    emit("fig_obs", "insert_stubbed", "ns", stubbed_ns, "ns/op");
    emit("fig_obs", "insert_delta", "pct", delta_pct, "%");

    // Scan arm over a fixed preloaded table.
    let t = db
        .create_table(
            "scan",
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::new("v", TypeId::BigInt),
            ]),
            vec![],
            false,
        )
        .unwrap();
    let txn = db.manager().begin();
    for i in 0..rows {
        t.insert(&txn, &[Value::BigInt(i as i64), Value::BigInt(1)]);
    }
    db.manager().commit(&txn);
    // A scan is one fast op, so take many alternating reps and keep the
    // median per arm (no assertion on this arm — reads are uninstrumented,
    // so the delta just reports the harness noise floor).
    let mut scan_live = Vec::new();
    let mut scan_stubbed = Vec::new();
    for r in 0..rounds * 8 {
        let arms: [bool; 2] = if r % 2 == 0 { [false, true] } else { [true, false] };
        for stub in arms {
            set_stubbed(stub);
            let ns = scan_round(&db, &t);
            if stub {
                scan_stubbed.push(ns)
            } else {
                scan_live.push(ns)
            }
        }
        set_stubbed(false);
    }
    let scan_live_ns = median(&mut scan_live);
    let scan_stubbed_ns = median(&mut scan_stubbed);
    emit("fig_obs", "scan_live", "ns", scan_live_ns, "ns/op");
    emit("fig_obs", "scan_stubbed", "ns", scan_stubbed_ns, "ns/op");
    emit(
        "fig_obs",
        "scan_delta",
        "pct",
        (scan_live_ns - scan_stubbed_ns) / scan_stubbed_ns * 100.0,
        "%",
    );

    println!(
        "# insert: live {live_ns:.1} ns/op vs stubbed {stubbed_ns:.1} ns/op -> {delta_pct:+.2}% \
         (acceptance: < 5%)"
    );
    println!("# {}", db.metrics_snapshot().one_line(&["db_writes"]));
    assert!(
        delta_pct < 5.0,
        "always-on metrics cost {delta_pct:.2}% on the uncontended insert path (bar: < 5%)"
    );
    db.shutdown();
}
