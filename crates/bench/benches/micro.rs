//! Criterion micro-benchmarks for engine primitives — regression guards for
//! the hot paths the figures depend on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::timestamp::TimestampOracle;
use mainline_common::value::{TypeId, Value};
use mainline_index::{BPlusTree, KeyBuilder};
use mainline_storage::{ProjectedRow, VarlenEntry};
use mainline_txn::{DataTable, TransactionManager};
use std::sync::Arc;

fn bench_timestamp_oracle(c: &mut Criterion) {
    let oracle = TimestampOracle::new();
    c.bench_function("timestamp_oracle_next", |b| b.iter(|| std::hint::black_box(oracle.next())));
}

fn bench_varlen_entry(c: &mut Criterion) {
    c.bench_function("varlen_inline_create_read", |b| {
        b.iter(|| {
            let e = VarlenEntry::from_bytes(b"twelve-bytes");
            std::hint::black_box(unsafe { e.as_slice() }.len())
        })
    });
    c.bench_function("varlen_outline_create_free", |b| {
        b.iter(|| {
            let e = VarlenEntry::from_bytes(b"a value that needs a heap buffer here");
            unsafe {
                std::hint::black_box(e.as_slice().len());
                e.free_buffer();
            }
        })
    });
}

fn bench_bptree(c: &mut Criterion) {
    let tree: BPlusTree<u64> = BPlusTree::new();
    let mut rng = Xoshiro256::seed_from_u64(1);
    for _ in 0..100_000 {
        let k = KeyBuilder::new().add_i64(rng.int_range(0, 1 << 40)).finish();
        tree.upsert(&k, 1);
    }
    c.bench_function("bptree_get_100k", |b| {
        b.iter(|| {
            let k = KeyBuilder::new().add_i64(rng.int_range(0, 1 << 40)).finish();
            std::hint::black_box(tree.get(&k))
        })
    });
    c.bench_function("bptree_insert_remove", |b| {
        b.iter(|| {
            let k = KeyBuilder::new().add_i64(rng.int_range(1 << 41, 1 << 42)).finish();
            tree.insert_unique(&k, 2);
            tree.remove(&k);
        })
    });
}

fn table() -> (Arc<TransactionManager>, Arc<DataTable>) {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(
        1,
        Schema::new(vec![
            ColumnDef::new("id", TypeId::BigInt),
            ColumnDef::new("name", TypeId::Varchar),
        ]),
    )
    .unwrap();
    (m, t)
}

fn bench_mvcc_ops(c: &mut Criterion) {
    let (m, t) = table();
    let types = [TypeId::BigInt, TypeId::Varchar];
    c.bench_function("mvcc_insert", |b| {
        b.iter_batched(
            || {
                ProjectedRow::from_values(
                    &types,
                    &[Value::BigInt(7), Value::string("bench-payload-value")],
                )
            },
            |row| {
                let txn = m.begin();
                std::hint::black_box(t.insert(&txn, &row));
                m.commit(&txn);
            },
            BatchSize::SmallInput,
        )
    });

    let setup = m.begin();
    let slot = t.insert(
        &setup,
        &ProjectedRow::from_values(&types, &[Value::BigInt(1), Value::string("select-target")]),
    );
    m.commit(&setup);
    c.bench_function("mvcc_select_hot", |b| {
        b.iter(|| {
            let txn = m.begin();
            std::hint::black_box(t.select_values(&txn, slot));
            m.commit(&txn);
        })
    });
    c.bench_function("mvcc_update_fixed", |b| {
        b.iter(|| {
            let txn = m.begin();
            let mut d = ProjectedRow::new();
            d.push_fixed(1, &Value::BigInt(9));
            t.update(&txn, slot, &d).unwrap();
            m.commit(&txn);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_timestamp_oracle, bench_varlen_entry, bench_bptree, bench_mvcc_ops
}
criterion_main!(benches);
