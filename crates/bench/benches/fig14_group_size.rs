//! Figure 14: sensitivity to the compaction-group size.
//!
//! 14a: blocks freed per pass; 14b: write-set size of the compacting
//! transactions. "Larger group sizes result in the DBMS freeing more blocks
//! but increases the size of the write-set ... the ideal fixed group size is
//! between 10 and 50."

use mainline_bench::{build_micro_table, emit, env_usize, MicroLayout};
use mainline_transform::compaction;

fn main() {
    let nblocks = env_usize("MAINLINE_BLOCKS", 50);
    // Paper group sizes {1,10,50,100,250,500} on 500 blocks; scale
    // proportionally to the configured block count.
    let mut group_sizes: Vec<usize> = [1usize, 10, 50, 100, 250, 500]
        .iter()
        .map(|&g| (g * nblocks / 500).max(1).min(nblocks))
        .collect();
    group_sizes.dedup();
    println!("# Figure 14 — compaction group size sensitivity ({nblocks} blocks)");
    println!("figure,series,pct_empty,value,unit");
    for pct in [1u32, 5, 10, 20, 40, 60, 80] {
        for &g in &group_sizes {
            let (m, t, _) = build_micro_table(MicroLayout::Mixed, nblocks, pct, 11);
            let blocks = t.blocks();
            let mut freed = 0usize;
            let mut max_write_set = 0usize;
            for group in blocks.chunks(g) {
                let plan = compaction::plan_approximate(group);
                let txn = m.begin();
                let stats = compaction::execute_plan(&t, &txn, &plan, |_, _, _, _| Ok(())).unwrap();
                m.commit(&txn);
                compaction::publish_insert_heads(&plan);
                freed += plan.emptied.len();
                max_write_set = max_write_set.max(stats.write_set_size);
            }
            emit("fig14a", &format!("group_{g}"), pct, freed as f64, "blocks_freed");
            emit("fig14b", &format!("group_{g}"), pct, max_write_set as f64, "ops");
        }
    }
    println!("# done");
}
