//! Cold-block buffer-manager sweep (ISSUE 6): scan + lookup cost as the
//! memory budget shrinks from unlimited to ~10% of the frozen data.
//!
//! Each cell runs the same workload — insert, let the pipeline freeze
//! everything, checkpoint (giving every frozen block a cold home in the
//! chain) — under a different `memory_budget_bytes`, lets the eviction
//! clock settle under the budget, and then measures:
//!
//! * **cold_scan** — a full relation scan that must fault evicted blocks
//!   back in from the checkpoint chain;
//! * **rescan** — the same scan again (partially warm: the clock keeps
//!   re-evicting behind the reader on the tight budgets);
//! * **lookups** — a point-lookup sweep through the primary index.
//!
//! Reported per cell: the settled resident bytes, eviction/fault counts,
//! and the three read timings. The unlimited cell measures the frozen data
//! size that the budgeted cells are scaled from.
//!
//! Knobs: `MAINLINE_BUFFER_ROWS` (row count, default 120000).

use mainline_bench::{emit, time};
use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_db::{CheckpointConfig, Database, DbConfig, IndexSpec, TableHandle};
use mainline_transform::TransformConfig;
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("payload", TypeId::Varchar),
        ColumnDef::new("version", TypeId::Integer),
    ])
}

fn insert_rows(db: &Database, t: &TableHandle, ids: std::ops::Range<i64>, rng: &mut Xoshiro256) {
    for chunk_start in ids.clone().step_by(1000) {
        let txn = db.manager().begin();
        for i in chunk_start..(chunk_start + 1000).min(ids.end) {
            t.insert(
                &txn,
                &[
                    Value::BigInt(i),
                    if i % 11 == 0 { Value::Null } else { Value::Varchar(rng.alnum_string(8, 40)) },
                    Value::Integer(0),
                ],
            );
        }
        db.manager().commit(&txn);
    }
}

fn full_scan(db: &Database, t: &TableHandle) -> usize {
    let txn = db.manager().begin();
    let n = t.table().count_visible(&txn);
    db.manager().commit(&txn);
    n
}

/// Run one budget cell; returns the settled resident bytes (the unlimited
/// cell uses this to size the budgeted ones).
fn run_cell(rows: i64, budget: Option<u64>, label: &str) -> u64 {
    let mut wal = std::env::temp_dir();
    wal.push(format!("mainline-fig-buffer-{}-{label}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let ckpt_root = wal.with_extension("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let db = Database::open(DbConfig {
        log_path: Some(wal.clone()),
        fsync: false,
        wal_segment_bytes: Some(1 << 20),
        checkpoint: Some(CheckpointConfig {
            dir: ckpt_root.clone(),
            wal_growth_bytes: u64::MAX, // manual checkpoints only
            poll_interval: Duration::from_millis(50),
            truncate_wal: false,
        }),
        // Explicit `u64::MAX` so the unlimited cell ignores any ambient
        // `MAINLINE_MEMORY_BUDGET_BYTES` override.
        memory_budget_bytes: Some(budget.unwrap_or(u64::MAX)),
        transform: Some(TransformConfig { threshold_epochs: 1, workers: 2, ..Default::default() }),
        gc_interval: Duration::from_millis(2),
        transform_interval: Duration::from_millis(2),
        ..Default::default()
    })
    .unwrap();
    let t = db.create_table("t", schema(), vec![IndexSpec::new("pk", &[0])], true).unwrap();

    let mut rng = Xoshiro256::seed_from_u64(rows as u64);
    insert_rows(&db, &t, 0..rows, &mut rng);

    // Freeze everything but the active tail, then checkpoint so every
    // frozen block has a chain location and becomes evictable.
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let (hot, cooling, freezing, _, _) = db.pipeline().unwrap().block_state_census();
        if hot + cooling + freezing <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    db.checkpoint().unwrap();

    // Let the eviction clock settle under the budget before measuring.
    if let Some(b) = budget {
        let deadline = Instant::now() + Duration::from_secs(30);
        while db.memory_stats().resident_bytes > b && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if db.memory_stats().resident_bytes > b {
            println!("# WARNING: evictor did not settle under budget at {label}");
        }
    }
    let settled = db.memory_stats();
    emit(
        "fig_buffer",
        "budget_mb",
        label,
        settled.budget_bytes.min(u64::MAX / 2) as f64 / (1 << 20) as f64,
        "MB",
    );
    emit(
        "fig_buffer",
        "resident_mb",
        label,
        settled.resident_bytes as f64 / (1 << 20) as f64,
        "MB",
    );
    emit("fig_buffer", "evicted_mb", label, settled.evicted_bytes as f64 / (1 << 20) as f64, "MB");

    let (n, cold_secs) = time(|| full_scan(&db, &t));
    assert_eq!(n as i64, rows, "scan under budget {budget:?} lost rows");
    let (n, warm_secs) = time(|| full_scan(&db, &t));
    assert_eq!(n as i64, rows);

    let lookups = 2000usize;
    let (hits, lookup_secs) = time(|| {
        let mut hits = 0usize;
        for k in 0..lookups {
            let id = (k as i64 * 7919) % rows;
            let txn = db.manager().begin();
            if t.lookup(&txn, "pk", &[Value::BigInt(id)]).unwrap().is_some() {
                hits += 1;
            }
            db.manager().commit(&txn);
        }
        hits
    });
    assert_eq!(hits, lookups);

    let stats = db.memory_stats();
    emit("fig_buffer", "evictions", label, stats.evictions as f64, "blocks");
    emit("fig_buffer", "faults", label, stats.faults as f64, "blocks");
    emit("fig_buffer", "cold_scan_s", label, cold_secs, "s");
    emit("fig_buffer", "rescan_s", label, warm_secs, "s");
    emit("fig_buffer", "lookup_us", label, lookup_secs * 1e6 / lookups as f64, "us");

    db.shutdown();
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let _ = std::fs::remove_dir_all(&ckpt_root);
    settled.resident_bytes
}

fn main() {
    let rows: i64 =
        std::env::var("MAINLINE_BUFFER_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(120_000);
    println!("# fig_buffer: {rows} rows per cell; budget sweep inf -> 10%");
    println!("figure,series,x,value,unit");
    let data_bytes = run_cell(rows, None, "inf");
    for (frac, label) in [(1.0, "100"), (0.5, "50"), (0.25, "25"), (0.10, "10")] {
        let budget = ((data_bytes as f64 * frac) as u64).max(1);
        run_cell(rows, Some(budget), label);
    }
}
