//! Figure 15: data-export speed vs the fraction of frozen blocks, for the
//! four export mechanisms of §5. Speed is normalized to the table's Arrow
//! payload volume (reference bytes / elapsed), so methods are comparable
//! regardless of per-protocol framing overhead.

use mainline_bench::{emit, env_usize, force_freeze, time};
use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_export::{export_table, ExportMethod};
use mainline_gc::GarbageCollector;
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::ProjectedRow;
use mainline_txn::{DataTable, TransactionManager};
use std::sync::Arc;

/// An ORDER_LINE-shaped table (the paper exports ~6000 blocks of it).
fn build(nblocks: usize) -> (Arc<TransactionManager>, Arc<DataTable>) {
    use TypeId::*;
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(
        1,
        Schema::new(vec![
            ColumnDef::new("ol_w_id", Integer),
            ColumnDef::new("ol_d_id", Integer),
            ColumnDef::new("ol_o_id", BigInt),
            ColumnDef::new("ol_number", Integer),
            ColumnDef::new("ol_i_id", Integer),
            ColumnDef::new("ol_supply_w_id", Integer),
            ColumnDef::new("ol_delivery_d", BigInt),
            ColumnDef::new("ol_quantity", Integer),
            ColumnDef::new("ol_amount", Double),
            ColumnDef::new("ol_dist_info", Varchar),
        ]),
    )
    .unwrap();
    let per_block = t.layout().num_slots() as usize;
    let types: Vec<TypeId> = t.types().to_vec();
    let mut rng = Xoshiro256::seed_from_u64(5);
    let txn = m.begin();
    for i in 0..(nblocks * per_block) {
        let row = ProjectedRow::from_values(
            &types,
            &[
                Value::Integer(1),
                Value::Integer((i % 10) as i32),
                Value::BigInt(i as i64 / 10),
                Value::Integer((i % 15) as i32),
                Value::Integer(rng.int_range(1, 100_000) as i32),
                Value::Integer(1),
                Value::BigInt(0),
                Value::Integer(5),
                Value::Double(rng.int_range(1, 999_999) as f64 / 100.0),
                Value::Varchar(rng.alnum_string(24, 24)),
            ],
        );
        t.insert(&txn, &row);
    }
    m.commit(&txn);
    let mut gc = GarbageCollector::new(Arc::clone(&m));
    gc.run();
    gc.run();
    (m, t)
}

fn main() {
    let nblocks = env_usize("MAINLINE_BLOCKS", 16);
    println!("# Figure 15 — export speed vs %frozen ({nblocks} blocks, ORDER_LINE shape)");
    println!("figure,series,pct_frozen,value,unit");
    let (m, t) = build(nblocks);

    // Reference volume: the canonical Arrow payload (computed at the end,
    // after all blocks freeze; do a dry pass now to size it cheaply).
    let reference_bytes: u64 = {
        let stats = export_table(ExportMethod::Flight, &m, &t);
        stats.bytes_transferred
    };

    let methods = [
        ("rdma", ExportMethod::Rdma),
        ("arrow_flight", ExportMethod::Flight),
        ("vectorized", ExportMethod::Vectorized),
        ("postgres_wire", ExportMethod::PostgresWire),
    ];

    // Sweep %frozen in increasing order, freezing additional blocks to
    // reach each level (freezing is monotone within the run).
    let blocks = t.blocks();
    for pct in [0usize, 1, 5, 10, 20, 40, 60, 80, 100] {
        let target = (nblocks * pct).div_ceil(100).min(blocks.len());
        for block in blocks.iter().take(target) {
            if BlockStateMachine::state(block.header()) == BlockState::Hot {
                force_freeze(block, false);
            }
        }
        let frozen_now = blocks
            .iter()
            .filter(|b| BlockStateMachine::state(b.header()) == BlockState::Frozen)
            .count();
        for (name, method) in methods {
            let (stats, secs) = time(|| export_table(method, &m, &t));
            let mb_per_s = reference_bytes as f64 / 1e6 / secs;
            emit("fig15", name, pct, mb_per_s, "MBps");
            assert!(stats.rows > 0);
            assert_eq!(stats.frozen_blocks as usize, frozen_now.min(stats.frozen_blocks as usize));
        }
    }
    println!("# done");
}
