//! Checkpoint-chain compaction sweep (ISSUE 8): chain disk usage and depth
//! over a churn workload, with the size-tiered generation GC on vs off.
//!
//! Both cells run the same script — insert a base table, freeze and
//! checkpoint it, then a number of churn rounds that each mutate a rotating
//! window of rows (thawing a slice of the frozen blocks) and checkpoint
//! again. Incremental checkpoints keep referencing the untouched frames in
//! older generations, so without compaction the chain deepens and its disk
//! footprint accretes dead frames; with the compactor riding the checkpoint
//! lock, superseded generations are rewritten and reclaimed as they decay.
//!
//! Reported per round and cell: chain on-disk bytes and generation count.
//! For the compacting cell: total frames/bytes rewritten, bytes reclaimed,
//! and the cost of a forced full pass at the end (`Database::compact`).
//!
//! Knobs: `MAINLINE_COMPACTION_ROWS` (base rows, default 180000 — about
//! six frozen blocks; one block holds ~28k rows of this schema),
//! `MAINLINE_COMPACTION_ROUNDS` (churn rounds, default 8).

use mainline_bench::{emit, time};
use mainline_checkpoint::chain_generations;
use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_db::{CheckpointConfig, CompactionConfig, Database, DbConfig, IndexSpec, TableHandle};
use mainline_transform::TransformConfig;
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("payload", TypeId::Varchar),
        ColumnDef::new("version", TypeId::Integer),
    ])
}

fn insert_rows(db: &Database, t: &TableHandle, ids: std::ops::Range<i64>, rng: &mut Xoshiro256) {
    for chunk_start in ids.clone().step_by(1000) {
        let txn = db.manager().begin();
        for i in chunk_start..(chunk_start + 1000).min(ids.end) {
            t.insert(
                &txn,
                &[
                    Value::BigInt(i),
                    if i % 11 == 0 { Value::Null } else { Value::Varchar(rng.alnum_string(8, 40)) },
                    Value::Integer(0),
                ],
            );
        }
        db.manager().commit(&txn);
    }
}

/// Update every 13th id in `[lo, hi)` — enough to thaw the blocks holding
/// that window, superseding their frames at the next checkpoint.
fn mutate_window(db: &Database, t: &TableHandle, lo: i64, hi: i64, rng: &mut Xoshiro256) {
    let mut i = lo.max(0);
    while i < hi {
        let payload = rng.alnum_string(8, 40);
        loop {
            let txn = db.manager().begin();
            let Some((slot, row)) = t.lookup(&txn, "pk", &[Value::BigInt(i)]).unwrap() else {
                db.manager().abort(&txn);
                break;
            };
            let v = row[2].as_i64().unwrap() as i32 + 1;
            match t.update(
                &txn,
                slot,
                &[(1, Value::Varchar(payload.clone())), (2, Value::Integer(v))],
            ) {
                Ok(()) => {
                    db.manager().commit(&txn);
                    break;
                }
                Err(_) => {
                    db.manager().abort(&txn);
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        i += 13;
    }
}

fn wait_converged(db: &Database) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let (hot, cooling, freezing, _, _) = db.pipeline().unwrap().block_state_census();
        if hot + cooling + freezing <= 1 {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("# WARNING: transform pipeline did not converge");
}

fn run_cell(rows: i64, rounds: usize, compaction: Option<CompactionConfig>, label: &str) {
    let mut wal = std::env::temp_dir();
    wal.push(format!("mainline-fig-compaction-{}-{label}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let ckpt_root = wal.with_extension("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let db = Database::open(DbConfig {
        log_path: Some(wal.clone()),
        fsync: false,
        wal_segment_bytes: Some(1 << 20),
        checkpoint: Some(CheckpointConfig {
            dir: ckpt_root.clone(),
            wal_growth_bytes: u64::MAX, // manual checkpoints only
            poll_interval: Duration::from_millis(50),
            truncate_wal: true,
        }),
        compaction,
        memory_budget_bytes: Some(u64::MAX),
        transform: Some(TransformConfig { threshold_epochs: 1, workers: 2, ..Default::default() }),
        gc_interval: Duration::from_millis(2),
        transform_interval: Duration::from_millis(2),
        ..Default::default()
    })
    .unwrap();
    let t = db.create_table("t", schema(), vec![IndexSpec::new("pk", &[0])], true).unwrap();

    let mut rng = Xoshiro256::seed_from_u64(rows as u64);
    insert_rows(&db, &t, 0..rows, &mut rng);
    wait_converged(&db);
    db.checkpoint().unwrap();

    let window = (rows / 8).max(1);
    for round in 0..rounds {
        let lo = (round as i64 * window * 3) % rows;
        mutate_window(&db, &t, lo, (lo + window).min(rows), &mut rng);
        wait_converged(&db);
        let cs = db.checkpoint().unwrap();
        println!(
            "# {label} round {round}: wrote {} frames, reused {}",
            cs.frozen_blocks, cs.frozen_blocks_reused
        );

        let gens = chain_generations(&ckpt_root).unwrap();
        let disk: u64 = gens.iter().map(|g| g.total_bytes).sum();
        emit(
            "fig_compaction",
            &format!("chain_mb_{label}"),
            round.to_string(),
            disk as f64 / (1 << 20) as f64,
            "MB",
        );
        emit(
            "fig_compaction",
            &format!("generations_{label}"),
            round.to_string(),
            gens.len() as f64,
            "gens",
        );
    }

    let stats = db.compaction_stats();
    emit("fig_compaction", "frames_rewritten", label, stats.frames_rewritten as f64, "frames");
    emit(
        "fig_compaction",
        "rewritten_mb",
        label,
        stats.bytes_rewritten as f64 / (1 << 20) as f64,
        "MB",
    );
    emit(
        "fig_compaction",
        "reclaimed_mb",
        label,
        stats.bytes_reclaimed as f64 / (1 << 20) as f64,
        "MB",
    );

    // Cost of one forced pass over whatever the run left behind (a no-op
    // measures the planning floor on the compacted cell).
    let (pass, secs) = time(|| db.compact().unwrap());
    emit("fig_compaction", "forced_pass_ms", label, secs * 1e3, "ms");
    emit("fig_compaction", "forced_pass_gens", label, pass.generations_compacted as f64, "gens");

    db.shutdown();
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let _ = std::fs::remove_dir_all(&ckpt_root);
}

fn main() {
    let rows: i64 = std::env::var("MAINLINE_COMPACTION_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(180_000);
    let rounds: usize =
        std::env::var("MAINLINE_COMPACTION_ROUNDS").ok().and_then(|s| s.parse().ok()).unwrap_or(8);
    println!("# fig_compaction: {rows} base rows, {rounds} churn rounds; GC off vs on");
    println!("figure,series,x,value,unit");
    run_cell(rows, rounds, None, "none");
    run_cell(
        rows,
        rounds,
        Some(CompactionConfig { min_dead_ratio: 0.2, tier_merge_count: 3, max_batch: 8 }),
        "gc",
    );
}
