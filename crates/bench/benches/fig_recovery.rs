//! Restart-speed sweep: WAL length × checkpoint on/off (ISSUE 4).
//!
//! Each cell runs a logged workload (inserts + updates + deletes, with the
//! transformation pipeline freezing cold blocks), takes an online
//! checkpoint mid-stream, appends a tail, "crashes" (no shutdown), and then
//! measures both restart paths against the *same* log bytes:
//!
//! * **cold** — replay the full WAL from genesis into a fresh database;
//! * **checkpoint** — `Database::open_from_checkpoint`: load frozen-block
//!   IPC segments directly, replay the hot delta, then only the WAL tail.
//!
//! Reported per cell: checkpoint write bandwidth (MB/s), records replayed
//! by each path, restart wall time, the speedup, how many WAL segments a
//! post-checkpoint truncation drops, and — new with incremental
//! checkpoints — what a *second* checkpoint after the tail delta costs:
//! cold MB written vs reused (frames whose `(base, freeze stamp)` the first
//! checkpoint already captured are referenced, not rewritten).
//!
//! Knobs: `MAINLINE_RECOVERY_ROWS` (comma list of row counts per cell,
//! default "60000,120000").

use mainline_bench::{emit, time};
use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_db::{CheckpointConfig, Database, DbConfig, IndexSpec, TableHandle};
use mainline_transform::TransformConfig;
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("payload", TypeId::Varchar),
        ColumnDef::new("version", TypeId::Integer),
    ])
}

fn insert_rows(db: &Database, t: &TableHandle, ids: std::ops::Range<i64>, rng: &mut Xoshiro256) {
    for chunk_start in ids.clone().step_by(1000) {
        let txn = db.manager().begin();
        for i in chunk_start..(chunk_start + 1000).min(ids.end) {
            t.insert(
                &txn,
                &[
                    Value::BigInt(i),
                    if i % 11 == 0 { Value::Null } else { Value::Varchar(rng.alnum_string(8, 40)) },
                    Value::Integer(0),
                ],
            );
        }
        db.manager().commit(&txn);
    }
}

fn mutate_every(db: &Database, t: &TableHandle, upper: i64, step: usize, rng: &mut Xoshiro256) {
    let txn = db.manager().begin();
    for i in (0..upper).step_by(step) {
        let Some((slot, row)) = t.lookup(&txn, "pk", &[Value::BigInt(i)]).unwrap() else {
            continue;
        };
        if i % 5 == 0 {
            let _ = t.delete(&txn, slot);
        } else {
            let v = row[2].as_i64().unwrap() as i32 + 1;
            let _ = t.update(
                &txn,
                slot,
                &[(1, Value::Varchar(rng.alnum_string(8, 40))), (2, Value::Integer(v))],
            );
        }
    }
    db.manager().commit(&txn);
}

/// Wait until the WAL byte counter stops moving (the transformation
/// pipeline's compaction transactions are logged too; reading the segment
/// files while they still rotate would race).
fn wait_wal_stable(db: &Database) {
    let log = db.log_manager().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = log.bytes_written();
    loop {
        std::thread::sleep(Duration::from_millis(150));
        let now = log.bytes_written();
        if now == last || Instant::now() > deadline {
            break;
        }
        last = now;
    }
    log.flush();
}

fn run_cell(rows: i64) {
    let mut wal = std::env::temp_dir();
    wal.push(format!("mainline-fig-recovery-{}-{rows}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let ckpt_root = wal.with_extension("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let mut rng = Xoshiro256::seed_from_u64(rows as u64);
    let checkpoint_ts;
    let db = {
        let db = Database::open(DbConfig {
            log_path: Some(wal.clone()),
            fsync: false,
            wal_segment_bytes: Some(256 * 1024),
            checkpoint: Some(CheckpointConfig {
                dir: ckpt_root.clone(),
                wal_growth_bytes: u64::MAX, // manual checkpoints only
                poll_interval: Duration::from_millis(50),
                truncate_wal: false, // keep the full log for the cold side
            }),
            transform: Some(TransformConfig {
                threshold_epochs: 1,
                workers: 2,
                ..Default::default()
            }),
            gc_interval: Duration::from_millis(2),
            transform_interval: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let t = db.create_table("t", schema(), vec![IndexSpec::new("pk", &[0])], true).unwrap();

        // Body workload, then let the pipeline freeze what went cold: wait
        // until at most one block (the active one) is still unfrozen, so
        // the checkpoint's cold/delta split reflects a settled system.
        insert_rows(&db, &t, 0..rows, &mut rng);
        mutate_every(&db, &t, rows, 23, &mut rng);
        if t.table().num_blocks() > 1 {
            let deadline = Instant::now() + Duration::from_secs(30);
            while Instant::now() < deadline {
                let (hot, cooling, freezing, _frozen, _evicted) =
                    db.pipeline().unwrap().block_state_census();
                if hot + cooling + freezing <= 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }

        let stats = db.checkpoint().unwrap();
        checkpoint_ts = stats.checkpoint_ts;
        let mb = (stats.cold_bytes + stats.delta_bytes) as f64 / (1 << 20) as f64;
        emit(
            "fig_recovery",
            "ckpt_write_mb_s",
            rows,
            mb / stats.duration_secs.max(1e-9),
            "MB_per_s",
        );
        emit("fig_recovery", "ckpt_frozen_blocks", rows, stats.frozen_blocks as f64, "blocks");
        emit("fig_recovery", "ckpt_delta_rows", rows, stats.delta_rows as f64, "rows");
        emit(
            "fig_recovery",
            "ckpt_cold_mb",
            rows,
            stats.cold_bytes as f64 / (1 << 20) as f64,
            "MB",
        );

        // Tail workload after the checkpoint, then "crash": the handle is
        // kept only so the incremental cell below can run against the live
        // database *after* the restart paths are measured; the restart
        // measurements see exactly the flushed on-disk state.
        insert_rows(&db, &t, rows..rows + rows / 4, &mut rng);
        mutate_every(&db, &t, rows + rows / 4, 17, &mut rng);
        wait_wal_stable(&db);
        db
    };

    // --- cold restart: full-WAL replay from genesis ---
    let ((cold_count, cold_ops), cold_secs) = time(|| {
        let log = mainline_wal::segments::read_log(&wal).unwrap();
        let db = Database::open(DbConfig::default()).unwrap();
        // The log is self-describing: replay recreates the table (and its
        // index definitions) from the logged DDL and rebuilds the indexes —
        // replay writes below the index layer, exactly like the checkpoint
        // path, so both sides pay the same rebuild scan.
        let stats = db.replay_log(&log).unwrap();
        let t = db.catalog().table("t").unwrap();
        let txn = db.manager().begin();
        let n = t.table().count_visible(&txn);
        db.manager().commit(&txn);
        db.shutdown();
        (n, stats.ops_applied)
    });

    // --- checkpoint restart: image + tail ---
    let ((ckpt_count, tail_ops, loaded), ckpt_secs) = time(|| {
        let (db, rs) =
            Database::open_from_checkpoint(DbConfig::default(), &ckpt_root, Some(&wal)).unwrap();
        let t = db.catalog().table("t").unwrap();
        let txn = db.manager().begin();
        let n = t.table().count_visible(&txn);
        db.manager().commit(&txn);
        db.shutdown();
        (n, rs.tail.ops_applied, rs.cold_rows_loaded + rs.delta_rows_loaded)
    });

    emit("fig_recovery", "cold_replay_records", rows, cold_ops as f64, "ops");
    emit("fig_recovery", "ckpt_replay_records", rows, tail_ops as f64, "ops");
    emit("fig_recovery", "ckpt_loaded_rows", rows, loaded as f64, "rows");
    emit("fig_recovery", "cold_restart_s", rows, cold_secs, "s");
    emit("fig_recovery", "ckpt_restart_s", rows, ckpt_secs, "s");
    emit("fig_recovery", "restart_speedup", rows, cold_secs / ckpt_secs.max(1e-9), "x");
    if cold_count != ckpt_count {
        println!(
            "# WARNING: restart paths disagree at rows={rows}: cold {cold_count} vs ckpt {ckpt_count}"
        );
    }
    if tail_ops >= cold_ops {
        println!(
            "# WARNING: checkpoint restart did not replay fewer records at rows={rows} \
             ({tail_ops} vs {cold_ops})"
        );
    }

    // --- incremental cells. ---
    // Checkpoint 2 follows the tail's heavy mutations: most frozen blocks
    // were thawed and refrozen (new stamps), so little is reusable — the
    // honest worst case. Checkpoint 3 follows a small insert-only delta:
    // every settled frozen frame is referenced, not rewritten, and the cold
    // cost collapses to O(delta).
    let t_live = db.catalog().table("t").unwrap();
    let mb = |b: u64| b as f64 / (1 << 20) as f64;
    let second = db.checkpoint().unwrap();
    emit("fig_recovery", "ckpt2_cold_mb_written", rows, mb(second.cold_bytes), "MB");
    emit("fig_recovery", "ckpt2_cold_mb_reused", rows, mb(second.cold_bytes_reused), "MB");

    insert_rows(&db, &t_live, rows + rows / 4..rows + rows / 4 + 500, &mut rng);
    wait_wal_stable(&db);
    let third = db.checkpoint().unwrap();
    emit("fig_recovery", "ckpt3_cold_mb_written", rows, mb(third.cold_bytes), "MB");
    emit("fig_recovery", "ckpt3_cold_mb_reused", rows, mb(third.cold_bytes_reused), "MB");
    emit("fig_recovery", "ckpt3_frames_reused", rows, third.frozen_blocks_reused as f64, "blocks");
    emit("fig_recovery", "ckpt3_frames_written", rows, third.frozen_blocks as f64, "blocks");
    let mb3 = mb(third.cold_bytes + third.delta_bytes);
    emit("fig_recovery", "ckpt3_write_mb_s", rows, mb3 / third.duration_secs.max(1e-9), "MB_per_s");
    if second.frozen_blocks + second.frozen_blocks_reused > 0
        && third.cold_bytes >= second.cold_bytes + second.cold_bytes_reused
    {
        println!(
            "# WARNING: small-delta checkpoint was not incremental at rows={rows} \
             ({} cold bytes written vs {} total cold)",
            third.cold_bytes,
            second.cold_bytes + second.cold_bytes_reused
        );
    }
    db.shutdown();

    // What truncation would reclaim now that the checkpoint covers history.
    let before = mainline_wal::segments::list_segments(&wal).unwrap().len();
    let dropped = mainline_wal::segments::truncate_below(&wal, checkpoint_ts).unwrap();
    emit("fig_recovery", "wal_segments_before", rows, before as f64, "segments");
    emit("fig_recovery", "wal_segments_dropped", rows, dropped as f64, "segments");

    let _ = std::fs::remove_file(&wal);
    for seg in mainline_wal::segments::list_segments(&wal).unwrap() {
        let _ = std::fs::remove_file(&seg.path);
    }
    let _ = std::fs::remove_dir_all(&ckpt_root);
}

fn main() {
    let rows: Vec<i64> = std::env::var("MAINLINE_RECOVERY_ROWS")
        .unwrap_or_else(|_| "60000,120000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    println!("# Restart speed — checkpoint + WAL tail vs full replay (rows {rows:?})");
    println!("figure,series,rows,value,unit");
    for &r in &rows {
        run_cell(r);
    }
    println!("# done");
}
