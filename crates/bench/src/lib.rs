//! Shared scaffolding for the figure-regeneration benches.
//!
//! Every bench prints paper-style series as CSV-ish rows:
//! `figure,series,x,value[,unit]` — one row per plotted point — plus a
//! human-readable summary. Scale knobs come from environment variables so
//! `cargo bench` finishes in minutes on a laptop while larger runs remain a
//! variable away (see EXPERIMENTS.md):
//!
//! * `MAINLINE_BLOCKS`  — blocks per transformation experiment (default 12)
//! * `MAINLINE_TPCC_SECONDS` — seconds per TPC-C cell (default 3)
//! * `MAINLINE_TPCC_THREADS` — comma list of worker counts (default "1,2,4")
//! * `MAINLINE_FIG1_ROWS` — LINEITEM rows for Fig. 1 (default 200000)

use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_gc::GarbageCollector;
use mainline_storage::block_state::BlockStateMachine;
use mainline_storage::raw_block::Block;
use mainline_storage::{ProjectedRow, TupleSlot};
use mainline_txn::{DataTable, TransactionManager};
use std::sync::Arc;

/// Environment-variable scale knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Print one series point in the shared format.
pub fn emit(figure: &str, series: &str, x: impl std::fmt::Display, value: f64, unit: &str) {
    println!("{figure},{series},{x},{value:.3},{unit}");
}

/// The §6.2 micro-benchmark layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroLayout {
    /// 8-byte int + 12–24-byte varlen (the default "50% varlen columns").
    Mixed,
    /// Two 8-byte ints (Fig. 12c).
    Fixed,
    /// Two varlen columns (Fig. 12d).
    Varlen,
}

impl MicroLayout {
    /// Table schema for this layout.
    pub fn schema(self) -> Schema {
        match self {
            MicroLayout::Mixed => Schema::new(vec![
                ColumnDef::new("fixed", TypeId::BigInt),
                ColumnDef::new("var", TypeId::Varchar),
            ]),
            MicroLayout::Fixed => Schema::new(vec![
                ColumnDef::new("a", TypeId::BigInt),
                ColumnDef::new("b", TypeId::BigInt),
            ]),
            MicroLayout::Varlen => Schema::new(vec![
                ColumnDef::new("va", TypeId::Varchar),
                ColumnDef::new("vb", TypeId::Varchar),
            ]),
        }
    }

    /// One row with 12–24-byte varlen values (§6.2's distribution).
    pub fn row(self, rng: &mut Xoshiro256, i: i64) -> Vec<Value> {
        let var = |rng: &mut Xoshiro256| Value::Varchar(rng.alnum_string(12, 24));
        match self {
            MicroLayout::Mixed => vec![Value::BigInt(i), var(rng)],
            MicroLayout::Fixed => vec![Value::BigInt(i), Value::BigInt(i ^ 0x5555)],
            MicroLayout::Varlen => vec![var(rng), var(rng)],
        }
    }
}

/// Build the §6.2 table: `nblocks` full blocks, then delete `pct_empty`% of
/// tuples at random and GC-prune the chains — exactly the "data that has
/// become cold since the last invocation" setup.
pub fn build_micro_table(
    layout: MicroLayout,
    nblocks: usize,
    pct_empty: u32,
    seed: u64,
) -> (Arc<TransactionManager>, Arc<DataTable>, usize) {
    let manager = Arc::new(TransactionManager::new());
    let table = DataTable::new(1, layout.schema()).unwrap();
    let per_block = table.layout().num_slots() as usize;
    let types: Vec<TypeId> = table.types().to_vec();
    let mut rng = Xoshiro256::seed_from_u64(seed);

    let mut slots: Vec<TupleSlot> = Vec::with_capacity(nblocks * per_block);
    let txn = manager.begin();
    for i in 0..(nblocks * per_block) {
        let row = ProjectedRow::from_values(&types, &layout.row(&mut rng, i as i64));
        slots.push(table.insert(&txn, &row));
    }
    manager.commit(&txn);

    let mut live = slots.len();
    if pct_empty > 0 {
        let txn = manager.begin();
        for &slot in &slots {
            if rng.next_below(100) < pct_empty as u64 {
                table.delete(&txn, slot).unwrap();
                live -= 1;
            }
        }
        manager.commit(&txn);
    }
    // Prune version chains so compaction can reuse the gaps.
    let mut gc = GarbageCollector::new(Arc::clone(&manager));
    gc.run();
    gc.run();
    (manager, table, live)
}

/// Freeze one hot block directly (compaction-less: used when the block's
/// occupancy is already what the experiment wants). Assumes pruned chains.
pub fn force_freeze(block: &Arc<Block>, dictionary: bool) {
    let h = block.header();
    assert!(BlockStateMachine::begin_cooling(h), "block must be hot");
    assert!(BlockStateMachine::begin_freezing(h), "no writers expected");
    unsafe {
        let displaced = if dictionary {
            mainline_transform::dictionary::compress_block(block)
        } else {
            mainline_transform::gather::gather_block(block)
        };
        block.stamp_freeze();
        BlockStateMachine::finish_freezing(h);
        displaced.free();
    }
}

/// Convenient wall-clock timer.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
