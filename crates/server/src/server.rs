//! The listener: an accept thread plus N poll-driven worker threads, with
//! graceful drain wired into the database's shutdown ordering.
//!
//! Topology: the accept thread owns the `TcpListener` and hands accepted
//! sockets round-robin to workers through per-worker injection queues (waking
//! the worker's poll). Each worker owns its connections outright — no shared
//! connection state, no locks on the data path. Drain follows PR 2's
//! worker-drain discipline: flip the stop flag, wake everyone; the accept
//! thread closes the listener, workers finish in-flight responses (bounded
//! by `drain_timeout`), flush, close, and join.

use crate::conn::Conn;
use crossbeam::queue::SegQueue;
use mainline_db::Database;
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Token reserved for each thread's waker.
const WAKER_TOKEN: Token = Token(0);
/// Token for the listener on the accept thread's poll.
const LISTENER_TOKEN: Token = Token(1);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port (read it back with
    /// [`Server::addr`]).
    pub addr: SocketAddr,
    /// Worker threads (connections are partitioned across them).
    pub workers: usize,
    /// Hard cap on simultaneously open connections; beyond it, accepts are
    /// dropped immediately.
    pub max_connections: usize,
    /// Per-connection send budget: a stream job stops encoding further
    /// blocks while this many bytes are queued unsent (backpressure to the
    /// encoder, not server memory).
    pub send_buffer_bytes: usize,
    /// Connections idle longer than this (no request, nothing in flight)
    /// are closed.
    pub idle_timeout: Duration,
    /// Upper bound on graceful drain: connections still busy past the
    /// deadline are force-closed.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            workers: 2,
            max_connections: 128,
            send_buffer_bytes: 256 << 10,
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Live counters, updated by the accept and worker threads.
#[derive(Default)]
pub(crate) struct SharedStats {
    pub(crate) accepted: AtomicU64,
    pub(crate) open: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) idle_closed: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) rows_inserted: AtomicU64,
    pub(crate) streams: AtomicU64,
    pub(crate) rows_served: AtomicU64,
    pub(crate) frozen_blocks_served: AtomicU64,
    pub(crate) hot_blocks_served: AtomicU64,
    pub(crate) admission_throttles: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
}

/// A point-in-time snapshot of server counters (see [`Server::stats`]),
/// sitting beside `Database::admission_stats()` and `memory_stats()`. While
/// the server runs, the same counters are also aliased (as `server_*`) into
/// every `mainline-obs` metrics snapshot — and therefore into the
/// `SELECT * FROM mainline_metrics` virtual table it serves.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Connections accepted and handed to a worker.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections dropped at accept because `max_connections` was reached.
    pub connections_rejected: u64,
    /// Connections closed by the idle timeout.
    pub connections_idle_closed: u64,
    /// Request bytes read off sockets.
    pub bytes_received: u64,
    /// Response bytes written to sockets.
    pub bytes_sent: u64,
    /// PG Query messages executed (including ones that errored).
    pub queries: u64,
    /// Rows inserted through acked INSERT statements.
    pub rows_inserted: u64,
    /// Completed streaming responses (PG SELECT + Flight DoGet).
    pub streams: u64,
    /// Rows delivered by streaming responses.
    pub rows_served: u64,
    /// Blocks served through the frozen zero-copy path.
    pub frozen_blocks_served: u64,
    /// Blocks served through the hot transactional-snapshot path.
    pub hot_blocks_served: u64,
    /// Write requests that saw a Yielded/Stalled admission decision.
    pub admission_throttles: u64,
    /// Malformed frames answered with a protocol error + close.
    pub protocol_errors: u64,
}

impl SharedStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_open: self.open.load(Ordering::Relaxed),
            connections_rejected: self.rejected.load(Ordering::Relaxed),
            connections_idle_closed: self.idle_closed.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            rows_inserted: self.rows_inserted.load(Ordering::Relaxed),
            streams: self.streams.load(Ordering::Relaxed),
            rows_served: self.rows_served.load(Ordering::Relaxed),
            frozen_blocks_served: self.frozen_blocks_served.load(Ordering::Relaxed),
            hot_blocks_served: self.hot_blocks_served.load(Ordering::Relaxed),
            admission_throttles: self.admission_throttles.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

struct WorkerLink {
    /// Accepted sockets waiting for this worker to adopt them.
    inbox: SegQueue<TcpStream>,
    waker: Waker,
}

/// State shared by the accept thread, the workers, and the handle.
pub(crate) struct ServerCore {
    pub(crate) cfg: ServerConfig,
    pub(crate) db: Arc<Database>,
    pub(crate) stats: SharedStats,
    stop: AtomicBool,
    workers: Vec<WorkerLink>,
    accept_waker: Waker,
    threads: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServerCore {
    /// Flip the stop flag, wake every thread, and join them. Idempotent and
    /// safe to race: the joiner is whoever drains the handle vector first;
    /// later callers block on the lock until the drain has finished.
    fn shutdown_and_join(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_waker.wake();
        for w in &self.workers {
            let _ = w.waker.wake();
        }
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Handle to a running server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) drains gracefully; `Database::shutdown`
/// also drains it first via a pre-shutdown hook, so in-flight responses
/// always finish against a fully-running engine.
pub struct Server {
    core: Arc<ServerCore>,
    /// Keeps this server's counters flowing into `mainline-obs` snapshots
    /// (as `server_*` aliases); dropping the handle with the server
    /// unregisters them.
    _metrics_source: mainline_obs::SourceHandle,
}

impl Server {
    /// Bind and start serving `db` per `config`.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> io::Result<Server> {
        crate::obs::register();
        let workers = config.workers.max(1);
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;

        let mut worker_polls = Vec::with_capacity(workers);
        let mut links = Vec::with_capacity(workers);
        for _ in 0..workers {
            let poll = Poll::new()?;
            let waker = Waker::new(poll.registry(), WAKER_TOKEN)?;
            worker_polls.push(poll);
            links.push(WorkerLink { inbox: SegQueue::new(), waker });
        }
        let accept_poll = Poll::new()?;
        let accept_waker = Waker::new(accept_poll.registry(), WAKER_TOKEN)?;
        accept_poll.registry().register(&listener, LISTENER_TOKEN, Interest::READABLE)?;

        let core = Arc::new(ServerCore {
            cfg: ServerConfig { addr, ..config },
            db: Arc::clone(&db),
            stats: SharedStats::default(),
            stop: AtomicBool::new(false),
            workers: links,
            accept_waker,
            threads: parking_lot::Mutex::new(Vec::new()),
        });

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name("server-accept".into())
                    .spawn(move || accept_loop(core, accept_poll, listener))
                    .expect("spawn accept thread"),
            );
        }
        for (i, poll) in worker_polls.into_iter().enumerate() {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("server-worker-{i}"))
                    .spawn(move || worker_loop(core, i, poll))
                    .expect("spawn server worker"),
            );
        }
        *core.threads.lock() = threads;

        // Drain before the engine tears down: Database::shutdown runs this
        // hook before stopping any engine thread. Weak, so a server the
        // user already dropped (and joined) is skipped, and the hook itself
        // never keeps the core alive.
        let weak: Weak<ServerCore> = Arc::downgrade(&core);
        db.register_pre_shutdown(Box::new(move || {
            if let Some(core) = weak.upgrade() {
                core.shutdown_and_join();
            }
        }));

        // Absorb this server's counters into the global registry: snapshots
        // (and the `mainline_metrics` virtual table served over this very
        // server) see them as `server_*` aliases. Weak for the same reason
        // as the drain hook — the source must not keep a dead core alive.
        let weak: Weak<ServerCore> = Arc::downgrade(&core);
        let source = mainline_obs::registry().register_source(move |s| {
            let Some(core) = weak.upgrade() else { return };
            let st = core.stats.snapshot();
            s.push_counter("server_connections_accepted", st.connections_accepted);
            s.push_gauge("server_connections_open", st.connections_open as i64);
            s.push_counter("server_connections_rejected", st.connections_rejected);
            s.push_counter("server_connections_idle_closed", st.connections_idle_closed);
            s.push_counter("server_bytes_received", st.bytes_received);
            s.push_counter("server_bytes_sent", st.bytes_sent);
            s.push_counter("server_queries", st.queries);
            s.push_counter("server_rows_inserted", st.rows_inserted);
            s.push_counter("server_streams", st.streams);
            s.push_counter("server_rows_served", st.rows_served);
            s.push_counter("server_frozen_blocks_served", st.frozen_blocks_served);
            s.push_counter("server_hot_blocks_served", st.hot_blocks_served);
            s.push_counter("server_admission_throttles", st.admission_throttles);
            s.push_counter("server_protocol_errors", st.protocol_errors);
        });

        Ok(Server { core, _metrics_source: source })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.core.cfg.addr
    }

    /// Snapshot the server counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats.snapshot()
    }

    /// Graceful drain: stop accepting, finish in-flight responses (bounded
    /// by `drain_timeout`), then join every server thread. Idempotent.
    pub fn shutdown(&self) {
        self.core.shutdown_and_join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.core.shutdown_and_join();
    }
}

/// `Database::serve(config)` — the ergonomic entry point.
pub trait DatabaseServe {
    /// Start a network frontend over this database.
    fn serve(&self, config: ServerConfig) -> io::Result<Server>;
}

impl DatabaseServe for Arc<Database> {
    fn serve(&self, config: ServerConfig) -> io::Result<Server> {
        Server::start(Arc::clone(self), config)
    }
}

fn accept_loop(core: Arc<ServerCore>, mut poll: Poll, listener: TcpListener) {
    let mut events = Events::with_capacity(8);
    let mut rr = 0usize;
    while !core.stop.load(Ordering::SeqCst) {
        let _ = poll.poll(&mut events, Some(Duration::from_millis(200)));
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // The open-connection gauge moves here (not in the
                    // worker) so this cap check never lags an accept burst.
                    if core.stats.open.load(Ordering::Relaxed) >= core.cfg.max_connections as u64 {
                        core.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        continue; // stream drops: peer sees a reset/EOF
                    }
                    let open = core.stats.open.fetch_add(1, Ordering::Relaxed) + 1;
                    let accepted = core.stats.accepted.fetch_add(1, Ordering::Relaxed) + 1;
                    mainline_obs::record_event(mainline_obs::kind::CONN_OPEN, accepted, open);
                    // Responses go out as several small chunks; without
                    // NODELAY, Nagle + the peer's delayed ACK adds ~40 ms
                    // to every request/response exchange.
                    let _ = stream.set_nodelay(true);
                    let link = &core.workers[rr % core.workers.len()];
                    rr += 1;
                    link.inbox.push(stream);
                    let _ = link.waker.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    // Listener drops here: the port closes before any connection drains.
}

fn worker_loop(core: Arc<ServerCore>, idx: usize, mut poll: Poll) {
    let mut events = Events::with_capacity(256);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = 2usize; // 0 = waker, 1 = (unused) listener token space
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if core.stop.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + core.cfg.drain_timeout);
            for conn in conns.values_mut() {
                conn.begin_drain();
                conn.advance(&core);
            }
        }
        if let Some(deadline) = drain_deadline {
            if conns.is_empty() {
                break;
            }
            if Instant::now() >= deadline {
                // Drain budget exhausted: force-close whatever is left.
                for (_, conn) in conns.drain() {
                    let _ = poll.registry().deregister(&conn.stream);
                    core.stats.open.fetch_sub(1, Ordering::Relaxed);
                }
                break;
            }
        }

        let _ = poll.poll(&mut events, Some(Duration::from_millis(50)));

        // Adopt newly accepted sockets.
        while let Some(stream) = core.workers[idx].inbox.pop() {
            if drain_deadline.is_some() {
                core.stats.open.fetch_sub(1, Ordering::Relaxed);
                continue; // raced the drain: drop it
            }
            let token = Token(next_token);
            next_token += 1;
            let conn = Conn::new(stream, token);
            if poll.registry().register(&conn.stream, token, Interest::READABLE).is_ok() {
                conns.insert(token.0, conn);
            } else {
                core.stats.open.fetch_sub(1, Ordering::Relaxed);
            }
        }

        for ev in events.iter() {
            if ev.token() == WAKER_TOKEN {
                continue;
            }
            if let Some(conn) = conns.get_mut(&ev.token().0) {
                conn.handle_event(ev.is_readable(), &core);
            }
        }

        // Sweep: idle timeout, drain progress (draining connections advance
        // on the tick even without events), interest updates, reaping.
        let now = Instant::now();
        let mut dead = Vec::new();
        for (key, conn) in conns.iter_mut() {
            if drain_deadline.is_some() && !conn.closed {
                conn.advance(&core);
            }
            if !conn.closed && conn.idle_expired(now, core.cfg.idle_timeout) {
                conn.closed = true;
                core.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
            }
            match conn.interest() {
                None => dead.push(*key),
                Some(interest) => {
                    let _ = poll.registry().reregister(&conn.stream, conn.token, interest);
                }
            }
        }
        for key in dead {
            if let Some(conn) = conns.remove(&key) {
                let _ = poll.registry().deregister(&conn.stream);
                core.stats.open.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}
