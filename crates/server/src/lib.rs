//! `mainline-server` — the network frontend.
//!
//! Turns the paper's §5 export story into an end-to-end wire property: a
//! multi-threaded, poll-driven TCP listener speaking two protocols whose
//! encoders already live in `crates/export` —
//!
//! * **PG wire** (`export/postgres.rs` shapes) for point/OLTP clients:
//!   startup, simple `Query` with a mini-SQL (`SELECT * FROM t`,
//!   multi-row `INSERT`), text `DataRow`s, SQLSTATE error responses.
//! * **Flight-style Arrow IPC** (`export/flight.rs`) for analytics readers:
//!   a `DoGet` streams one IPC frame per block. Frozen blocks are encoded
//!   straight from block memory (one memcpy into the frame) and the frame
//!   `Vec` is *moved* to the socket queue — no re-encode between block and
//!   wire, and the bytes equal the block's checkpoint cold segment.
//!   Evicted blocks fault in through the buffer manager on the way.
//!
//! Lifecycle: per-connection protocol detection, multiplexed sequential
//! request framing, per-connection send backpressure (a stream encodes
//! blocks only while the unsent queue is under budget), idle timeout, and
//! graceful drain on shutdown — registered as a `Database` pre-shutdown
//! hook, so in-flight responses finish while the engine is still fully up.
//! Write requests consult the shared `AdmissionController`; acked INSERTs
//! are durable (CommandComplete is withheld until the WAL says so).
//!
//! Entry points: [`DatabaseServe::serve`] (`db.serve(config)`) or
//! [`Server::start`]; observe with [`Server::stats`].

#![warn(missing_docs)]

pub mod client;
mod conn;
mod obs;
pub mod proto;
mod server;
pub mod sql;

pub use server::{DatabaseServe, Server, ServerConfig, ServerStats};
