//! The frontend's mini-SQL: exactly the two statements an OLTP point client
//! needs against this engine — `SELECT * FROM t` (streamed straight off the
//! export encoders) and multi-row `INSERT INTO t VALUES (...)`. Anything
//! else is a syntax error answered with SQLSTATE 42601; query planning is
//! not this repo's paper.

use mainline_common::schema::ColumnDef;
use mainline_common::value::{TypeId, Value};

/// A literal in an INSERT values list.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (doubled quotes escape).
    Str(String),
}

/// A parsed statement.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `SELECT * FROM <table>`.
    Select {
        /// Table to stream.
        table: String,
    },
    /// `INSERT INTO <table> VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// One literal row per VALUES tuple.
        rows: Vec<Vec<Literal>>,
    },
}

#[derive(Debug, PartialEq, Clone)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
}

fn tokenize(sql: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            ';' => break, // trailing statement terminator
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '\'' => {
                // String literal, '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err("unterminated string literal".into()),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    // Only allow +/- right after an exponent marker.
                    if matches!(bytes[i], b'+' | b'-') && !matches!(bytes[i - 1], b'e' | b'E') {
                        break;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if let Ok(v) = text.parse::<i64>() {
                    toks.push(Tok::Int(v));
                } else if let Ok(v) = text.parse::<f64>() {
                    toks.push(Tok::Float(v));
                } else {
                    return Err(format!("bad numeric literal {text:?}"));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(sql[start..i].to_string()));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

fn keyword(tok: Option<&Tok>, kw: &str) -> bool {
    matches!(tok, Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
}

fn ident(tok: Option<&Tok>) -> Result<String, String> {
    match tok {
        Some(Tok::Ident(s)) => Ok(s.clone()),
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Parse one statement. Errors are human-readable and become the message of
/// a SQLSTATE 42601 `ErrorResponse`.
pub fn parse(sql: &str) -> Result<Command, String> {
    let toks = tokenize(sql)?;
    if keyword(toks.first(), "select") {
        if toks.get(1) != Some(&Tok::Star) || !keyword(toks.get(2), "from") {
            return Err("only SELECT * FROM <table> is supported".into());
        }
        let table = ident(toks.get(3))?;
        if toks.len() > 4 {
            return Err("unexpected tokens after table name".into());
        }
        return Ok(Command::Select { table });
    }
    if keyword(toks.first(), "insert") {
        if !keyword(toks.get(1), "into") {
            return Err("expected INTO after INSERT".into());
        }
        let table = ident(toks.get(2))?;
        if !keyword(toks.get(3), "values") {
            return Err("expected VALUES".into());
        }
        let mut rows = Vec::new();
        let mut pos = 4;
        loop {
            if toks.get(pos) != Some(&Tok::LParen) {
                return Err("expected ( to open a values tuple".into());
            }
            pos += 1;
            let mut row = Vec::new();
            loop {
                let lit = match toks.get(pos) {
                    Some(Tok::Int(v)) => Literal::Int(*v),
                    Some(Tok::Float(v)) => Literal::Float(*v),
                    Some(Tok::Str(s)) => Literal::Str(s.clone()),
                    Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("null") => Literal::Null,
                    other => return Err(format!("expected literal, found {other:?}")),
                };
                row.push(lit);
                pos += 1;
                match toks.get(pos) {
                    Some(Tok::Comma) => pos += 1,
                    Some(Tok::RParen) => {
                        pos += 1;
                        break;
                    }
                    other => return Err(format!("expected , or ), found {other:?}")),
                }
            }
            rows.push(row);
            match toks.get(pos) {
                Some(Tok::Comma) => pos += 1,
                None => break,
                other => return Err(format!("unexpected token after tuple: {other:?}")),
            }
        }
        return Ok(Command::Insert { table, rows });
    }
    Err("only SELECT and INSERT are supported".into())
}

/// Coerce a parsed literal into a typed [`Value`] for column `col`.
/// Returns `Err((sqlstate, message))` on NULL-into-NOT-NULL, datatype
/// mismatch, or out-of-range integers.
pub fn coerce(lit: &Literal, col: &ColumnDef) -> Result<Value, (&'static str, String)> {
    match (lit, col.ty) {
        (Literal::Null, _) => {
            if col.nullable {
                Ok(Value::Null)
            } else {
                Err(("23502", format!("null value in column \"{}\"", col.name)))
            }
        }
        (Literal::Int(v), TypeId::TinyInt) => i8::try_from(*v)
            .map(Value::TinyInt)
            .map_err(|_| ("22003", format!("{v} out of range for tinyint"))),
        (Literal::Int(v), TypeId::SmallInt) => i16::try_from(*v)
            .map(Value::SmallInt)
            .map_err(|_| ("22003", format!("{v} out of range for smallint"))),
        (Literal::Int(v), TypeId::Integer) => i32::try_from(*v)
            .map(Value::Integer)
            .map_err(|_| ("22003", format!("{v} out of range for integer"))),
        (Literal::Int(v), TypeId::BigInt) => Ok(Value::BigInt(*v)),
        (Literal::Int(v), TypeId::Double) => Ok(Value::Double(*v as f64)),
        (Literal::Float(v), TypeId::Double) => Ok(Value::Double(*v)),
        (Literal::Str(s), TypeId::Varchar) => Ok(Value::Varchar(s.as_bytes().to_vec())),
        (lit, ty) => {
            Err(("42804", format!("cannot store {lit:?} in {ty:?} column \"{}\"", col.name)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_star() {
        assert_eq!(parse("SELECT * FROM orders"), Ok(Command::Select { table: "orders".into() }));
        assert_eq!(parse("select * from t;"), Ok(Command::Select { table: "t".into() }));
        assert!(parse("SELECT id FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
    }

    #[test]
    fn insert_multi_row() {
        let cmd = parse("INSERT INTO t VALUES (1, 'a''b', NULL), (-2, 'x', 3.5)").unwrap();
        assert_eq!(
            cmd,
            Command::Insert {
                table: "t".into(),
                rows: vec![
                    vec![Literal::Int(1), Literal::Str("a'b".into()), Literal::Null],
                    vec![Literal::Int(-2), Literal::Str("x".into()), Literal::Float(3.5)],
                ]
            }
        );
    }

    #[test]
    fn insert_syntax_errors() {
        assert!(parse("INSERT t VALUES (1)").is_err());
        assert!(parse("INSERT INTO t VALUES 1").is_err());
        assert!(parse("INSERT INTO t VALUES (1").is_err());
        assert!(parse("INSERT INTO t VALUES ()").is_err());
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("INSERT INTO t VALUES ('oops").is_err());
    }

    #[test]
    fn coercion_rules() {
        let not_null = ColumnDef::new("id", TypeId::Integer);
        let nullable = ColumnDef::nullable("name", TypeId::Varchar);
        assert_eq!(coerce(&Literal::Int(7), &not_null), Ok(Value::Integer(7)));
        assert_eq!(coerce(&Literal::Null, &nullable), Ok(Value::Null));
        assert_eq!(coerce(&Literal::Null, &not_null).unwrap_err().0, "23502");
        assert_eq!(coerce(&Literal::Int(1 << 40), &not_null).unwrap_err().0, "22003");
        assert_eq!(coerce(&Literal::Str("x".into()), &not_null).unwrap_err().0, "42804");
        assert_eq!(coerce(&Literal::Str("x".into()), &nullable), Ok(Value::Varchar(b"x".to_vec())));
    }
}
