//! Minimal blocking clients for both served protocols — the in-repo
//! conformance/stress/bench harness side of the wire. Deliberately naive
//! (std `TcpStream`, `read_exact` framing) so tests assert against an
//! implementation that shares no parsing code with the server.

use crate::proto;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Error fields from a PG `ErrorResponse`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PgWireError {
    /// SQLSTATE code ('C' field).
    pub code: String,
    /// Human-readable message ('M' field).
    pub message: String,
}

/// Everything a simple query produced, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Column names from RowDescription (empty for INSERT).
    pub columns: Vec<String>,
    /// Text-encoded rows; `None` is NULL.
    pub rows: Vec<Vec<Option<String>>>,
    /// CommandComplete tag, e.g. `SELECT 100` / `INSERT 0 1`.
    pub tag: Option<String>,
    /// ErrorResponse, if the statement failed.
    pub error: Option<PgWireError>,
}

/// A blocking PG-wire client speaking the startup + simple-query subset.
pub struct PgClient {
    stream: TcpStream,
}

impl PgClient {
    /// Connect and complete the startup handshake (no SSL probe).
    pub fn connect(addr: SocketAddr) -> io::Result<PgClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut startup = Vec::new();
        startup.extend_from_slice(&9u32.to_be_bytes());
        startup.extend_from_slice(&proto::PG_PROTOCOL_VERSION.to_be_bytes());
        startup.push(0);
        stream.write_all(&startup)?;
        let mut client = PgClient { stream };
        client.read_until_ready(&mut QueryOutcome::default())?;
        Ok(client)
    }

    /// Bound every read so a wedged server fails a test instead of hanging
    /// it.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Run one simple query, collecting rows / tag / error until
    /// ReadyForQuery.
    pub fn query(&mut self, sql: &str) -> io::Result<QueryOutcome> {
        let mut msg = vec![b'Q'];
        msg.extend_from_slice(&((4 + sql.len() + 1) as u32).to_be_bytes());
        msg.extend_from_slice(sql.as_bytes());
        msg.push(0);
        self.stream.write_all(&msg)?;
        let mut out = QueryOutcome::default();
        self.read_until_ready(&mut out)?;
        Ok(out)
    }

    /// Send Terminate and close.
    pub fn terminate(mut self) -> io::Result<()> {
        let mut msg = vec![b'X'];
        msg.extend_from_slice(&4u32.to_be_bytes());
        self.stream.write_all(&msg)?;
        Ok(())
    }

    fn read_msg(&mut self) -> io::Result<(u8, Vec<u8>)> {
        let mut hdr = [0u8; 5];
        self.stream.read_exact(&mut hdr)?;
        let ty = hdr[0];
        let len = u32::from_be_bytes(hdr[1..5].try_into().unwrap()) as usize;
        if !(4..=proto::MAX_FRAME).contains(&len) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad message length"));
        }
        let mut body = vec![0u8; len - 4];
        self.stream.read_exact(&mut body)?;
        Ok((ty, body))
    }

    fn read_until_ready(&mut self, out: &mut QueryOutcome) -> io::Result<()> {
        loop {
            let (ty, body) = self.read_msg()?;
            match ty {
                b'Z' => return Ok(()),
                b'T' => {
                    let ncols = u16::from_be_bytes(body[0..2].try_into().unwrap()) as usize;
                    let mut pos = 2;
                    for _ in 0..ncols {
                        let nul = body[pos..]
                            .iter()
                            .position(|&b| b == 0)
                            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad T"))?;
                        out.columns
                            .push(String::from_utf8_lossy(&body[pos..pos + nul]).into_owned());
                        pos += nul + 1 + 18; // name NUL + fixed per-column fields
                    }
                }
                b'D' => {
                    let nfields = u16::from_be_bytes(body[0..2].try_into().unwrap()) as usize;
                    let mut pos = 2;
                    let mut row = Vec::with_capacity(nfields);
                    for _ in 0..nfields {
                        let len = i32::from_be_bytes(body[pos..pos + 4].try_into().unwrap());
                        pos += 4;
                        if len < 0 {
                            row.push(None);
                        } else {
                            let end = pos + len as usize;
                            row.push(Some(String::from_utf8_lossy(&body[pos..end]).into_owned()));
                            pos = end;
                        }
                    }
                    out.rows.push(row);
                }
                b'C' => {
                    let nul = body.iter().position(|&b| b == 0).unwrap_or(body.len());
                    out.tag = Some(String::from_utf8_lossy(&body[..nul]).into_owned());
                }
                b'E' => {
                    let mut err = PgWireError::default();
                    let mut pos = 0;
                    while pos < body.len() && body[pos] != 0 {
                        let field = body[pos];
                        pos += 1;
                        let nul = body[pos..].iter().position(|&b| b == 0).unwrap_or(0);
                        let text = String::from_utf8_lossy(&body[pos..pos + nul]).into_owned();
                        pos += nul + 1;
                        match field {
                            b'C' => err.code = text,
                            b'M' => err.message = text,
                            _ => {}
                        }
                    }
                    out.error = Some(err);
                }
                _ => {} // AuthenticationOk, ParameterStatus, ... — ignored
            }
        }
    }
}

/// What one DoGet stream delivered.
#[derive(Debug, Clone, Default)]
pub struct DoGetOutcome {
    /// Raw IPC frames with their frozen flags, in block order. Decoding is
    /// the caller's business (`mainline_arrowlite::ipc::decode_batch`) — the
    /// byte-identity tests need the frames untouched.
    pub batches: Vec<(bool, Vec<u8>)>,
    /// Total rows, from the end frame.
    pub rows: u64,
    /// Blocks served frozen (zero-copy), from the end frame.
    pub frozen_blocks: u32,
    /// Blocks served hot (snapshot), from the end frame.
    pub hot_blocks: u32,
    /// Error frame payload, if the stream failed.
    pub error: Option<String>,
}

/// A blocking Flight-style IPC reader.
pub struct FlightClient {
    stream: TcpStream,
}

impl FlightClient {
    /// Connect and complete the `MLFL` handshake.
    pub fn connect(addr: SocketAddr) -> io::Result<FlightClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&proto::flight_handshake_ack())?;
        let mut ack = [0u8; 6];
        stream.read_exact(&mut ack)?;
        if ack != proto::flight_handshake_ack()[..] {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad handshake ack"));
        }
        Ok(FlightClient { stream })
    }

    /// Bound every read (see [`PgClient::set_read_timeout`]).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Stream a whole table; returns after the end (or error) frame.
    pub fn do_get(&mut self, table: &str) -> io::Result<DoGetOutcome> {
        self.stream.write_all(&proto::flight_do_get(table))?;
        let mut out = DoGetOutcome::default();
        loop {
            let mut hdr = [0u8; 4];
            self.stream.read_exact(&mut hdr)?;
            let len = u32::from_le_bytes(hdr) as usize;
            if !(1..=proto::MAX_FRAME).contains(&len) {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
            }
            let mut body = vec![0u8; len];
            self.stream.read_exact(&mut body)?;
            match body[0] {
                proto::FLIGHT_FRAME_BATCH => {
                    let frozen = body[1] != 0;
                    out.batches.push((frozen, body.split_off(2)));
                }
                proto::FLIGHT_FRAME_END => {
                    if body.len() != 17 {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad end frame"));
                    }
                    out.rows = u64::from_le_bytes(body[1..9].try_into().unwrap());
                    out.frozen_blocks = u32::from_le_bytes(body[9..13].try_into().unwrap());
                    out.hot_blocks = u32::from_le_bytes(body[13..17].try_into().unwrap());
                    return Ok(out);
                }
                proto::FLIGHT_FRAME_ERROR => {
                    out.error = Some(String::from_utf8_lossy(&body[1..]).into_owned());
                    return Ok(out);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown frame kind {other}"),
                    ));
                }
            }
        }
    }
}
