//! The frontend's process-global metrics (see `mainline-obs`). The
//! per-server counters stay on [`SharedStats`](crate::server::SharedStats)
//! — they are absorbed into the registry as a source when the server starts
//! — so this module holds only the latency histogram the counters cannot
//! express.

use mainline_obs::{Histogram, Metric};

/// Wall-clock nanoseconds per PG `Query` (parse through the last response
/// byte *encoded*; socket flush is excluded — a slow reader is the client's
/// latency, not the server's) and per Flight `DoGet` stream.
pub(crate) static SERVER_QUERY_NANOS: Histogram =
    Histogram::new("server_query_nanos", "request latency: parse through final encode");

/// Register this crate's metrics with the global registry (idempotent).
pub(crate) fn register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        mainline_obs::registry().register(&[Metric::Histogram(&SERVER_QUERY_NANOS)]);
    });
}
