//! Wire-level framing for both served protocols, kept as pure functions over
//! byte slices so the fuzz battery can drive them without sockets.
//!
//! * **PG wire (v3 shapes):** big-endian, `[type u8][len u32]` messages after
//!   an untyped startup packet. The server speaks the subset OLTP clients
//!   need: startup / SSLRequest, simple `Query`, `Terminate`.
//! * **Flight-style framing:** little-endian (matching the `arrowlite` IPC
//!   encoding it carries), `[len u32][kind u8][body]` frames after a
//!   `MLFL` handshake. Batch frames carry raw IPC bytes — for frozen blocks
//!   these are the same bytes the checkpoint writes as cold segments.
//!
//! Every parser returns [`Parsed`]: `Incomplete` (need more bytes),
//! `Complete` (value + bytes consumed), or `Malformed` (protocol error; the
//! connection answers with an error message and closes). Parsers must never
//! panic — the proptest suite feeds them arbitrary garbage.

/// Result of parsing a (possibly partial) frame from a connection buffer.
#[derive(Debug, PartialEq)]
pub enum Parsed<T> {
    /// Not enough bytes buffered yet to decide.
    Incomplete,
    /// A complete frame: the value and how many bytes it consumed.
    Complete {
        /// The decoded frame.
        value: T,
        /// Bytes to drain from the connection buffer.
        consumed: usize,
    },
    /// The bytes cannot be a valid frame; the message says why.
    Malformed(String),
}

/// Upper bound on any request frame (startup packet, query, DoGet). A
/// declared length beyond this is malformed on sight — it is how the parser
/// rejects "oversized" input without buffering it.
pub const MAX_FRAME: usize = 16 << 20;

/// PG v3 protocol version in the startup packet (3 << 16).
pub const PG_PROTOCOL_VERSION: u32 = 196608;
/// Magic "version" of an SSLRequest packet.
pub const PG_SSL_REQUEST: u32 = 80877103;
/// Magic "version" of a CancelRequest packet.
pub const PG_CANCEL_REQUEST: u32 = 80877102;

/// Magic opening a Flight-style session (the IPC frames inside carry
/// arrowlite's own `MLIP` magic).
pub const FLIGHT_MAGIC: &[u8; 4] = b"MLFL";
/// Flight-style framing version.
pub const FLIGHT_VERSION: u16 = 1;

/// Flight response frame kinds.
pub const FLIGHT_FRAME_BATCH: u8 = 0;
/// End-of-stream frame: totals for the stream.
pub const FLIGHT_FRAME_END: u8 = 1;
/// Error frame: UTF-8 message.
pub const FLIGHT_FRAME_ERROR: u8 = 2;
/// DoGet request command byte.
pub const FLIGHT_CMD_DO_GET: u8 = 1;

// ---------------------------------------------------------------- PG parse

/// A decoded PG startup-phase packet.
#[derive(Debug, PartialEq, Eq)]
pub enum PgStartup {
    /// SSLRequest: answer `'N'` and expect the real startup next.
    Ssl,
    /// A v3 StartupMessage (parameters are accepted and ignored).
    Startup,
    /// CancelRequest: nothing to cancel here; the connection just closes.
    Cancel,
}

/// Parse the untyped startup packet: `[len u32 BE][version u32 BE][...]`.
pub fn parse_pg_startup(buf: &[u8]) -> Parsed<PgStartup> {
    if buf.len() < 8 {
        return Parsed::Incomplete;
    }
    let len = u32::from_be_bytes(buf[0..4].try_into().unwrap()) as usize;
    if !(8..=MAX_FRAME).contains(&len) {
        return Parsed::Malformed(format!("startup packet length {len} out of range"));
    }
    if buf.len() < len {
        return Parsed::Incomplete;
    }
    let code = u32::from_be_bytes(buf[4..8].try_into().unwrap());
    let value = match code {
        PG_SSL_REQUEST => PgStartup::Ssl,
        PG_PROTOCOL_VERSION => PgStartup::Startup,
        PG_CANCEL_REQUEST => PgStartup::Cancel,
        other => {
            return Parsed::Malformed(format!("unsupported protocol version {other:#x}"));
        }
    };
    Parsed::Complete { value, consumed: len }
}

/// A decoded post-startup PG message.
#[derive(Debug, PartialEq, Eq)]
pub enum PgRequest {
    /// Simple query ('Q').
    Query(String),
    /// Graceful goodbye ('X').
    Terminate,
    /// Any other message type — unsupported by this frontend.
    Other(u8),
}

/// Parse one typed PG message: `[type u8][len u32 BE incl. itself][body]`.
pub fn parse_pg_message(buf: &[u8]) -> Parsed<PgRequest> {
    if buf.len() < 5 {
        return Parsed::Incomplete;
    }
    let ty = buf[0];
    let len = u32::from_be_bytes(buf[1..5].try_into().unwrap()) as usize;
    if !(4..=MAX_FRAME).contains(&len) {
        return Parsed::Malformed(format!("message length {len} out of range"));
    }
    let total = 1 + len;
    if buf.len() < total {
        return Parsed::Incomplete;
    }
    let body = &buf[5..total];
    let value = match ty {
        b'Q' => {
            // Query text is NUL-terminated.
            let Some(nul) = body.iter().position(|&b| b == 0) else {
                return Parsed::Malformed("query string missing terminator".into());
            };
            match std::str::from_utf8(&body[..nul]) {
                Ok(s) => PgRequest::Query(s.to_string()),
                Err(_) => return Parsed::Malformed("query string is not valid UTF-8".into()),
            }
        }
        b'X' => PgRequest::Terminate,
        other => PgRequest::Other(other),
    };
    Parsed::Complete { value, consumed: total }
}

// ---------------------------------------------------------------- PG build

fn pg_msg(ty: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(ty);
    out.extend_from_slice(&((4 + body.len()) as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// `AuthenticationOk`: the frontend does no authentication.
pub fn pg_auth_ok() -> Vec<u8> {
    pg_msg(b'R', &0u32.to_be_bytes())
}

/// `ReadyForQuery` in idle state.
pub fn pg_ready_for_query() -> Vec<u8> {
    pg_msg(b'Z', b"I")
}

/// `ErrorResponse` with severity ERROR, a stable SQLSTATE `code`, and a
/// human-readable message.
pub fn pg_error(code: &str, message: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + code.len() + message.len());
    body.push(b'S');
    body.extend_from_slice(b"ERROR\0");
    body.push(b'C');
    body.extend_from_slice(code.as_bytes());
    body.push(0);
    body.push(b'M');
    body.extend_from_slice(message.as_bytes());
    body.push(0);
    body.push(0); // field-list terminator
    pg_msg(b'E', &body)
}

// ------------------------------------------------------------ Flight parse

/// Parse the 6-byte Flight handshake: magic + version (u16 LE).
pub fn parse_flight_handshake(buf: &[u8]) -> Parsed<u16> {
    if buf.len() < 6 {
        return Parsed::Incomplete;
    }
    if &buf[0..4] != FLIGHT_MAGIC {
        return Parsed::Malformed("bad flight magic".into());
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != FLIGHT_VERSION {
        return Parsed::Malformed(format!("unsupported flight version {version}"));
    }
    Parsed::Complete { value: version, consumed: 6 }
}

/// A decoded Flight request.
#[derive(Debug, PartialEq, Eq)]
pub enum FlightRequest {
    /// Stream a whole table as IPC batch frames.
    DoGet {
        /// Table name.
        table: String,
    },
}

/// Parse one Flight request frame: `[len u32 LE][cmd u8][payload]`.
pub fn parse_flight_request(buf: &[u8]) -> Parsed<FlightRequest> {
    if buf.len() < 4 {
        return Parsed::Incomplete;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if !(1..=MAX_FRAME).contains(&len) {
        return Parsed::Malformed(format!("flight request length {len} out of range"));
    }
    let total = 4 + len;
    if buf.len() < total {
        return Parsed::Incomplete;
    }
    let cmd = buf[4];
    let payload = &buf[5..total];
    let value = match cmd {
        FLIGHT_CMD_DO_GET => {
            let table = match std::str::from_utf8(payload) {
                Ok(s) if !s.is_empty() => s.to_string(),
                Ok(_) => return Parsed::Malformed("DoGet with empty table name".into()),
                Err(_) => return Parsed::Malformed("DoGet table name is not UTF-8".into()),
            };
            FlightRequest::DoGet { table }
        }
        other => return Parsed::Malformed(format!("unknown flight command {other}")),
    };
    Parsed::Complete { value, consumed: total }
}

// ------------------------------------------------------------ Flight build

/// The server's handshake acknowledgement (same 6 bytes as the greeting).
pub fn flight_handshake_ack() -> Vec<u8> {
    let mut out = FLIGHT_MAGIC.to_vec();
    out.extend_from_slice(&FLIGHT_VERSION.to_le_bytes());
    out
}

/// Client-side: build a DoGet request frame for `table`.
pub fn flight_do_get(table: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + table.len());
    out.extend_from_slice(&((1 + table.len()) as u32).to_le_bytes());
    out.push(FLIGHT_CMD_DO_GET);
    out.extend_from_slice(table.as_bytes());
    out
}

/// Header of a batch frame whose body is `[frozen u8]` + `ipc_len` raw IPC
/// bytes. The IPC payload is enqueued as its own (moved, never re-encoded)
/// buffer right behind this header — that is the zero-copy seam.
pub fn flight_batch_header(frozen: bool, ipc_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.extend_from_slice(&((2 + ipc_len) as u32).to_le_bytes());
    out.push(FLIGHT_FRAME_BATCH);
    out.push(frozen as u8);
    out
}

/// End-of-stream frame: total rows and frozen/hot block counts.
pub fn flight_end_frame(rows: u64, frozen_blocks: u32, hot_blocks: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    out.extend_from_slice(&17u32.to_le_bytes());
    out.push(FLIGHT_FRAME_END);
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(&frozen_blocks.to_le_bytes());
    out.extend_from_slice(&hot_blocks.to_le_bytes());
    out
}

/// Error frame carrying a UTF-8 message. The stream it answers is over; the
/// connection itself stays usable unless the server also closes it.
pub fn flight_error_frame(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + message.len());
    out.extend_from_slice(&((1 + message.len()) as u32).to_le_bytes());
    out.push(FLIGHT_FRAME_ERROR);
    out.extend_from_slice(message.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_roundtrip() {
        let mut msg = Vec::new();
        msg.extend_from_slice(&9u32.to_be_bytes());
        msg.extend_from_slice(&PG_PROTOCOL_VERSION.to_be_bytes());
        msg.push(0);
        assert_eq!(
            parse_pg_startup(&msg),
            Parsed::Complete { value: PgStartup::Startup, consumed: 9 }
        );
        assert_eq!(parse_pg_startup(&msg[..7]), Parsed::Incomplete);
    }

    #[test]
    fn ssl_and_cancel_recognized() {
        for (code, want) in
            [(PG_SSL_REQUEST, PgStartup::Ssl), (PG_CANCEL_REQUEST, PgStartup::Cancel)]
        {
            let mut msg = Vec::new();
            msg.extend_from_slice(&8u32.to_be_bytes());
            msg.extend_from_slice(&code.to_be_bytes());
            assert_eq!(parse_pg_startup(&msg), Parsed::Complete { value: want, consumed: 8 });
        }
    }

    #[test]
    fn oversized_startup_is_malformed_immediately() {
        let mut msg = Vec::new();
        msg.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
        msg.extend_from_slice(&PG_PROTOCOL_VERSION.to_be_bytes());
        assert!(matches!(parse_pg_startup(&msg), Parsed::Malformed(_)));
        // Tiny length (would loop forever if consumed as 0) also malformed.
        let mut tiny = Vec::new();
        tiny.extend_from_slice(&3u32.to_be_bytes());
        tiny.extend_from_slice(&PG_PROTOCOL_VERSION.to_be_bytes());
        assert!(matches!(parse_pg_startup(&tiny), Parsed::Malformed(_)));
    }

    #[test]
    fn query_message_roundtrip() {
        let sql = "SELECT * FROM t";
        let mut msg = vec![b'Q'];
        msg.extend_from_slice(&((4 + sql.len() + 1) as u32).to_be_bytes());
        msg.extend_from_slice(sql.as_bytes());
        msg.push(0);
        match parse_pg_message(&msg) {
            Parsed::Complete { value: PgRequest::Query(s), consumed } => {
                assert_eq!(s, sql);
                assert_eq!(consumed, msg.len());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_pg_message(&msg[..4]), Parsed::Incomplete);
        assert_eq!(parse_pg_message(&msg[..msg.len() - 1]), Parsed::Incomplete);
    }

    #[test]
    fn query_without_terminator_is_malformed() {
        let mut msg = vec![b'Q'];
        msg.extend_from_slice(&8u32.to_be_bytes());
        msg.extend_from_slice(b"SELE");
        assert!(matches!(parse_pg_message(&msg), Parsed::Malformed(_)));
    }

    #[test]
    fn flight_frames_roundtrip() {
        assert_eq!(parse_flight_handshake(&flight_handshake_ack()[..5]), Parsed::Incomplete);
        assert_eq!(
            parse_flight_handshake(&flight_handshake_ack()),
            Parsed::Complete { value: FLIGHT_VERSION, consumed: 6 }
        );
        let req = flight_do_get("orders");
        assert_eq!(
            parse_flight_request(&req),
            Parsed::Complete {
                value: FlightRequest::DoGet { table: "orders".into() },
                consumed: req.len()
            }
        );
        assert!(matches!(parse_flight_request(&flight_do_get("")), Parsed::Malformed(_)));
        assert!(matches!(parse_flight_handshake(b"MLIPxx"), Parsed::Malformed(_)));
    }

    #[test]
    fn error_response_layout() {
        let e = pg_error("42P01", "relation \"x\" does not exist");
        assert_eq!(e[0], b'E');
        let len = u32::from_be_bytes(e[1..5].try_into().unwrap()) as usize;
        assert_eq!(len + 1, e.len());
        let body = &e[5..];
        assert!(body.starts_with(b"SERROR\0C42P01\0M"));
        assert_eq!(body[body.len() - 2..], [0, 0]);
    }
}
