//! Per-connection state machine: protocol detection, request execution, and
//! streaming with send backpressure.
//!
//! A connection is owned by exactly one worker thread, so nothing here
//! locks. Long responses (SELECT / DoGet) become a [`StreamJob`]: blocks are
//! encoded one at a time, only while the outbound queue is below the
//! configured send budget — a slow reader holds back encoding, not memory.

use crate::proto::{self, FlightRequest, Parsed, PgRequest, PgStartup};
use crate::server::ServerCore;
use crate::sql;
use mainline_common::value::{TypeId, Value};
use mainline_db::Admission;
use mainline_export::{flight, materialize, postgres};
use mainline_storage::raw_block::Block;
use mainline_txn::DataTable;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outbound byte queue: cheap chunk pushes (a moved IPC frame is never
/// re-copied), drained by non-blocking writes.
#[derive(Default)]
pub(crate) struct OutQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Offset into the front chunk already written.
    head: usize,
    /// Total unwritten bytes.
    len: usize,
}

impl OutQueue {
    fn push(&mut self, chunk: Vec<u8>) {
        if chunk.is_empty() {
            return;
        }
        self.len += chunk.len();
        self.chunks.push_back(chunk);
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What a long-running response still has to produce.
struct StreamJob {
    kind: JobKind,
    table: Arc<DataTable>,
    blocks: Vec<Arc<Block>>,
    next: usize,
    rows: u64,
    frozen: u32,
    hot: u32,
    /// Request arrival; the wire-latency histogram observes parse through
    /// the final response byte *encoded* (flush excluded — a slow reader is
    /// the client's latency, not the server's).
    started: Instant,
}

enum JobKind {
    /// PG SELECT: DataRow messages, then CommandComplete + ReadyForQuery.
    Pg { types: Vec<TypeId> },
    /// Flight DoGet: IPC batch frames, then an end frame.
    Flight,
}

#[derive(Debug, PartialEq, Eq)]
enum ConnState {
    /// Nothing decided yet: first bytes pick PG startup vs Flight magic.
    Detect,
    /// PG session, startup done, accepting Query messages.
    PgReady,
    /// Flight session, handshake done, accepting request frames.
    Flight,
}

/// One client connection (single-owner, driven by readiness events).
pub(crate) struct Conn {
    pub(crate) stream: mio::net::TcpStream,
    pub(crate) token: mio::Token,
    state: ConnState,
    inbuf: Vec<u8>,
    out: OutQueue,
    job: Option<StreamJob>,
    last_activity: Instant,
    /// Peer sent EOF; finish writing what is queued, then close.
    peer_eof: bool,
    /// Stop reading; close once the out queue drains (error or Terminate).
    close_after_flush: bool,
    /// Server is draining: no new requests, finish the in-flight response.
    draining: bool,
    /// Fully done; the worker reaps it.
    pub(crate) closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: mio::net::TcpStream, token: mio::Token) -> Conn {
        Conn {
            stream,
            token,
            state: ConnState::Detect,
            inbuf: Vec::new(),
            out: OutQueue::default(),
            job: None,
            last_activity: Instant::now(),
            peer_eof: false,
            close_after_flush: false,
            draining: false,
            closed: false,
        }
    }

    /// Enter drain mode: stop reading new requests; the in-flight response
    /// (if any) still runs to completion and flushes.
    pub(crate) fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// True if the connection has been idle (no reads, nothing to write, no
    /// stream in flight) longer than `timeout`.
    pub(crate) fn idle_expired(&self, now: Instant, timeout: Duration) -> bool {
        self.job.is_none()
            && self.out.is_empty()
            && now.duration_since(self.last_activity) > timeout
    }

    /// React to a readiness event, then make all possible progress.
    pub(crate) fn handle_event(&mut self, readable: bool, core: &ServerCore) {
        if readable && !self.close_after_flush && !self.draining && !self.peer_eof {
            self.read_input(core);
        }
        self.advance(core);
    }

    /// Drive parsing, streaming, and flushing as far as they will go.
    pub(crate) fn advance(&mut self, core: &ServerCore) {
        if self.closed {
            return;
        }
        loop {
            if !self.close_after_flush {
                self.process_input(core);
            }
            self.pump(core);
            self.flush(core);
            if self.closed {
                return;
            }
            // A fast local client can consume as quickly as we encode: keep
            // streaming until the job ends or the socket pushes back.
            if self.job.is_some() && self.out.is_empty() {
                continue;
            }
            break;
        }
        // Close once everything owed is on the wire: after an error or
        // Terminate, after peer EOF, or at drain (queued-but-unprocessed
        // requests are dropped; the in-flight response above was finished).
        if self.out.is_empty()
            && self.job.is_none()
            && (self.close_after_flush || self.peer_eof || self.draining)
        {
            self.closed = true;
        }
    }

    /// The interest this connection currently needs, or `None` when the
    /// worker should reap it.
    pub(crate) fn interest(&self) -> Option<mio::Interest> {
        if self.closed {
            return None;
        }
        let reading = !self.close_after_flush && !self.draining && !self.peer_eof
            // While a stream is in flight, requests queue in the kernel
            // buffer: back-pressure to the client instead of to memory.
            && self.job.is_none();
        match (reading, !self.out.is_empty()) {
            (true, true) => Some(mio::Interest::READABLE | mio::Interest::WRITABLE),
            (true, false) => Some(mio::Interest::READABLE),
            (false, true) => Some(mio::Interest::WRITABLE),
            // Nothing to do but wait for the stream job to produce output —
            // keep READABLE so a vanished peer still surfaces.
            (false, false) => Some(mio::Interest::READABLE),
        }
    }

    fn read_input(&mut self, core: &ServerCore) {
        let mut chunk = [0u8; 16384];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    core.stats.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }

    /// Parse and execute complete requests from the input buffer. Stops when
    /// bytes run out, a stream job starts (requests are strictly
    /// sequential), or an error closes the connection.
    fn process_input(&mut self, core: &ServerCore) {
        while !self.closed && !self.close_after_flush && self.job.is_none() && !self.draining {
            let consumed = match self.state {
                ConnState::Detect => {
                    if self.inbuf.len() >= 4 && &self.inbuf[0..4] == proto::FLIGHT_MAGIC {
                        match proto::parse_flight_handshake(&self.inbuf) {
                            Parsed::Incomplete => return,
                            Parsed::Malformed(msg) => {
                                self.flight_fail(core, &msg);
                                return;
                            }
                            Parsed::Complete { consumed, .. } => {
                                self.out.push(proto::flight_handshake_ack());
                                self.state = ConnState::Flight;
                                consumed
                            }
                        }
                    } else {
                        match proto::parse_pg_startup(&self.inbuf) {
                            Parsed::Incomplete => return,
                            Parsed::Malformed(msg) => {
                                self.pg_fail(core, "08P01", &msg);
                                return;
                            }
                            Parsed::Complete { value, consumed } => {
                                match value {
                                    PgStartup::Ssl => self.out.push(b"N".to_vec()),
                                    PgStartup::Startup => {
                                        self.out.push(proto::pg_auth_ok());
                                        self.out.push(proto::pg_ready_for_query());
                                        self.state = ConnState::PgReady;
                                    }
                                    PgStartup::Cancel => {
                                        // Nothing to cancel: just close.
                                        self.close_after_flush = true;
                                    }
                                }
                                consumed
                            }
                        }
                    }
                }
                ConnState::PgReady => match proto::parse_pg_message(&self.inbuf) {
                    Parsed::Incomplete => return,
                    Parsed::Malformed(msg) => {
                        self.pg_fail(core, "08P01", &msg);
                        return;
                    }
                    Parsed::Complete { value, consumed } => {
                        self.inbuf.drain(..consumed);
                        match value {
                            PgRequest::Query(q) => self.execute_pg(core, &q),
                            PgRequest::Terminate => self.close_after_flush = true,
                            PgRequest::Other(t) => {
                                self.pg_fail(
                                    core,
                                    "08P01",
                                    &format!("unsupported message type {:?}", t as char),
                                );
                            }
                        }
                        continue;
                    }
                },
                ConnState::Flight => match proto::parse_flight_request(&self.inbuf) {
                    Parsed::Incomplete => return,
                    Parsed::Malformed(msg) => {
                        self.flight_fail(core, &msg);
                        return;
                    }
                    Parsed::Complete { value, consumed } => {
                        self.inbuf.drain(..consumed);
                        let FlightRequest::DoGet { table } = value;
                        self.execute_flight(core, &table);
                        continue;
                    }
                },
            };
            self.inbuf.drain(..consumed);
        }
    }

    /// Protocol error on a PG (or undecided) connection: ErrorResponse,
    /// then close after flush.
    fn pg_fail(&mut self, core: &ServerCore, code: &str, msg: &str) {
        core.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        mainline_obs::record_event(mainline_obs::kind::CONN_ERROR, self.token.0 as u64, 0);
        self.out.push(proto::pg_error(code, msg));
        self.close_after_flush = true;
    }

    /// Protocol error on a Flight connection: error frame, then close.
    fn flight_fail(&mut self, core: &ServerCore, msg: &str) {
        core.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        mainline_obs::record_event(mainline_obs::kind::CONN_ERROR, self.token.0 as u64, 1);
        self.out.push(proto::flight_error_frame(msg));
        self.close_after_flush = true;
    }

    fn execute_pg(&mut self, core: &ServerCore, sql_text: &str) {
        core.stats.queries.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        match sql::parse(sql_text) {
            Err(msg) => {
                self.out.push(proto::pg_error("42601", &msg));
                self.out.push(proto::pg_ready_for_query());
            }
            // Introspection virtual tables first: they shadow any real table
            // of the same name and are answered synchronously (tiny result
            // sets — no stream job, no snapshot transaction).
            Ok(sql::Command::Select { table }) if table == "mainline_metrics" => {
                self.serve_metrics(core)
            }
            Ok(sql::Command::Select { table }) if table == "mainline_events" => self.serve_events(),
            Ok(sql::Command::Select { table }) => match core.db.catalog().table(&table) {
                Err(_) => {
                    self.out.push(proto::pg_error(
                        "42P01",
                        &format!("relation \"{table}\" does not exist"),
                    ));
                    self.out.push(proto::pg_ready_for_query());
                }
                Ok(handle) => {
                    let t = Arc::clone(handle.table());
                    self.out.push(postgres::row_description(&t));
                    self.job = Some(StreamJob {
                        kind: JobKind::Pg { types: t.types().to_vec() },
                        blocks: t.blocks(),
                        table: t,
                        next: 0,
                        rows: 0,
                        frozen: 0,
                        hot: 0,
                        started,
                    });
                }
            },
            Ok(sql::Command::Insert { table, rows }) => self.execute_insert(core, &table, &rows),
        }
        // Streaming SELECTs observe at job completion (in `pump`); every
        // synchronous outcome — INSERT, virtual table, error — is fully
        // encoded right here.
        if self.job.is_none() {
            crate::obs::SERVER_QUERY_NANOS.observe_duration(started.elapsed());
        }
    }

    /// `SELECT * FROM mainline_metrics`: every counter, gauge, and histogram
    /// the database can see — the process-global registry (with this
    /// server's own counters absorbed as `server_*`) plus the per-database
    /// aliases — as text rows `(name, kind, value, detail)`. Histograms
    /// surface their observation count as `value` and the distribution as
    /// `detail`.
    fn serve_metrics(&mut self, core: &ServerCore) {
        let snap = core.db.metrics_snapshot();
        self.out.push(postgres::named_row_description(&["name", "kind", "value", "detail"]));
        let mut buf = Vec::new();
        let mut rows = 0u64;
        for (name, v) in snap.counters() {
            postgres::text_data_row(
                &[name.clone(), "counter".into(), v.to_string(), String::new()],
                &mut buf,
            );
            rows += 1;
        }
        for (name, v) in snap.gauges() {
            postgres::text_data_row(
                &[name.clone(), "gauge".into(), v.to_string(), String::new()],
                &mut buf,
            );
            rows += 1;
        }
        for (name, h) in snap.histograms() {
            let detail = format!(
                "sum={} mean={:.0} p50={} p99={} max~{}",
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max_bound(),
            );
            postgres::text_data_row(
                &[name.clone(), "histogram".into(), h.count.to_string(), detail],
                &mut buf,
            );
            rows += 1;
        }
        self.out.push(buf);
        self.out.push(postgres::command_complete(&format!("SELECT {rows}")));
        self.out.push(proto::pg_ready_for_query());
    }

    /// `SELECT * FROM mainline_events`: the structured trace ring as text
    /// rows `(seq, micros, kind, a, b)`, oldest first. Empty unless event
    /// tracing is enabled (`DbConfig::observability` / `MAINLINE_OBS`).
    fn serve_events(&mut self) {
        let events = mainline_obs::events_snapshot();
        self.out.push(postgres::named_row_description(&["seq", "micros", "kind", "a", "b"]));
        let mut buf = Vec::new();
        for e in &events {
            postgres::text_data_row(
                &[
                    e.seq.to_string(),
                    e.micros.to_string(),
                    e.kind.to_string(),
                    e.a.to_string(),
                    e.b.to_string(),
                ],
                &mut buf,
            );
        }
        self.out.push(buf);
        self.out.push(postgres::command_complete(&format!("SELECT {}", events.len())));
        self.out.push(proto::pg_ready_for_query());
    }

    fn execute_insert(&mut self, core: &ServerCore, table: &str, rows: &[Vec<sql::Literal>]) {
        // Per-request admission at the connection boundary, mirroring the
        // TPC-C driver: the controller may yield or stall this worker thread
        // (bounded), which is exactly the backpressure the paper's control
        // loop wants the client to feel.
        match core.db.admission().admit() {
            Admission::Admitted => {}
            Admission::Yielded | Admission::Stalled => {
                core.stats.admission_throttles.fetch_add(1, Ordering::Relaxed);
            }
        }
        let handle = match core.db.catalog().table(table) {
            Ok(h) => h,
            Err(_) => {
                self.out.push(proto::pg_error(
                    "42P01",
                    &format!("relation \"{table}\" does not exist"),
                ));
                self.out.push(proto::pg_ready_for_query());
                return;
            }
        };
        // Validate + coerce every row before touching the transaction, so a
        // bad literal never leaves a half-applied multi-row insert.
        let columns = handle.table().schema().columns().to_vec();
        let mut coerced: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != columns.len() {
                self.out.push(proto::pg_error(
                    "42601",
                    &format!("expected {} values, got {}", columns.len(), row.len()),
                ));
                self.out.push(proto::pg_ready_for_query());
                return;
            }
            let mut vals = Vec::with_capacity(row.len());
            for (lit, col) in row.iter().zip(&columns) {
                match sql::coerce(lit, col) {
                    Ok(v) => vals.push(v),
                    Err((code, msg)) => {
                        self.out.push(proto::pg_error(code, &msg));
                        self.out.push(proto::pg_ready_for_query());
                        return;
                    }
                }
            }
            coerced.push(vals);
        }
        let txn = core.db.manager().begin();
        for vals in &coerced {
            handle.insert(&txn, vals);
        }
        core.db.manager().commit(&txn);
        // The engine acks commits asynchronously (group commit); the wire
        // protocol withholds CommandComplete until the write is durable, so
        // an acked insert survives any crash-after-ack.
        if let Some(log) = core.db.log_manager() {
            if !txn.is_durable() {
                log.flush();
            }
        }
        core.stats.rows_inserted.fetch_add(coerced.len() as u64, Ordering::Relaxed);
        self.out.push(postgres::command_complete(&format!("INSERT 0 {}", coerced.len())));
        self.out.push(proto::pg_ready_for_query());
    }

    fn execute_flight(&mut self, core: &ServerCore, table: &str) {
        match core.db.catalog().table(table) {
            Err(_) => {
                // Stream-level error; the connection stays usable.
                self.out
                    .push(proto::flight_error_frame(&format!("table \"{table}\" does not exist")));
            }
            Ok(handle) => {
                let t = Arc::clone(handle.table());
                self.job = Some(StreamJob {
                    kind: JobKind::Flight,
                    blocks: t.blocks(),
                    table: t,
                    next: 0,
                    rows: 0,
                    frozen: 0,
                    hot: 0,
                    started: Instant::now(),
                });
            }
        }
    }

    /// Encode stream-job blocks into the out queue, but only while below the
    /// send budget: a slow reader throttles encoding, not server memory.
    fn pump(&mut self, core: &ServerCore) {
        loop {
            if self.job.is_none() || self.out.len() >= core.cfg.send_buffer_bytes {
                return;
            }
            let finished = {
                let job = self.job.as_ref().unwrap();
                job.next >= job.blocks.len()
            };
            if finished {
                let job = self.job.take().unwrap();
                crate::obs::SERVER_QUERY_NANOS.observe_duration(job.started.elapsed());
                core.stats.streams.fetch_add(1, Ordering::Relaxed);
                core.stats.rows_served.fetch_add(job.rows, Ordering::Relaxed);
                core.stats.frozen_blocks_served.fetch_add(job.frozen as u64, Ordering::Relaxed);
                core.stats.hot_blocks_served.fetch_add(job.hot as u64, Ordering::Relaxed);
                match job.kind {
                    JobKind::Pg { .. } => {
                        self.out.push(postgres::command_complete(&format!("SELECT {}", job.rows)));
                        self.out.push(proto::pg_ready_for_query());
                    }
                    JobKind::Flight => {
                        self.out.push(proto::flight_end_frame(job.rows, job.frozen, job.hot));
                    }
                }
                return;
            }
            let job = self.job.as_mut().unwrap();
            let block = Arc::clone(&job.blocks[job.next]);
            job.next += 1;
            match &job.kind {
                JobKind::Pg { types } => {
                    // Evicted blocks fault in inside block_batch.
                    let (batch, frozen) =
                        materialize::block_batch(core.db.manager(), &job.table, &block);
                    let mut buf = Vec::new();
                    job.rows += postgres::data_rows(&batch, types, &mut buf);
                    if frozen {
                        job.frozen += 1;
                    } else {
                        job.hot += 1;
                    }
                    self.out.push(buf);
                }
                JobKind::Flight => {
                    // Frozen path: the IPC frame is built straight from block
                    // memory (one memcpy) and the Vec is moved to the socket
                    // queue — no re-encode between block and wire.
                    let (ipc, frozen, rows) =
                        flight::encode_block(core.db.manager(), &job.table, &block);
                    job.rows += rows;
                    if frozen {
                        job.frozen += 1;
                    } else {
                        job.hot += 1;
                    }
                    self.out.push(proto::flight_batch_header(frozen, ipc.len()));
                    self.out.push(ipc);
                }
            }
        }
    }

    /// Write queued bytes until the socket pushes back.
    fn flush(&mut self, core: &ServerCore) {
        while let Some(front) = self.out.chunks.front() {
            match self.stream.write(&front[self.out.head..]) {
                Ok(0) => {
                    self.closed = true;
                    return;
                }
                Ok(n) => {
                    core.stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    self.last_activity = Instant::now();
                    self.out.head += n;
                    self.out.len -= n;
                    if self.out.head == front.len() {
                        self.out.chunks.pop_front();
                        self.out.head = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }
}
