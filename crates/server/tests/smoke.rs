//! Crate-level smoke test: boot an in-memory database, serve it, and run
//! both protocols over real sockets.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_db::{Database, DbConfig};
use mainline_server::client::{FlightClient, PgClient};
use mainline_server::{DatabaseServe, ServerConfig};
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("name", TypeId::Varchar),
    ])
}

#[test]
fn pg_and_flight_roundtrip() {
    let db = Database::open(DbConfig::default()).unwrap();
    db.create_table("t", schema(), vec![], false).unwrap();
    let server = db.serve(ServerConfig::default()).unwrap();
    let addr = server.addr();

    let mut pg = PgClient::connect(addr).unwrap();
    pg.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // INSERT, including NULL and an escaped quote.
    let out = pg.query("INSERT INTO t VALUES (1, 'alpha'), (2, NULL), (3, 'o''k')").unwrap();
    assert_eq!(out.error, None);
    assert_eq!(out.tag.as_deref(), Some("INSERT 0 3"));

    // SELECT them back.
    let out = pg.query("SELECT * FROM t").unwrap();
    assert_eq!(out.error, None);
    assert_eq!(out.columns, vec!["id", "name"]);
    assert_eq!(out.tag.as_deref(), Some("SELECT 3"));
    let mut rows = out.rows.clone();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            vec![Some("1".into()), Some("alpha".into())],
            vec![Some("2".into()), None],
            vec![Some("3".into()), Some("o'k".into())],
        ]
    );

    // Errors keep the session usable.
    let out = pg.query("SELECT * FROM missing").unwrap();
    assert_eq!(out.error.as_ref().unwrap().code, "42P01");
    let out = pg.query("DELETE FROM t").unwrap();
    assert_eq!(out.error.as_ref().unwrap().code, "42601");
    let out = pg.query("SELECT * FROM t").unwrap();
    assert_eq!(out.tag.as_deref(), Some("SELECT 3"));
    pg.terminate().unwrap();

    // Flight side.
    let mut fl = FlightClient::connect(addr).unwrap();
    fl.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let got = fl.do_get("t").unwrap();
    assert_eq!(got.error, None);
    assert_eq!(got.rows, 3);
    assert_eq!(got.frozen_blocks + got.hot_blocks, got.batches.len() as u32);
    let total: usize = got
        .batches
        .iter()
        .map(|(_, ipc)| {
            let batch = mainline_arrowlite::ipc::decode_batch(ipc).unwrap();
            (0..batch.num_rows()).filter(|&r| batch.columns().iter().any(|c| c.is_valid(r))).count()
        })
        .sum();
    assert_eq!(total, 3);
    let missing = fl.do_get("nope").unwrap();
    assert!(missing.error.is_some());
    // Stream again on the same connection after the error.
    let again = fl.do_get("t").unwrap();
    assert_eq!(again.rows, 3);

    let stats = server.stats();
    assert!(stats.connections_accepted >= 2);
    assert_eq!(stats.rows_inserted, 3);
    assert!(stats.streams >= 3);
    server.shutdown();
    db.shutdown();
}
