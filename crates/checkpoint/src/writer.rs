//! The online checkpoint writer.
//!
//! One checkpoint = one MVCC transaction held open across a walk of every
//! table's block list (see the crate docs for why the open transaction makes
//! the frozen-block fast path consistent). Writers keep running throughout —
//! the walk takes no locks beyond each frozen block's Fig. 7 reader counter.
//!
//! **Incremental:** before the walk, the writer reads the previous
//! checkpoint's manifest (via `CURRENT`) and indexes its cold frames by
//! `(table id, freeze stamp)` — stamps are process-unique per freeze, so
//! within one era they identify content on their own, and keying without
//! the block address lets a *restarted* process (which re-adopted the
//! stamps but rebuilt the blocks at new addresses) keep diffing
//! incrementally. A frozen block whose identity already appears there is
//! not re-encoded or re-written — its manifest `frame` line carries the
//! prior location forward (possibly several generations back) under the
//! block's **current** address, so the WAL slot remap stays correct.
//! Checkpoint cost is therefore bounded by *changed* data; pruning keeps
//! every directory the new manifest still references.
//!
//! **Evicted blocks** (cold-block buffer manager): a block whose body was
//! released is *by construction* already captured by the chain — its
//! recorded [`ColdLocation`] is emitted as
//! the frame reference without any I/O, and the referenced generation stays
//! in the manifest's keep-set, so pruning can never delete a generation an
//! evicted block still points into. Conversely, every frame this walk
//! writes (or reuses) is recorded back onto its block *after* the publish
//! rename — making the block evictable from then on.
//!
//! Segment encodings:
//!
//! * `table-<id>.cold` — `MLCKCLD2` + `u32 table_id`, then one frame per
//!   frozen block: `[u64 old_base][u64 freeze_stamp][u64 freeze_era]`
//!   `[u32 n][u32 bitmap_len][alloc bitmap]`
//!   `[u64 payload_len][payload]`, where `payload` is **exactly** the Arrow
//!   IPC frame Flight export would emit for the block
//!   ([`ipc::encode_batch`] of
//!   [`mainline_export::materialize::frozen_batch`]) — the
//!   zero-transformation claim, byte for byte. The envelope carries what the
//!   IPC payload cannot: the block's old base address (for WAL slot
//!   remapping) and the allocation bitmap (Arrow validity conflates a gap
//!   with an all-NULL row).
//! * `table-<id>.delta` — `MLCKDLT1` + `u32 table_id`, then a WAL-format
//!   redo stream: one insert frame per visible hot row (slot = the row's
//!   current physical slot, for the same remapping) and a single commit
//!   marker at the checkpoint timestamp. Restart replays it with the
//!   ordinary recovery machinery.
//!
//! Every externally visible file operation of the publish sequence consults
//! [`mainline_common::failpoint`], so the crash-matrix battery can kill the
//! sequence after any prefix and prove the surviving state restores.

use crate::manifest::{
    FrameRef, IndexManifest, Manifest, SegmentEntry, SegmentKind, TableManifest,
};
use mainline_arrowlite::ipc;
use mainline_common::value::{TypeId, Value};
use mainline_common::{failpoint, Result, Timestamp};
use mainline_export::materialize::frozen_batch;
use mainline_storage::block_state::BlockStateMachine;
use mainline_storage::layout::NUM_RESERVED_COLS;
use mainline_storage::{access, ColdLocation, TupleSlot};
use mainline_txn::{DataTable, RedoCol, RedoOp, RedoRecord, TransactionManager};
use mainline_wal::record::{encode_commit, encode_redo};
use std::collections::{BTreeSet, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefixes of the two segment encodings. Cold v1 (`MLCKCLD1`, no
/// stamp/era in the envelope) is deliberately rejected rather than migrated
/// — checkpoints are regenerable artifacts, same policy as the manifest.
pub(crate) const COLD_MAGIC: &[u8; 8] = b"MLCKCLD2";
pub(crate) const DELTA_MAGIC: &[u8; 8] = b"MLCKDLT1";

/// Everything the writer needs to know about one table. `mainline-db` builds
/// these from its catalog; tests may hand-construct them.
pub struct TableCheckpointSpec {
    /// Table name (recorded for restart's catalog rebuild).
    pub name: String,
    /// Whether the table is registered with the transformation pipeline.
    pub transform: bool,
    /// Secondary-index definitions: `(name, user-column positions)`.
    pub indexes: Vec<(String, Vec<usize>)>,
    /// The data table itself.
    pub table: Arc<DataTable>,
}

/// What a checkpoint wrote.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStats {
    /// The checkpoint timestamp (WAL replay resumes strictly after it).
    pub checkpoint_ts: Timestamp,
    /// Frozen blocks newly captured via the zero-transformation IPC path
    /// (excluding frames reused from the previous checkpoint).
    pub frozen_blocks: usize,
    /// Frozen blocks whose `(base, freeze stamp)` already appeared in the
    /// previous checkpoint: referenced, not rewritten.
    pub frozen_blocks_reused: usize,
    /// Bytes of raw Arrow IPC payload written (excluding envelopes and
    /// reused frames).
    pub cold_bytes: u64,
    /// IPC payload bytes covered by reused frames — the incremental saving.
    pub cold_bytes_reused: u64,
    /// Hot rows materialized through the MVCC snapshot path.
    pub delta_rows: u64,
    /// Bytes of delta redo stream written.
    pub delta_bytes: u64,
    /// Tables captured.
    pub tables: usize,
    /// Wall-clock seconds the checkpoint took.
    pub duration_secs: f64,
    /// The published checkpoint directory.
    pub dir: PathBuf,
}

fn value_to_redo_bytes(ty: TypeId, v: &Value) -> Option<Vec<u8>> {
    match (ty, v) {
        (_, Value::Null) => None,
        (TypeId::TinyInt, Value::TinyInt(x)) => Some(x.to_le_bytes().to_vec()),
        (TypeId::SmallInt, Value::SmallInt(x)) => Some(x.to_le_bytes().to_vec()),
        (TypeId::Integer, Value::Integer(x)) => Some(x.to_le_bytes().to_vec()),
        (TypeId::BigInt, Value::BigInt(x)) => Some(x.to_le_bytes().to_vec()),
        (TypeId::Double, Value::Double(x)) => Some(x.to_le_bytes().to_vec()),
        (TypeId::Varchar, Value::Varchar(b)) => Some(b.clone()),
        (ty, v) => unreachable!("select_values returned {v:?} for {ty:?}"),
    }
}

/// Name of the checkpoint subdirectory for a timestamp (zero-padded so
/// lexical order is timestamp order).
fn ckpt_dir_name(ts: Timestamp) -> String {
    format!("ckpt-{:020}", ts.0)
}

/// The previous checkpoint's cold frames, indexed by content identity, plus
/// an existence cache for the files they live in (defensive: a manually
/// deleted old segment must cause a fresh write, not a dangling reference).
struct PrevFrames {
    by_identity: HashMap<(u32, u64), FrameRef>,
    file_exists: HashMap<(String, String), bool>,
}

impl PrevFrames {
    fn load(root: &Path) -> PrevFrames {
        let by_identity = match crate::restore::read_manifest(root) {
            // Frame identities are only unique within one process's
            // freeze-stamp era: the counter restarts per process, so a
            // manifest written by a different era (a fresh engine over an
            // old root, or a restart that could not adopt the image's era)
            // is diffed as empty — the first checkpoint of a new era
            // rewrites everything rather than risking a stale-frame match.
            // Within the era, `(table, stamp)` alone identifies content:
            // restart re-adopts stamps onto blocks at *new* addresses, and
            // keying by stamp keeps those frames reusable.
            Ok((_, prev)) if prev.freeze_era == mainline_storage::raw_block::freeze_era() => prev
                .frames
                .into_iter()
                .filter(|f| f.freeze_stamp != 0)
                .map(|f| ((f.table_id, f.freeze_stamp), f))
                .collect(),
            _ => HashMap::new(),
        };
        PrevFrames { by_identity, file_exists: HashMap::new() }
    }

    /// A reusable prior frame for this identity, if its file still exists.
    fn reusable(&mut self, root: &Path, key: (u32, u64)) -> Option<FrameRef> {
        let frame = self.by_identity.get(&key)?.clone();
        let loc = (frame.dir.clone(), frame.file.clone());
        let exists = *self
            .file_exists
            .entry(loc)
            .or_insert_with(|| root.join(&frame.dir).join(&frame.file).is_file());
        exists.then_some(frame)
    }
}

/// Write a consistent online checkpoint of `specs` under `root` and publish
/// it via the `CURRENT` pointer. Frozen blocks already captured by the
/// previous checkpoint are *referenced* instead of rewritten (see the module
/// docs); checkpoints under `root` that the new manifest no longer
/// references are pruned after the new one is live. Callers that also want
/// WAL truncation do it *after* this returns, using
/// [`CheckpointStats::checkpoint_ts`].
pub fn write_checkpoint(
    manager: &TransactionManager,
    specs: &[TableCheckpointSpec],
    root: &Path,
) -> Result<CheckpointStats> {
    // The open transaction is the consistency anchor: hold it across the
    // entire walk (see the crate-level argument).
    let txn = manager.begin();
    write_checkpoint_anchored(manager, txn, specs, 0, root)
}

/// [`write_checkpoint`] with a caller-provided anchor transaction.
///
/// DDL and checkpointing race: the manifest's table set must equal the
/// catalog state *at the checkpoint timestamp*, or a `CREATE`/`DROP`
/// committing between the catalog snapshot and the anchor `begin()` would
/// be both missing from the manifest and skipped by the tail replay (its
/// commit ts ≤ checkpoint ts). The database layer therefore snapshots its
/// catalog and begins the anchor under the same catalog lock that orders
/// DDL commits, then hands both here. `next_table_id` (0 = unknown) is
/// recorded in the manifest so restart can tell a long-dropped table's
/// straggler records from corruption.
pub fn write_checkpoint_anchored(
    manager: &TransactionManager,
    txn: Arc<mainline_txn::Transaction>,
    specs: &[TableCheckpointSpec],
    next_table_id: u32,
    root: &Path,
) -> Result<CheckpointStats> {
    let t0 = std::time::Instant::now();
    std::fs::create_dir_all(root)?;
    let mut prev = PrevFrames::load(root);
    let checkpoint_ts = txn.start_ts();

    let dir_name = ckpt_dir_name(checkpoint_ts);
    let tmp_dir = root.join(format!("{dir_name}.tmp"));
    let final_dir = root.join(&dir_name);
    let _ = std::fs::remove_dir_all(&tmp_dir);
    std::fs::create_dir_all(&tmp_dir)?;

    let mut stats = CheckpointStats {
        checkpoint_ts,
        frozen_blocks: 0,
        frozen_blocks_reused: 0,
        cold_bytes: 0,
        cold_bytes_reused: 0,
        delta_rows: 0,
        delta_bytes: 0,
        tables: specs.len(),
        duration_secs: 0.0,
        dir: final_dir.clone(),
    };
    let mut manifest = Manifest {
        checkpoint_ts,
        next_table_id,
        freeze_era: mainline_storage::raw_block::freeze_era(),
        tables: Vec::new(),
        segments: Vec::new(),
        frames: Vec::new(),
    };

    // The walk may fail mid-way (full disk, injected crash); the anchor
    // transaction must be committed on every path, or it would pin GC
    // pruning forever.
    let mut pending_locations = Vec::new();
    let walk = walk_tables(
        specs,
        root,
        &tmp_dir,
        &dir_name,
        &txn,
        checkpoint_ts,
        &mut prev,
        &mut stats,
        &mut manifest,
        &mut pending_locations,
    );
    // The walk is complete (or abandoned): every byte that needed the
    // consistency anchor has been read. Release the transaction before the
    // (potentially slow) fsync/publish dance so GC pruning resumes as early
    // as possible.
    manager.commit(&txn);
    walk?;

    manifest.write_to(&tmp_dir.join("MANIFEST"))?;
    // The segment/MANIFEST *contents* are synced above; this makes their
    // directory entries durable before the directory is published.
    failpoint::check("ckpt.tmpdir.fsync")?;
    fsync_dir(&tmp_dir);
    let _ = std::fs::remove_dir_all(&final_dir);
    failpoint::check("ckpt.dir.rename")?;
    std::fs::rename(&tmp_dir, &final_dir)?;
    failpoint::check("ckpt.root.fsync")?;
    fsync_dir(root);

    // Publish: CURRENT names the live checkpoint (atomic rename), then prune
    // superseded checkpoints. The directory fsyncs make the renames durable
    // *before* anything is deleted — pruning (or the caller's WAL
    // truncation) ahead of the rename reaching the journal could leave a
    // crash with neither the old checkpoint nor the new one.
    let current_tmp = root.join("CURRENT.tmp");
    failpoint::check("ckpt.current.write")?;
    std::fs::write(&current_tmp, format!("{dir_name}\n"))?;
    failpoint::check("ckpt.current.fsync")?;
    std::fs::File::open(&current_tmp)?.sync_all()?;
    failpoint::check("ckpt.current.rename")?;
    std::fs::rename(&current_tmp, root.join("CURRENT"))?;
    failpoint::check("ckpt.root.fsync2")?;
    fsync_dir(root);

    // The checkpoint is live: record each captured frame's chain location on
    // its block, making it evictable. This must wait until after the publish
    // rename — a freshly written frame's location names the *final*
    // directory, which did not exist while the walk was still writing into
    // the tmp dir, and an eviction in that window would have recorded a
    // dangling fault path. (A block on the fresh-write path had no prior
    // recorded location, so it was not evictable mid-walk either way.)
    for (block, loc) in pending_locations {
        block.set_cold_location(loc);
    }

    // Keep every directory the *published* manifest still references — the
    // incremental chain — and the new checkpoint itself; prune the rest.
    let mut keep = manifest.referenced_dirs();
    keep.insert(dir_name);
    prune_old(root, &keep, "ckpt.prune.remove");

    stats.duration_secs = t0.elapsed().as_secs_f64();
    Ok(stats)
}

/// The table/block walk: everything that must happen while the anchor
/// transaction is open. Split out so [`write_checkpoint`] can commit the
/// transaction on the error path too.
#[allow(clippy::too_many_arguments)] // internal to write_checkpoint
fn walk_tables(
    specs: &[TableCheckpointSpec],
    root: &Path,
    tmp_dir: &Path,
    dir_name: &str,
    txn: &Arc<mainline_txn::Transaction>,
    checkpoint_ts: Timestamp,
    prev: &mut PrevFrames,
    stats: &mut CheckpointStats,
    manifest: &mut Manifest,
    pending_locations: &mut Vec<(Arc<mainline_storage::raw_block::Block>, ColdLocation)>,
) -> Result<()> {
    for spec in specs {
        let table = &spec.table;
        let id = table.id();
        manifest.tables.push(TableManifest {
            id,
            name: spec.name.clone(),
            transform: spec.transform,
            columns: table.schema().columns().to_vec(),
            indexes: spec
                .indexes
                .iter()
                .map(|(name, key_cols)| IndexManifest {
                    name: name.clone(),
                    key_cols: key_cols.clone(),
                })
                .collect(),
        });

        let layout = table.layout();
        let types = table.types();
        let file_name = format!("table-{id}.cold");
        let mut cold = SegmentWriter::new(tmp_dir, file_name.clone(), COLD_MAGIC, id)?;
        let mut delta = SegmentWriter::new(tmp_dir, format!("table-{id}.delta"), DELTA_MAGIC, id)?;
        let mut scratch = Vec::new();

        'blocks: for block in table.blocks() {
            let h = block.header();
            loop {
                match BlockStateMachine::state(h) {
                    mainline_storage::BlockState::Evicted => {
                        // The body is released, but the content is *by
                        // construction* already in the chain: eviction
                        // required a fresh recorded location. Emit it as the
                        // frame reference — no I/O, no fault-in. Any
                        // concurrent fault-in + thaw + update commits after
                        // the anchor began (commit ts > checkpoint ts), so
                        // the stored frozen content IS the checkpoint-ts
                        // snapshot of this block. The referenced dir lands
                        // in the manifest's keep-set, so pruning cannot
                        // orphan the evicted block's fault path.
                        let Some(loc) = block.cold_location() else {
                            return Err(mainline_common::Error::Corrupt(format!(
                                "evicted block {:#x} of table {id} has no cold location",
                                block.as_ptr() as u64
                            )));
                        };
                        stats.frozen_blocks_reused += 1;
                        stats.cold_bytes_reused += loc.bytes;
                        manifest.frames.push(FrameRef {
                            table_id: id,
                            old_base: block.as_ptr() as u64,
                            freeze_stamp: loc.stamp,
                            index: loc.index,
                            bytes: loc.bytes,
                            dir: loc.dir,
                            file: loc.file,
                        });
                        continue 'blocks;
                    }
                    mainline_storage::BlockState::Faulting => {
                        // Exclusive rebuild in flight; it is short. Wait for
                        // a settled state rather than snapshotting a
                        // half-rebuilt body through the MVCC path.
                        std::hint::spin_loop();
                        continue;
                    }
                    _ => break,
                }
            }
            if BlockStateMachine::reader_acquire(h) {
                // Frozen. Content identity: the freeze stamp, stable while
                // we hold the reader count.
                let base = block.as_ptr() as u64;
                let stamp = block.freeze_stamp();
                if let Some(prior) = prev.reusable(root, (id, stamp)) {
                    // Incremental fast path: the chain already holds these
                    // exact bytes — reference, don't rewrite. The emitted
                    // ref carries the block's *current* base (after a
                    // restart the prior manifest's base is another
                    // process's address; the WAL slot remap needs ours).
                    BlockStateMachine::reader_release(h);
                    stats.frozen_blocks_reused += 1;
                    stats.cold_bytes_reused += prior.bytes;
                    pending_locations.push((
                        Arc::clone(&block),
                        ColdLocation {
                            dir: prior.dir.clone(),
                            file: prior.file.clone(),
                            index: prior.index,
                            bytes: prior.bytes,
                            stamp,
                        },
                    ));
                    manifest.frames.push(FrameRef { old_base: base, ..prior });
                    continue;
                }
                // Zero-transformation path: the payload is the exact IPC
                // frame export would produce; copy raw buffers, no per-row
                // work. The open txn guarantees the content is the
                // checkpoint-timestamp snapshot (crate docs).
                let n = h.insert_head().min(layout.num_slots());
                let payload = ipc::encode_batch(&unsafe { frozen_batch(table, &block) });
                let mut bitmap = vec![0u8; (n as usize).div_ceil(8)];
                for slot in 0..n {
                    if unsafe { access::is_allocated(block.as_ptr(), layout, slot) } {
                        bitmap[slot as usize / 8] |= 1 << (slot % 8);
                    }
                }
                BlockStateMachine::reader_release(h);
                cold.frame_header(base, stamp, n, &bitmap, payload.len() as u64)?;
                cold.write(&payload)?;
                pending_locations.push((
                    Arc::clone(&block),
                    ColdLocation {
                        dir: dir_name.to_string(),
                        file: file_name.clone(),
                        index: cold.count as u32,
                        bytes: payload.len() as u64,
                        stamp,
                    },
                ));
                manifest.frames.push(FrameRef {
                    table_id: id,
                    old_base: base,
                    freeze_stamp: stamp,
                    index: cold.count as u32,
                    bytes: payload.len() as u64,
                    dir: dir_name.to_string(),
                    file: file_name.clone(),
                });
                cold.count += 1;
                stats.frozen_blocks += 1;
                stats.cold_bytes += payload.len() as u64;
            } else {
                // Hot / cooling / freezing: materialize the checkpoint
                // snapshot of each visible row through the MVCC read path
                // into the delta redo stream.
                let upper = h.insert_head().min(layout.num_slots());
                for idx in 0..upper {
                    let slot = TupleSlot::new(block.as_ptr(), idx);
                    let Some(values) = table.select_values(txn, slot) else { continue };
                    let cols = values
                        .iter()
                        .enumerate()
                        .map(|(u, v)| RedoCol {
                            col: (u + NUM_RESERVED_COLS) as u16,
                            value: value_to_redo_bytes(types[u], v),
                        })
                        .collect();
                    let record = RedoRecord { table_id: id, slot, op: RedoOp::Insert(cols) };
                    scratch.clear();
                    encode_redo(&mut scratch, checkpoint_ts, &record);
                    delta.write(&scratch)?;
                    delta.count += 1;
                }
            }
        }
        if delta.count > 0 {
            scratch.clear();
            encode_commit(&mut scratch, checkpoint_ts);
            delta.write(&scratch)?;
        }
        stats.delta_rows += delta.count;
        stats.delta_bytes += delta.bytes;
        if let Some(entry) = cold.finish(SegmentKind::Cold)? {
            manifest.segments.push(entry);
        }
        if let Some(entry) = delta.finish(SegmentKind::Delta)? {
            manifest.segments.push(entry);
        }
    }
    Ok(())
}

/// Fsync a directory so the renames inside it are durable. Best-effort:
/// opening a directory for sync is POSIX behavior; on platforms where it
/// fails the renames are still atomic, just not crash-ordered.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(f) = std::fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

/// Best-effort removal of checkpoint directories (and stale tmp dirs) that
/// the just-published manifest no longer references. Failures are ignored:
/// an orphan directory wastes disk, nothing more, and the next checkpoint
/// retries. An injected crash aborts the rest of the prune, exactly like a
/// real one. `label` is the failpoint checked per removal — the checkpoint
/// writer and the chain compactor share the walk but crash independently.
pub(crate) fn prune_old(root: &Path, keep: &BTreeSet<String>, label: &str) {
    let Ok(entries) = std::fs::read_dir(root) else { return };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with("ckpt-") && !keep.contains(&name) {
            if failpoint::check(label).is_err() {
                return;
            }
            let _ = std::fs::remove_dir_all(e.path());
        }
    }
}

/// Lazily-created segment file: nothing touches disk until the first write,
/// so tables with no frozen blocks (or no hot rows) produce no file and no
/// manifest entry.
struct SegmentWriter {
    dir: PathBuf,
    file_name: String,
    magic: &'static [u8; 8],
    table_id: u32,
    out: Option<std::io::BufWriter<std::fs::File>>,
    count: u64,
    bytes: u64,
}

impl SegmentWriter {
    fn new(dir: &Path, file_name: String, magic: &'static [u8; 8], table_id: u32) -> Result<Self> {
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            file_name,
            magic,
            table_id,
            out: None,
            count: 0,
            bytes: 0,
        })
    }

    fn out(&mut self) -> Result<&mut std::io::BufWriter<std::fs::File>> {
        if self.out.is_none() {
            let f = std::fs::File::create(self.dir.join(&self.file_name))?;
            let mut w = std::io::BufWriter::new(f);
            w.write_all(self.magic)?;
            w.write_all(&self.table_id.to_le_bytes())?;
            self.out = Some(w);
        }
        Ok(self.out.as_mut().unwrap())
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.out()?.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn frame_header(
        &mut self,
        old_base: u64,
        freeze_stamp: u64,
        n: u32,
        bitmap: &[u8],
        payload_len: u64,
    ) -> Result<()> {
        let w = self.out()?;
        w.write_all(&old_base.to_le_bytes())?;
        w.write_all(&freeze_stamp.to_le_bytes())?;
        w.write_all(&mainline_storage::raw_block::freeze_era().to_le_bytes())?;
        w.write_all(&n.to_le_bytes())?;
        w.write_all(&(bitmap.len() as u32).to_le_bytes())?;
        w.write_all(bitmap)?;
        w.write_all(&payload_len.to_le_bytes())?;
        self.bytes += 8 + 8 + 8 + 4 + 4 + bitmap.len() as u64 + 8;
        Ok(())
    }

    fn finish(mut self, kind: SegmentKind) -> Result<Option<SegmentEntry>> {
        let Some(mut w) = self.out.take() else { return Ok(None) };
        failpoint::check("ckpt.segment.sync")?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(Some(SegmentEntry {
            table_id: self.table_id,
            kind,
            count: self.count,
            file: self.file_name,
        }))
    }
}
