//! The checkpoint manifest: a small, line-oriented description of what the
//! checkpoint contains — tables (with schemas and index definitions, so a
//! restart can recreate the catalog without outside help), the checkpoint
//! timestamp, the segment files, and — since v2 — one `frame` line per cold
//! (frozen-block) frame giving its content identity and its location, which
//! may live in an **earlier checkpoint's directory** (incremental
//! checkpoints reference unchanged frames instead of rewriting them).
//!
//! Format (tab-separated, names last so they may contain spaces):
//!
//! ```text
//! mainline-checkpoint<TAB>v2
//! ts<TAB><u64>
//! nextid<TAB><u32>                      (optional: catalog's next table id)
//! table<TAB><id><TAB><0|1 transform><TAB><name>
//! col<TAB><table id><TAB><type><TAB><0|1 nullable><TAB><name>
//! index<TAB><table id><TAB><c0,c1,...><TAB><name>
//! segment<TAB><table id><TAB><cold|delta><TAB><count><TAB><file>
//! frame<TAB><table id><TAB><base><TAB><stamp><TAB><idx><TAB><bytes><TAB><dir>/<file>
//! end
//! ```
//!
//! The parser accepts v2 only. The PR-4 v1 format is deliberately rejected
//! with a loud error rather than migrated: checkpoints are regenerable
//! artifacts of a research engine, no deployment contract covers them, and
//! silently misreading a v1 cold segment list as same-directory frames
//! would be worse than failing.
//!
//! A `frame` line's `<dir>` is a checkpoint directory name under the same
//! root (the current checkpoint's own directory for freshly written frames);
//! `<idx>` is the zero-based frame index inside that cold segment file. The
//! complete cold image of the checkpoint is exactly its `frame` lines —
//! `segment … cold` lines only describe files *written by* this checkpoint.
//!
//! The trailing `end` line doubles as a torn-write detector: the writer
//! emits it last and the parser rejects a manifest without it.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_common::{Error, Result, Timestamp};
use std::collections::BTreeSet;
use std::path::Path;

/// One secondary-index definition, recorded so restart can rebuild it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexManifest {
    /// Index name (unique per table).
    pub name: String,
    /// User-column positions forming the composite key, in order.
    pub key_cols: Vec<usize>,
}

/// One table in the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableManifest {
    /// Catalog id in the checkpointed process (restart recreates tables so
    /// ids — which the WAL references — line up).
    pub id: u32,
    /// Table name.
    pub name: String,
    /// Whether the table was registered with the transformation pipeline.
    pub transform: bool,
    /// Column definitions, in schema order.
    pub columns: Vec<ColumnDef>,
    /// Secondary indexes.
    pub indexes: Vec<IndexManifest>,
}

impl TableManifest {
    /// The table's logical schema.
    pub fn schema(&self) -> Schema {
        Schema::new(self.columns.clone())
    }
}

/// Which kind of payload a segment file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Frozen-block Arrow IPC frames (zero-transformation path).
    Cold,
    /// Hot-row redo stream (MVCC snapshot materialization).
    Delta,
}

/// One segment file of the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Owning table id.
    pub table_id: u32,
    /// Payload kind.
    pub kind: SegmentKind,
    /// Frozen blocks (cold) or materialized rows (delta) in the file.
    pub count: u64,
    /// File name relative to the checkpoint directory.
    pub file: String,
}

/// One cold (frozen-block) frame of the checkpoint: its content identity
/// (`old_base`, `freeze_stamp`) and where its bytes live. The location may
/// point into an earlier checkpoint's directory — that is what makes
/// checkpoints incremental.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRef {
    /// Owning table id.
    pub table_id: u32,
    /// Block base address in the checkpointed process (slot-remap key, and
    /// half of the content identity).
    pub old_base: u64,
    /// The block's freeze stamp at capture time (the other half of the
    /// identity; 0 = unknown, never matched by a later diff).
    pub freeze_stamp: u64,
    /// Zero-based frame index inside the cold segment file.
    pub index: u32,
    /// Raw Arrow IPC payload bytes of the frame (bookkeeping for the
    /// incremental-savings accounting; not needed to read the frame).
    pub bytes: u64,
    /// Checkpoint directory name (under the shared root) holding the file.
    pub dir: String,
    /// Cold segment file name inside `dir`.
    pub file: String,
}

/// Everything a restart needs to know about a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The checkpoint timestamp: every row image in the checkpoint is the
    /// version visible at this timestamp, and WAL replay resumes strictly
    /// after it.
    pub checkpoint_ts: Timestamp,
    /// The catalog's next table id at the checkpoint (0 = unrecorded).
    /// Restart uses it to classify a WAL-tail record referencing an id
    /// below this bound that is in neither the manifest nor a replayed
    /// `CREATE`: the table was dropped before the checkpoint (and the
    /// `DROP` record may have been truncated away), so the straggler is
    /// discarded instead of failing the restart.
    pub next_table_id: u32,
    /// The writing process's freeze-stamp era
    /// ([`mainline_storage::raw_block::freeze_era`]; 0 = unknown). Frame
    /// identities `(base, stamp)` are only unique *within* one era, so the
    /// incremental writer reuses frames exclusively from a manifest of its
    /// own era — a different process's manifest is diffed as empty.
    pub freeze_era: u64,
    /// Checkpointed tables.
    pub tables: Vec<TableManifest>,
    /// Segment files *written by this checkpoint* (cold files hold only the
    /// frames that changed since the previous checkpoint; delta files are
    /// always fresh).
    pub segments: Vec<SegmentEntry>,
    /// The complete cold image: every frozen-block frame, wherever its bytes
    /// live in the checkpoint chain.
    pub frames: Vec<FrameRef>,
}

impl Manifest {
    /// Every checkpoint directory name this manifest's frames reference —
    /// the set a pruner must keep alive (plus the manifest's own directory).
    pub fn referenced_dirs(&self) -> BTreeSet<String> {
        self.frames.iter().map(|f| f.dir.clone()).collect()
    }
}

fn type_name(ty: TypeId) -> &'static str {
    match ty {
        TypeId::TinyInt => "tinyint",
        TypeId::SmallInt => "smallint",
        TypeId::Integer => "integer",
        TypeId::BigInt => "bigint",
        TypeId::Double => "double",
        TypeId::Varchar => "varchar",
    }
}

fn type_from_name(s: &str) -> Result<TypeId> {
    Ok(match s {
        "tinyint" => TypeId::TinyInt,
        "smallint" => TypeId::SmallInt,
        "integer" => TypeId::Integer,
        "bigint" => TypeId::BigInt,
        "double" => TypeId::Double,
        "varchar" => TypeId::Varchar,
        other => return Err(Error::Corrupt(format!("unknown manifest type {other}"))),
    })
}

fn check_name(name: &str) -> Result<()> {
    if name.contains('\t') || name.contains('\n') {
        return Err(Error::Layout(format!("name {name:?} cannot be checkpointed")));
    }
    Ok(())
}

impl Manifest {
    /// Serialize to the line format above.
    pub fn encode(&self) -> Result<String> {
        let mut out = String::new();
        out.push_str("mainline-checkpoint\tv2\n");
        out.push_str(&format!("ts\t{}\n", self.checkpoint_ts.0));
        if self.next_table_id != 0 {
            out.push_str(&format!("nextid\t{}\n", self.next_table_id));
        }
        if self.freeze_era != 0 {
            out.push_str(&format!("era\t{}\n", self.freeze_era));
        }
        for t in &self.tables {
            check_name(&t.name)?;
            out.push_str(&format!("table\t{}\t{}\t{}\n", t.id, t.transform as u8, t.name));
            for c in &t.columns {
                check_name(&c.name)?;
                out.push_str(&format!(
                    "col\t{}\t{}\t{}\t{}\n",
                    t.id,
                    type_name(c.ty),
                    c.nullable as u8,
                    c.name
                ));
            }
            for ix in &t.indexes {
                check_name(&ix.name)?;
                let cols: Vec<String> = ix.key_cols.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!("index\t{}\t{}\t{}\n", t.id, cols.join(","), ix.name));
            }
        }
        for s in &self.segments {
            check_name(&s.file)?;
            let kind = match s.kind {
                SegmentKind::Cold => "cold",
                SegmentKind::Delta => "delta",
            };
            out.push_str(&format!("segment\t{}\t{}\t{}\t{}\n", s.table_id, kind, s.count, s.file));
        }
        for f in &self.frames {
            check_name(&f.dir)?;
            check_name(&f.file)?;
            if f.dir.contains('/') || f.file.contains('/') {
                return Err(Error::Layout(format!(
                    "frame location {}/{} cannot be checkpointed",
                    f.dir, f.file
                )));
            }
            out.push_str(&format!(
                "frame\t{}\t{}\t{}\t{}\t{}\t{}/{}\n",
                f.table_id, f.old_base, f.freeze_stamp, f.index, f.bytes, f.dir, f.file
            ));
        }
        out.push_str("end\n");
        Ok(out)
    }

    /// Parse the line format. Rejects manifests without the trailing `end`
    /// marker (torn write) or without a `ts` line — a defaulted checkpoint
    /// timestamp of zero would make the tail replay re-apply every
    /// pre-checkpoint transaction on top of the loaded image.
    pub fn parse(text: &str) -> Result<Manifest> {
        let corrupt = |msg: &str| Error::Corrupt(format!("manifest: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some("mainline-checkpoint\tv2") {
            return Err(corrupt("bad header"));
        }
        let mut manifest = Manifest {
            checkpoint_ts: Timestamp::ZERO,
            next_table_id: 0,
            freeze_era: 0,
            tables: Vec::new(),
            segments: Vec::new(),
            frames: Vec::new(),
        };
        let mut ended = false;
        for line in lines {
            let mut f = line.split('\t');
            match f.next() {
                Some("ts") => {
                    let v = f.next().ok_or_else(|| corrupt("ts"))?;
                    manifest.checkpoint_ts = Timestamp(v.parse().map_err(|_| corrupt("ts value"))?);
                }
                Some("nextid") => {
                    manifest.next_table_id = parse_field(f.next(), "nextid")?;
                }
                Some("era") => {
                    manifest.freeze_era = parse_field(f.next(), "era")?;
                }
                Some("table") => {
                    let id = parse_field(f.next(), "table id")?;
                    let transform: u8 = parse_field(f.next(), "table transform")?;
                    let name = f.next().ok_or_else(|| corrupt("table name"))?;
                    manifest.tables.push(TableManifest {
                        id,
                        name: name.to_string(),
                        transform: transform != 0,
                        columns: Vec::new(),
                        indexes: Vec::new(),
                    });
                }
                Some("col") => {
                    let id: u32 = parse_field(f.next(), "col table")?;
                    let ty = type_from_name(f.next().ok_or_else(|| corrupt("col type"))?)?;
                    let nullable: u8 = parse_field(f.next(), "col nullable")?;
                    let name = f.next().ok_or_else(|| corrupt("col name"))?;
                    let t = table_mut(&mut manifest, id)?;
                    t.columns.push(ColumnDef {
                        name: name.to_string(),
                        ty,
                        nullable: nullable != 0,
                    });
                }
                Some("index") => {
                    let id: u32 = parse_field(f.next(), "index table")?;
                    let cols = f.next().ok_or_else(|| corrupt("index cols"))?;
                    let name = f.next().ok_or_else(|| corrupt("index name"))?;
                    let key_cols = cols
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse().map_err(|_| corrupt("index col")))
                        .collect::<Result<Vec<usize>>>()?;
                    let t = table_mut(&mut manifest, id)?;
                    t.indexes.push(IndexManifest { name: name.to_string(), key_cols });
                }
                Some("segment") => {
                    let table_id: u32 = parse_field(f.next(), "segment table")?;
                    let kind = match f.next() {
                        Some("cold") => SegmentKind::Cold,
                        Some("delta") => SegmentKind::Delta,
                        _ => return Err(corrupt("segment kind")),
                    };
                    let count: u64 = parse_field(f.next(), "segment count")?;
                    let file = f.next().ok_or_else(|| corrupt("segment file"))?;
                    manifest.segments.push(SegmentEntry {
                        table_id,
                        kind,
                        count,
                        file: file.to_string(),
                    });
                }
                Some("frame") => {
                    let table_id: u32 = parse_field(f.next(), "frame table")?;
                    let old_base: u64 = parse_field(f.next(), "frame base")?;
                    let freeze_stamp: u64 = parse_field(f.next(), "frame stamp")?;
                    let index: u32 = parse_field(f.next(), "frame index")?;
                    let bytes: u64 = parse_field(f.next(), "frame bytes")?;
                    let loc = f.next().ok_or_else(|| corrupt("frame location"))?;
                    let (dir, file) =
                        loc.split_once('/').ok_or_else(|| corrupt("frame location"))?;
                    if dir.is_empty() || file.is_empty() || file.contains('/') {
                        return Err(corrupt("frame location"));
                    }
                    manifest.frames.push(FrameRef {
                        table_id,
                        old_base,
                        freeze_stamp,
                        index,
                        bytes,
                        dir: dir.to_string(),
                        file: file.to_string(),
                    });
                }
                Some("end") => {
                    ended = true;
                    break;
                }
                _ => return Err(corrupt("unknown line")),
            }
        }
        if !ended {
            return Err(corrupt("missing end marker (torn write?)"));
        }
        if manifest.checkpoint_ts == Timestamp::ZERO {
            return Err(corrupt("missing checkpoint timestamp"));
        }
        Ok(manifest)
    }

    /// Write to `path` via a temp file + atomic rename, syncing the data
    /// first so the rename never publishes a torn manifest.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        use mainline_common::failpoint;
        let tmp = path.with_extension("tmp");
        let text = self.encode()?;
        failpoint::check("manifest.write")?;
        std::fs::write(&tmp, text.as_bytes())?;
        failpoint::check("manifest.fsync")?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        failpoint::check("manifest.rename")?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and parse the manifest at `path`.
    pub fn read_from(path: &Path) -> Result<Manifest> {
        let text = std::fs::read_to_string(path)?;
        Manifest::parse(&text)
    }
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Corrupt(format!("manifest: bad {what}")))
}

fn table_mut(m: &mut Manifest, id: u32) -> Result<&mut TableManifest> {
    m.tables
        .iter_mut()
        .find(|t| t.id == id)
        .ok_or_else(|| Error::Corrupt(format!("manifest: col/index before table {id}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            checkpoint_ts: Timestamp(4242),
            next_table_id: 7,
            freeze_era: 0xDEAD_BEEF,
            tables: vec![TableManifest {
                id: 1,
                name: "orders with spaces".into(),
                transform: true,
                columns: vec![
                    ColumnDef::new("id", TypeId::BigInt),
                    ColumnDef::nullable("note", TypeId::Varchar),
                ],
                indexes: vec![IndexManifest { name: "pk".into(), key_cols: vec![0] }],
            }],
            segments: vec![
                SegmentEntry {
                    table_id: 1,
                    kind: SegmentKind::Cold,
                    count: 3,
                    file: "table-1.cold".into(),
                },
                SegmentEntry {
                    table_id: 1,
                    kind: SegmentKind::Delta,
                    count: 120,
                    file: "table-1.delta".into(),
                },
            ],
            frames: vec![
                FrameRef {
                    table_id: 1,
                    old_base: 7 << 20,
                    freeze_stamp: 31,
                    index: 0,
                    bytes: 4096,
                    dir: "ckpt-00000000000000004242".into(),
                    file: "table-1.cold".into(),
                },
                FrameRef {
                    table_id: 1,
                    old_base: 9 << 20,
                    freeze_stamp: 12,
                    index: 2,
                    bytes: 1024,
                    dir: "ckpt-00000000000000001111".into(),
                    file: "table-1.cold".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let parsed = Manifest::parse(&m.encode().unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn torn_manifest_rejected() {
        let text = sample().encode().unwrap();
        // Cut before the end marker: must be rejected.
        let cut = text.rfind("end").unwrap();
        assert!(Manifest::parse(&text[..cut]).is_err());
        assert!(Manifest::parse("garbage").is_err());
    }

    #[test]
    fn missing_ts_line_rejected() {
        // A zero-defaulted checkpoint timestamp would silently double-apply
        // history at restart, so its absence must be a parse error.
        let text = sample().encode().unwrap();
        let without_ts: String =
            text.lines().filter(|l| !l.starts_with("ts\t")).map(|l| format!("{l}\n")).collect();
        assert!(Manifest::parse(&without_ts).is_err());
    }

    #[test]
    fn names_with_tabs_rejected_at_write() {
        let mut m = sample();
        m.tables[0].name = "bad\tname".into();
        assert!(m.encode().is_err());
    }

    #[test]
    fn frame_lines_roundtrip_and_locate_across_generations() {
        let m = sample();
        let parsed = Manifest::parse(&m.encode().unwrap()).unwrap();
        assert_eq!(parsed.frames, m.frames);
        // The second frame points into an *older* checkpoint directory: the
        // incremental chain. `referenced_dirs` is what pruning must keep.
        assert_eq!(
            parsed.referenced_dirs().into_iter().collect::<Vec<_>>(),
            vec!["ckpt-00000000000000001111".to_string(), "ckpt-00000000000000004242".to_string()]
        );
    }

    #[test]
    fn malformed_frame_lines_rejected() {
        let good = sample().encode().unwrap();
        // Location without a dir/file separator.
        let bad = good.replace("ckpt-00000000000000001111/table-1.cold", "no-separator");
        assert!(Manifest::parse(&bad).is_err());
        // Nested path components cannot be encoded in the first place.
        let mut m = sample();
        m.frames[0].file = "../escape".into();
        assert!(m.encode().is_err());
    }

    #[test]
    fn file_roundtrip_is_atomic_renamed() {
        let mut p = std::env::temp_dir();
        p.push(format!("mainline-manifest-{}", std::process::id()));
        let m = sample();
        m.write_to(&p).unwrap();
        assert!(!p.with_extension("tmp").exists());
        assert_eq!(Manifest::read_from(&p).unwrap(), m);
        let _ = std::fs::remove_file(&p);
    }
}
