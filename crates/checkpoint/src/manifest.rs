//! The checkpoint manifest: a small, line-oriented description of what the
//! checkpoint contains — tables (with schemas and index definitions, so a
//! restart can recreate the catalog without outside help), the checkpoint
//! timestamp, and the segment files.
//!
//! Format (tab-separated, names last so they may contain spaces):
//!
//! ```text
//! mainline-checkpoint<TAB>v1
//! ts<TAB><u64>
//! table<TAB><id><TAB><0|1 transform><TAB><name>
//! col<TAB><table id><TAB><type><TAB><0|1 nullable><TAB><name>
//! index<TAB><table id><TAB><c0,c1,...><TAB><name>
//! segment<TAB><table id><TAB><cold|delta><TAB><count><TAB><file>
//! end
//! ```
//!
//! The trailing `end` line doubles as a torn-write detector: the writer
//! emits it last and the parser rejects a manifest without it.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_common::{Error, Result, Timestamp};
use std::path::Path;

/// One secondary-index definition, recorded so restart can rebuild it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexManifest {
    /// Index name (unique per table).
    pub name: String,
    /// User-column positions forming the composite key, in order.
    pub key_cols: Vec<usize>,
}

/// One table in the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableManifest {
    /// Catalog id in the checkpointed process (restart recreates tables so
    /// ids — which the WAL references — line up).
    pub id: u32,
    /// Table name.
    pub name: String,
    /// Whether the table was registered with the transformation pipeline.
    pub transform: bool,
    /// Column definitions, in schema order.
    pub columns: Vec<ColumnDef>,
    /// Secondary indexes.
    pub indexes: Vec<IndexManifest>,
}

impl TableManifest {
    /// The table's logical schema.
    pub fn schema(&self) -> Schema {
        Schema::new(self.columns.clone())
    }
}

/// Which kind of payload a segment file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Frozen-block Arrow IPC frames (zero-transformation path).
    Cold,
    /// Hot-row redo stream (MVCC snapshot materialization).
    Delta,
}

/// One segment file of the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Owning table id.
    pub table_id: u32,
    /// Payload kind.
    pub kind: SegmentKind,
    /// Frozen blocks (cold) or materialized rows (delta) in the file.
    pub count: u64,
    /// File name relative to the checkpoint directory.
    pub file: String,
}

/// Everything a restart needs to know about a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The checkpoint timestamp: every row image in the checkpoint is the
    /// version visible at this timestamp, and WAL replay resumes strictly
    /// after it.
    pub checkpoint_ts: Timestamp,
    /// Checkpointed tables.
    pub tables: Vec<TableManifest>,
    /// Segment files.
    pub segments: Vec<SegmentEntry>,
}

fn type_name(ty: TypeId) -> &'static str {
    match ty {
        TypeId::TinyInt => "tinyint",
        TypeId::SmallInt => "smallint",
        TypeId::Integer => "integer",
        TypeId::BigInt => "bigint",
        TypeId::Double => "double",
        TypeId::Varchar => "varchar",
    }
}

fn type_from_name(s: &str) -> Result<TypeId> {
    Ok(match s {
        "tinyint" => TypeId::TinyInt,
        "smallint" => TypeId::SmallInt,
        "integer" => TypeId::Integer,
        "bigint" => TypeId::BigInt,
        "double" => TypeId::Double,
        "varchar" => TypeId::Varchar,
        other => return Err(Error::Corrupt(format!("unknown manifest type {other}"))),
    })
}

fn check_name(name: &str) -> Result<()> {
    if name.contains('\t') || name.contains('\n') {
        return Err(Error::Layout(format!("name {name:?} cannot be checkpointed")));
    }
    Ok(())
}

impl Manifest {
    /// Serialize to the line format above.
    pub fn encode(&self) -> Result<String> {
        let mut out = String::new();
        out.push_str("mainline-checkpoint\tv1\n");
        out.push_str(&format!("ts\t{}\n", self.checkpoint_ts.0));
        for t in &self.tables {
            check_name(&t.name)?;
            out.push_str(&format!("table\t{}\t{}\t{}\n", t.id, t.transform as u8, t.name));
            for c in &t.columns {
                check_name(&c.name)?;
                out.push_str(&format!(
                    "col\t{}\t{}\t{}\t{}\n",
                    t.id,
                    type_name(c.ty),
                    c.nullable as u8,
                    c.name
                ));
            }
            for ix in &t.indexes {
                check_name(&ix.name)?;
                let cols: Vec<String> = ix.key_cols.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!("index\t{}\t{}\t{}\n", t.id, cols.join(","), ix.name));
            }
        }
        for s in &self.segments {
            check_name(&s.file)?;
            let kind = match s.kind {
                SegmentKind::Cold => "cold",
                SegmentKind::Delta => "delta",
            };
            out.push_str(&format!("segment\t{}\t{}\t{}\t{}\n", s.table_id, kind, s.count, s.file));
        }
        out.push_str("end\n");
        Ok(out)
    }

    /// Parse the line format. Rejects manifests without the trailing `end`
    /// marker (torn write) or without a `ts` line — a defaulted checkpoint
    /// timestamp of zero would make the tail replay re-apply every
    /// pre-checkpoint transaction on top of the loaded image.
    pub fn parse(text: &str) -> Result<Manifest> {
        let corrupt = |msg: &str| Error::Corrupt(format!("manifest: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some("mainline-checkpoint\tv1") {
            return Err(corrupt("bad header"));
        }
        let mut manifest =
            Manifest { checkpoint_ts: Timestamp::ZERO, tables: Vec::new(), segments: Vec::new() };
        let mut ended = false;
        for line in lines {
            let mut f = line.split('\t');
            match f.next() {
                Some("ts") => {
                    let v = f.next().ok_or_else(|| corrupt("ts"))?;
                    manifest.checkpoint_ts = Timestamp(v.parse().map_err(|_| corrupt("ts value"))?);
                }
                Some("table") => {
                    let id = parse_field(f.next(), "table id")?;
                    let transform: u8 = parse_field(f.next(), "table transform")?;
                    let name = f.next().ok_or_else(|| corrupt("table name"))?;
                    manifest.tables.push(TableManifest {
                        id,
                        name: name.to_string(),
                        transform: transform != 0,
                        columns: Vec::new(),
                        indexes: Vec::new(),
                    });
                }
                Some("col") => {
                    let id: u32 = parse_field(f.next(), "col table")?;
                    let ty = type_from_name(f.next().ok_or_else(|| corrupt("col type"))?)?;
                    let nullable: u8 = parse_field(f.next(), "col nullable")?;
                    let name = f.next().ok_or_else(|| corrupt("col name"))?;
                    let t = table_mut(&mut manifest, id)?;
                    t.columns.push(ColumnDef {
                        name: name.to_string(),
                        ty,
                        nullable: nullable != 0,
                    });
                }
                Some("index") => {
                    let id: u32 = parse_field(f.next(), "index table")?;
                    let cols = f.next().ok_or_else(|| corrupt("index cols"))?;
                    let name = f.next().ok_or_else(|| corrupt("index name"))?;
                    let key_cols = cols
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse().map_err(|_| corrupt("index col")))
                        .collect::<Result<Vec<usize>>>()?;
                    let t = table_mut(&mut manifest, id)?;
                    t.indexes.push(IndexManifest { name: name.to_string(), key_cols });
                }
                Some("segment") => {
                    let table_id: u32 = parse_field(f.next(), "segment table")?;
                    let kind = match f.next() {
                        Some("cold") => SegmentKind::Cold,
                        Some("delta") => SegmentKind::Delta,
                        _ => return Err(corrupt("segment kind")),
                    };
                    let count: u64 = parse_field(f.next(), "segment count")?;
                    let file = f.next().ok_or_else(|| corrupt("segment file"))?;
                    manifest.segments.push(SegmentEntry {
                        table_id,
                        kind,
                        count,
                        file: file.to_string(),
                    });
                }
                Some("end") => {
                    ended = true;
                    break;
                }
                _ => return Err(corrupt("unknown line")),
            }
        }
        if !ended {
            return Err(corrupt("missing end marker (torn write?)"));
        }
        if manifest.checkpoint_ts == Timestamp::ZERO {
            return Err(corrupt("missing checkpoint timestamp"));
        }
        Ok(manifest)
    }

    /// Write to `path` via a temp file + atomic rename, syncing the data
    /// first so the rename never publishes a torn manifest.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        let text = self.encode()?;
        std::fs::write(&tmp, text.as_bytes())?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and parse the manifest at `path`.
    pub fn read_from(path: &Path) -> Result<Manifest> {
        let text = std::fs::read_to_string(path)?;
        Manifest::parse(&text)
    }
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Corrupt(format!("manifest: bad {what}")))
}

fn table_mut(m: &mut Manifest, id: u32) -> Result<&mut TableManifest> {
    m.tables
        .iter_mut()
        .find(|t| t.id == id)
        .ok_or_else(|| Error::Corrupt(format!("manifest: col/index before table {id}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            checkpoint_ts: Timestamp(4242),
            tables: vec![TableManifest {
                id: 1,
                name: "orders with spaces".into(),
                transform: true,
                columns: vec![
                    ColumnDef::new("id", TypeId::BigInt),
                    ColumnDef::nullable("note", TypeId::Varchar),
                ],
                indexes: vec![IndexManifest { name: "pk".into(), key_cols: vec![0] }],
            }],
            segments: vec![
                SegmentEntry {
                    table_id: 1,
                    kind: SegmentKind::Cold,
                    count: 3,
                    file: "table-1.cold".into(),
                },
                SegmentEntry {
                    table_id: 1,
                    kind: SegmentKind::Delta,
                    count: 120,
                    file: "table-1.delta".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let parsed = Manifest::parse(&m.encode().unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn torn_manifest_rejected() {
        let text = sample().encode().unwrap();
        // Cut before the end marker: must be rejected.
        let cut = text.rfind("end").unwrap();
        assert!(Manifest::parse(&text[..cut]).is_err());
        assert!(Manifest::parse("garbage").is_err());
    }

    #[test]
    fn missing_ts_line_rejected() {
        // A zero-defaulted checkpoint timestamp would silently double-apply
        // history at restart, so its absence must be a parse error.
        let text = sample().encode().unwrap();
        let without_ts: String =
            text.lines().filter(|l| !l.starts_with("ts\t")).map(|l| format!("{l}\n")).collect();
        assert!(Manifest::parse(&without_ts).is_err());
    }

    #[test]
    fn names_with_tabs_rejected_at_write() {
        let mut m = sample();
        m.tables[0].name = "bad\tname".into();
        assert!(m.encode().is_err());
    }

    #[test]
    fn file_roundtrip_is_atomic_renamed() {
        let mut p = std::env::temp_dir();
        p.push(format!("mainline-manifest-{}", std::process::id()));
        let m = sample();
        m.write_to(&p).unwrap();
        assert!(!p.with_extension("tmp").exists());
        assert_eq!(Manifest::read_from(&p).unwrap(), m);
        let _ = std::fs::remove_file(&p);
    }
}
