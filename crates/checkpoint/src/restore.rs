//! Checkpoint loading: the fast half of a two-phase restart.
//!
//! Cold segments are decoded and loaded **directly into frozen blocks** — a
//! column-at-a-time reconstruction (one memcpy per fixed column, one
//! gathered buffer per varlen column, per-slot 16-byte entry rewrites) with
//! no per-row MVCC inserts, no version chains, and no WAL records. This is
//! the restart-side face of the zero-transformation claim: cold data goes
//! disk → memory at buffer granularity.
//!
//! Delta segments are WAL-format redo streams and replay through the
//! ordinary recovery machinery ([`mainline_wal::recover_from`]).
//!
//! Both paths feed a slot map (`(table_id, old raw slot)` → new slot) so the
//! subsequent WAL-tail replay can resolve updates and deletes against rows
//! that came out of the checkpoint image.
//!
//! The frozen-block reconstruction is shared with the cold-block buffer
//! manager: [`fault_in_block`] rebuilds an **evicted** block's body in place
//! from its recorded [`ColdLocation`](mainline_storage::ColdLocation) —
//! same frame parse, same column installation
//! ([`populate_frozen_block`]) — so restart and demand paging are one code
//! path at two call sites.

use crate::manifest::{Manifest, SegmentKind};
use crate::writer::{COLD_MAGIC, DELTA_MAGIC};
use mainline_arrowlite::array::ColumnArray;
use mainline_arrowlite::batch::RecordBatch;
use mainline_arrowlite::ipc;
use mainline_common::{Error, Result, Timestamp};
use mainline_storage::arrow_side::GatheredColumn;
use mainline_storage::block_state::BlockState;
use mainline_storage::raw_block::Block;
use mainline_storage::{access, TupleSlot, VarlenEntry};
use mainline_txn::{DataTable, TransactionManager};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What a checkpoint load did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Frozen blocks reconstructed without row materialization.
    pub frozen_blocks: usize,
    /// Live rows inside those blocks (allocated slots).
    pub cold_rows: u64,
    /// Rows replayed from delta segments (per-row MVCC inserts).
    pub delta_rows: u64,
}

/// One parsed frame of a cold segment. Exposed so tests can verify the
/// payload is byte-identical to the Flight export of the same block.
#[derive(Debug, Clone)]
pub struct ColdFrame {
    /// Owning table.
    pub table_id: u32,
    /// Block base address in the checkpointed process (slot-remap key).
    pub old_base: u64,
    /// Freeze stamp of the captured content (0 = unknown). Together with
    /// `freeze_era` this is the frame's content identity: restart re-adopts
    /// it so the first post-restart checkpoint diffs incremental, and the
    /// fault path matches it against the block's live stamp.
    pub freeze_stamp: u64,
    /// Freeze-stamp era of the writing process (0 = unknown).
    pub freeze_era: u64,
    /// Insert head: number of slot-indexed rows in the payload.
    pub n: u32,
    /// Allocation bitmap over those `n` slots (bit set = live row).
    pub alloc: Vec<u8>,
    /// The raw Arrow IPC frame — exactly what Flight export emits.
    pub payload: Vec<u8>,
}

impl ColdFrame {
    /// Whether slot `i` held a live row.
    pub fn is_allocated(&self, i: u32) -> bool {
        self.alloc.get(i as usize / 8).is_some_and(|b| b & (1 << (i % 8)) != 0)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // `pos <= len` is an invariant, so this subtraction-form bounds
        // check cannot overflow even when a corrupt length field reads as
        // a near-`u64::MAX` value.
        if n > self.bytes.len() - self.pos {
            return Err(Error::Corrupt("truncated checkpoint segment".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parse a cold segment file into its frames.
pub fn read_cold_frames(path: &Path) -> Result<Vec<ColdFrame>> {
    let bytes = std::fs::read(path)?;
    let mut c = Cursor { bytes: &bytes, pos: 0 };
    if c.take(8)? != COLD_MAGIC {
        return Err(Error::Corrupt("bad cold-segment magic".into()));
    }
    let table_id = c.u32()?;
    let mut frames = Vec::new();
    while !c.done() {
        let old_base = c.u64()?;
        let freeze_stamp = c.u64()?;
        let freeze_era = c.u64()?;
        let n = c.u32()?;
        let bitmap_len = c.u32()? as usize;
        let alloc = c.take(bitmap_len)?.to_vec();
        let payload_len = c.u64()? as usize;
        let payload = c.take(payload_len)?.to_vec();
        frames.push(ColdFrame { table_id, old_base, freeze_stamp, freeze_era, n, alloc, payload });
    }
    Ok(frames)
}

/// Resolve the live checkpoint under `root` via its `CURRENT` pointer and
/// read the manifest. Returns the checkpoint directory alongside it.
pub fn read_manifest(root: &Path) -> Result<(PathBuf, Manifest)> {
    let current = std::fs::read_to_string(root.join("CURRENT"))
        .map_err(|_| Error::NotFound(format!("no checkpoint CURRENT under {}", root.display())))?;
    let dir = root.join(current.trim());
    let manifest = Manifest::read_from(&dir.join("MANIFEST"))?;
    Ok((dir, manifest))
}

/// Load a checkpoint into freshly created tables (keyed by the manifest's
/// table ids). `slot_map` is filled with the old-slot → new-slot mapping of
/// every restored row; pass it on to [`mainline_wal::recover_from`] for the
/// tail replay.
///
/// `root` is the checkpoint root and `dir` the manifest's own directory (as
/// returned by [`read_manifest`]): an incremental manifest's `frame` lines
/// may point into *earlier* checkpoint directories under the same root, and
/// the loader resolves them there — the restore-time half of the
/// manifest-diff chain.
pub fn load_into(
    root: &Path,
    dir: &Path,
    manifest: &Manifest,
    manager: &TransactionManager,
    tables: &HashMap<u32, Arc<DataTable>>,
    slot_map: &mut HashMap<(u32, u64), TupleSlot>,
) -> Result<LoadStats> {
    let mut stats = LoadStats::default();

    // Cold image: the manifest's frame list, wherever each frame's bytes
    // live in the chain. Refs are grouped by file so each cold segment is
    // read, consumed, and dropped before the next — peak memory is one
    // file's frames, not the whole generation chain.
    let mut by_file: Vec<((String, String), Vec<&crate::manifest::FrameRef>)> = Vec::new();
    for frame_ref in &manifest.frames {
        let key = (frame_ref.dir.clone(), frame_ref.file.clone());
        match by_file.iter_mut().find(|(k, _)| *k == key) {
            Some((_, refs)) => refs.push(frame_ref),
            None => by_file.push((key, vec![frame_ref])),
        }
    }
    for ((dir_name, file), refs) in by_file {
        let frames = read_cold_frames(&root.join(&dir_name).join(&file))?;
        for frame_ref in refs {
            let table = tables.get(&frame_ref.table_id).ok_or_else(|| {
                Error::NotFound(format!("checkpoint table {}", frame_ref.table_id))
            })?;
            let frame = frames.get(frame_ref.index as usize).ok_or_else(|| {
                Error::Corrupt(format!(
                    "manifest references frame {} of {dir_name}/{file}, which has only {}",
                    frame_ref.index,
                    frames.len()
                ))
            })?;
            // Identity: the manifest's base matches the file's for frames
            // written in the manifest's own process. A reused frame that
            // crossed a restart carries the *current* process's base (so the
            // WAL slot map lines up) while the file still holds the writing
            // process's — there the freeze stamp, unique within the era, is
            // the identity.
            let stamp_match =
                frame.freeze_stamp != 0 && frame.freeze_stamp == frame_ref.freeze_stamp;
            if frame.table_id != frame_ref.table_id
                || (frame.old_base != frame_ref.old_base && !stamp_match)
            {
                return Err(Error::Corrupt(format!(
                    "frame {} of {dir_name}/{file} is (table {}, base {:#x}, stamp {}), manifest \
                     says (table {}, base {:#x}, stamp {})",
                    frame_ref.index,
                    frame.table_id,
                    frame.old_base,
                    frame.freeze_stamp,
                    frame_ref.table_id,
                    frame_ref.old_base,
                    frame_ref.freeze_stamp
                )));
            }
            let batch = ipc::decode_batch(&frame.payload)?;
            let live = rebuild_frozen_block(table, frame, frame_ref, &batch, slot_map)?;
            stats.frozen_blocks += 1;
            stats.cold_rows += live;
        }
    }

    // Delta segments always live in the manifest's own directory (hot-row
    // snapshots are never shared between generations). These streams are
    // written by the checkpoint writer and can never contain DDL.
    for seg in &manifest.segments {
        if seg.kind != SegmentKind::Delta {
            continue;
        }
        if !tables.contains_key(&seg.table_id) {
            return Err(Error::NotFound(format!("checkpoint table {}", seg.table_id)));
        }
        let path = dir.join(&seg.file);
        let bytes = std::fs::read(&path)?;
        if bytes.len() < 12 || &bytes[..8] != DELTA_MAGIC {
            return Err(Error::Corrupt("bad delta-segment magic".into()));
        }
        let rec = mainline_wal::recover_from(
            &bytes[12..],
            Timestamp::ZERO,
            manager,
            tables,
            slot_map,
            &mut mainline_wal::NoDdl,
        )?;
        stats.delta_rows += rec.ops_applied as u64;
    }
    Ok(stats)
}

/// Validate an i32 offsets array before raw pointers are derived from it:
/// non-negative, non-decreasing, and bounded by the value buffer's length.
fn check_offsets(offsets: &[i32], values_len: usize, col: u16, what: &str) -> Result<()> {
    let mut prev = 0i32;
    for &o in offsets {
        if o < prev || o as usize > values_len {
            return Err(Error::Corrupt(format!(
                "{what} column {col}: offset {o} invalid (prev {prev}, {values_len} value bytes)"
            )));
        }
        prev = o;
    }
    Ok(())
}

/// Install a cold frame's content into `block`'s memory: allocation bitmap,
/// null bitmaps, one memcpy per fixed column, and a canonical gathered side
/// buffer plus per-slot non-owning entries per varlen column — exactly the
/// layout `mainline_transform`'s freeze would have produced. Returns the
/// number of live rows.
///
/// The inverse of the gather pass, shared by the two consumers of the
/// checkpoint chain: restart's loader (into a fresh block) and the buffer
/// manager's fault path ([`fault_in_block`], back into an evicted block's
/// released body — the bitmap writes are idempotent over the still-resident
/// head page). The caller owns the block's state transitions.
pub fn populate_frozen_block(
    table: &DataTable,
    frame: &ColdFrame,
    batch: &RecordBatch,
    block: &Block,
) -> Result<u64> {
    let layout = Arc::clone(table.layout());
    let n = frame.n;
    if n > layout.num_slots() {
        return Err(Error::Corrupt(format!("cold frame claims {n} slots", n = n)));
    }
    if batch.num_rows() != n as usize || batch.num_columns() != layout.num_user_cols() {
        return Err(Error::Corrupt(format!(
            "cold frame shape {}x{} does not match table {} ({} slots, {} cols)",
            batch.num_rows(),
            batch.num_columns(),
            table.id(),
            n,
            layout.num_user_cols()
        )));
    }
    let ptr = block.as_ptr();
    let total_slots = layout.num_slots() as usize;

    // Allocation bitmap + per-column null bitmaps first: entry/value writes
    // below assume the slot population is settled.
    let mut live = 0u64;
    for slot in 0..n {
        if frame.is_allocated(slot) {
            unsafe { access::set_allocated(ptr, &layout, slot) };
            live += 1;
        }
    }
    for (u, &col) in table.all_cols().iter().enumerate() {
        let array = batch.column(u);
        for slot in 0..n {
            if frame.is_allocated(slot) {
                unsafe {
                    access::set_null(ptr, &layout, slot, col, !array.is_valid(slot as usize))
                };
            }
        }
        match array {
            ColumnArray::Primitive(a) => {
                let width = layout.attr_size(col) as usize;
                let values = a.values().as_slice();
                if values.len() != n as usize * width {
                    return Err(Error::Corrupt(format!(
                        "primitive column {col}: {} bytes for {n} slots of width {width}",
                        values.len()
                    )));
                }
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        values.as_ptr(),
                        ptr.add(layout.column_offset(col) as usize),
                        values.len(),
                    );
                }
            }
            ColumnArray::VarBinary(a) => {
                let short = a.offsets().typed::<i32>();
                if short.len() != n as usize + 1 {
                    return Err(Error::Corrupt(format!(
                        "varbinary column {col}: {} offsets for {n} slots",
                        short.len()
                    )));
                }
                // Extend to the full-slot shape the gather pass produces:
                // never-used tail slots get zero-length gaps.
                let mut offsets = short.to_vec();
                offsets.resize(total_slots + 1, *short.last().unwrap_or(&0));
                let values: Box<[u8]> = a.values().as_slice().into();
                // The entries below are raw pointers computed from these
                // offsets; a corrupt file must become an error here, not an
                // out-of-bounds pointer in a live block.
                check_offsets(&offsets, values.len(), col, "varbinary")?;
                let base = values.as_ptr();
                let mut valid = 0usize;
                for slot in 0..n {
                    let ok = frame.is_allocated(slot) && array.is_valid(slot as usize);
                    unsafe {
                        let entry = if ok {
                            valid += 1;
                            let start = offsets[slot as usize] as usize;
                            let len =
                                (offsets[slot as usize + 1] - offsets[slot as usize]) as usize;
                            VarlenEntry::from_gathered(base.add(start), len)
                        } else {
                            VarlenEntry::empty()
                        };
                        access::write_varlen(ptr, &layout, slot, col, entry);
                    }
                }
                let gathered =
                    GatheredColumn::Gathered { offsets, values, null_count: total_slots - valid };
                let _ = block.arrow.install(col, Arc::new(gathered));
            }
            ColumnArray::Dictionary(a) => {
                let short = a.codes().typed::<i32>();
                if short.len() != n as usize {
                    return Err(Error::Corrupt(format!(
                        "dictionary column {col}: {} codes for {n} slots",
                        short.len()
                    )));
                }
                let mut codes = short.to_vec();
                codes.resize(total_slots, -1);
                let dict_offsets = a.dictionary().offsets().typed::<i32>().to_vec();
                let dict_values: Box<[u8]> = a.dictionary().values().as_slice().into();
                check_offsets(&dict_offsets, dict_values.len(), col, "dictionary")?;
                let max_code = dict_offsets.len().saturating_sub(1) as i64;
                if codes.iter().any(|&c| (c as i64) >= max_code) {
                    return Err(Error::Corrupt(format!(
                        "dictionary column {col}: code out of range (dict has {max_code} entries)"
                    )));
                }
                let base = dict_values.as_ptr();
                let mut valid = 0usize;
                for slot in 0..n {
                    let code = codes[slot as usize];
                    let ok = frame.is_allocated(slot) && array.is_valid(slot as usize) && code >= 0;
                    unsafe {
                        let entry = if ok {
                            valid += 1;
                            let start = dict_offsets[code as usize] as usize;
                            let len = (dict_offsets[code as usize + 1]
                                - dict_offsets[code as usize])
                                as usize;
                            VarlenEntry::from_gathered(base.add(start), len)
                        } else {
                            VarlenEntry::empty()
                        };
                        access::write_varlen(ptr, &layout, slot, col, entry);
                    }
                }
                let compressed = GatheredColumn::Dictionary {
                    codes,
                    dict_offsets,
                    dict_values,
                    null_count: total_slots - valid,
                };
                let _ = block.arrow.install(col, Arc::new(compressed));
            }
        }
    }

    Ok(live)
}

/// Reconstruct one frozen block from its IPC payload + envelope and append
/// it to `table`'s block list (the restart path). Returns the number of
/// live rows.
///
/// Identity handling: when the frame carries a stamp from an adoptable era
/// (the manifest's — first adoption wins process-wide), the block re-adopts
/// it and records its chain location, so the first post-restart checkpoint
/// reuses the frame instead of rewriting it **and** the block is immediately
/// evictable. Otherwise the rebuilt content gets a fresh stamp and the next
/// checkpoint captures it anew. Slot-map keys use `frame_ref.old_base` — the
/// manifest's address, which is what the WAL tail references — not the
/// file's (they differ for frames reused across a restart).
fn rebuild_frozen_block(
    table: &Arc<DataTable>,
    frame: &ColdFrame,
    frame_ref: &crate::manifest::FrameRef,
    batch: &RecordBatch,
    slot_map: &mut HashMap<(u32, u64), TupleSlot>,
) -> Result<u64> {
    let block = Block::new(Arc::clone(table.layout()));
    let live = populate_frozen_block(table, frame, batch, &block)?;

    let h = block.header();
    h.set_insert_head(frame.n);
    let adopted = frame.freeze_stamp != 0
        && frame.freeze_era != 0
        && mainline_storage::raw_block::adopt_freeze_era(frame.freeze_era);
    if adopted {
        block.adopt_freeze_stamp(frame.freeze_stamp);
        block.set_cold_location(mainline_storage::ColdLocation {
            dir: frame_ref.dir.clone(),
            file: frame_ref.file.clone(),
            index: frame_ref.index,
            bytes: frame_ref.bytes,
            stamp: frame.freeze_stamp,
        });
    } else {
        // Fresh identity: the next incremental checkpoint in *this* process
        // diffs against its own chain, and the restored block is new content
        // as far as that chain is concerned.
        block.stamp_freeze();
    }
    h.set_state_raw(BlockState::Frozen as u32);

    for slot in 0..frame.n {
        if frame.is_allocated(slot) {
            slot_map.insert(
                (frame.table_id, frame_ref.old_base | slot as u64),
                TupleSlot::new(block.as_ptr(), slot),
            );
        }
    }
    table.blocks_handle().write().push(block);
    Ok(live)
}

/// Fault an **evicted** block's frozen content back into its released body —
/// the demand-paging half of the cold-block buffer manager. `root` is the
/// checkpoint root the block's [`ColdLocation`](mainline_storage::ColdLocation)
/// points into.
///
/// Claims the block (`Evicted → Faulting`, exclusive), reads its frame from
/// the chain, verifies identity (table, freeze stamp, insert head), and
/// installs the content via [`populate_frozen_block`] at the block's
/// original address — tuple slots and index entries never move. Publishes
/// `Faulting → Frozen` with a residency-version bump on success; on any
/// error the claim is reverted (`Faulting → Evicted`) and the error
/// propagates to the access that triggered the fault.
///
/// Returns `Ok(false)` without touching anything if the block is not
/// evicted — another thread won the fault race or a writer already thawed
/// it; the caller just retries its access.
pub fn fault_in_block(root: &Path, table: &DataTable, block: &Block) -> Result<bool> {
    use mainline_storage::block_state::BlockStateMachine;
    obs::register();
    let h = block.header();
    if !BlockStateMachine::begin_fault(h) {
        return Ok(false);
    }
    let fault_start = std::time::Instant::now();
    let rebuild = (|| -> Result<()> {
        // The chain compactor may rewrite this frame concurrently: it
        // retargets the block's recorded location strictly *before* pruning
        // the old generation, so a read that loses the race (ENOENT, or a
        // mismatched frame behind a reused path) re-reads the location and
        // retries against the fresh copy. A failure with an *unchanged*
        // location is real corruption and propagates.
        let mut loc = block
            .cold_location()
            .ok_or_else(|| Error::Corrupt("evicted block has no cold location".into()))?;
        loop {
            if loc.stamp == 0 || loc.stamp != block.freeze_stamp() {
                return Err(Error::Corrupt(format!(
                    "evicted block location stamp {} != live stamp {}",
                    loc.stamp,
                    block.freeze_stamp()
                )));
            }
            let attempt = (|| -> Result<()> {
                let frames = read_cold_frames(&root.join(&loc.dir).join(&loc.file))?;
                let frame = frames.get(loc.index as usize).ok_or_else(|| {
                    Error::Corrupt(format!(
                        "cold location references frame {} of {}/{}, which has only {}",
                        loc.index,
                        loc.dir,
                        loc.file,
                        frames.len()
                    ))
                })?;
                let expected_n = h.insert_head().min(table.layout().num_slots());
                if frame.table_id != table.id()
                    || frame.freeze_stamp != loc.stamp
                    || frame.n != expected_n
                {
                    return Err(Error::Corrupt(format!(
                        "cold frame identity (table {}, stamp {}, n {}) does not match evicted \
                         block (table {}, stamp {}, n {expected_n})",
                        frame.table_id,
                        frame.freeze_stamp,
                        frame.n,
                        table.id(),
                        loc.stamp
                    )));
                }
                let batch = ipc::decode_batch(&frame.payload)?;
                populate_frozen_block(table, frame, &batch, block)?;
                Ok(())
            })();
            match attempt {
                Ok(()) => return Ok(()),
                Err(e) => match block.cold_location() {
                    // Moved under us — compaction retargeted it; retry there.
                    Some(fresh) if fresh != loc => loc = fresh,
                    // Nothing moved — the failure is genuine.
                    _ => return Err(e),
                },
            }
        }
    })();
    match rebuild {
        Ok(()) => {
            BlockStateMachine::finish_fault(h);
            let took = fault_start.elapsed();
            obs::FAULT_NANOS.observe_duration(took);
            mainline_obs::record_event(
                mainline_obs::kind::FAULT_IN,
                block.charged_bytes(),
                took.as_nanos() as u64,
            );
            Ok(true)
        }
        Err(e) => {
            BlockStateMachine::abort_fault(h);
            Err(e)
        }
    }
}

/// Global buffer-manager latency metrics (see `mainline-obs`). Fault and
/// eviction *counts* live on each database's `MemoryAccountant` (aliased
/// into `Database::metrics_snapshot`); the histogram here is the latency
/// distribution only the fault path itself can measure. Registered
/// (idempotently) on first restore/fault use via [`obs::register`].
pub(crate) mod obs {
    use mainline_obs::{Histogram, Metric};

    /// Wall-clock nanoseconds to fault an evicted block's frozen content
    /// back in from the checkpoint chain (claim through publish).
    pub static FAULT_NANOS: Histogram = Histogram::new(
        "buffer_fault_nanos",
        "demand-paging latency: evicted block claim through frozen republish",
    );

    pub(crate) fn register() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            mainline_obs::registry().register(&[Metric::Histogram(&FAULT_NANOS)]);
        });
    }
}
