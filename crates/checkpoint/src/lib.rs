//! `mainline-checkpoint` — Arrow-native checkpoints and fast restart.
//!
//! The paper's central claim is that cold blocks *are* canonical Arrow, so
//! exporting them costs zero transformation (§5). This crate applies the
//! same claim to **durability**: a checkpoint snapshots every frozen block
//! as the raw Arrow IPC frame the export path would put on the wire —
//! literally the same bytes, produced by the same
//! [`frozen_batch`](mainline_export::materialize::frozen_batch) — while hot
//! blocks are materialized through the ordinary MVCC snapshot-read path into
//! a *delta segment*. Together with WAL segmentation
//! ([`mainline_wal::segments`]) this bounds restart time by **live data + WAL
//! tail** instead of by history:
//!
//! ```text
//!  checkpoint (online, writers keep running)
//!  ┌──────────────────────────────────────────────────────────┐
//!  │ pick ts via txn manager (the open txn pins GC pruning,   │
//!  │ so a block observed Frozen holds only data ≤ ts)         │
//!  │   frozen block ──► raw Arrow IPC frame   (zero transform)│
//!  │   hot block    ──► MVCC snapshot ──► delta redo stream   │
//!  │ manifest written last, atomically renamed                │
//!  └──────────────────────────────────────────────────────────┘
//!  restart = load IPC frames straight into frozen blocks
//!          + replay delta rows
//!          + replay only the WAL tail (commit ts > checkpoint ts)
//! ```
//!
//! ## Consistency argument
//!
//! The checkpoint transaction stays open for the whole block walk. While it
//! is open, `oldest_active_start() <= checkpoint_ts`, so the GC cannot prune
//! the version of any transaction that committed *after* the checkpoint
//! timestamp — and a block cannot freeze until its version column is fully
//! pruned. Therefore any block observed `Frozen` during the walk contains
//! exactly the committed data visible at `checkpoint_ts`, and copying its
//! raw bytes *is* a consistent snapshot. Hot, cooling, and freezing blocks
//! go through `DataTable::select`, which is MVCC-correct by construction.
//!
//! ## Incremental checkpoints
//!
//! A frozen block's bytes are immutable until a writer thaws it, and every
//! freeze draws a fresh process-unique **freeze stamp**
//! ([`mainline_storage::raw_block::Block::stamp_freeze`]). The checkpoint
//! writer indexes the previous manifest's cold frames by
//! `(table, base, stamp)` and, for any frozen block whose identity already
//! appears there, emits a manifest `frame` line *referencing* the prior
//! checkpoint's segment file instead of rewriting the bytes — manifest-diff
//! style. References may span several generations; the restore loader
//! resolves them under the shared root, and pruning keeps every directory
//! the published manifest still references. Checkpoint cost is therefore
//! O(changed data), not O(all data).
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/CURRENT              name of the live checkpoint directory
//! <root>/ckpt-<ts>/MANIFEST   tables, schemas, indexes, segments, frames
//! <root>/ckpt-<ts>/table-<id>.cold    frozen-block IPC frames (new ones)
//! <root>/ckpt-<ts>/table-<id>.delta   hot-row redo stream
//! ```
//!
//! The manifest is written last and the directory + `CURRENT` pointer are
//! published by atomic rename, so a crash mid-checkpoint leaves the previous
//! checkpoint (or none) intact and the WAL untouched — truncation only runs
//! after `CURRENT` points at the new checkpoint. Every file operation of the
//! publish sequence is crash-injectable via [`mainline_common::failpoint`];
//! the root-level `crash_matrix` test battery iterates a simulated crash
//! across all of them.
//!
//! ## Chain compaction
//!
//! Incremental references keep whole generation directories alive for their
//! last referenced frame, so a churning database would leak mostly-dead
//! generations forever. The [`compact`] module is the size-tiered copying
//! GC that bounds the chain: it buckets generations by live-byte ratio and
//! size, rewrites survivors into a fresh generation, republishes the
//! manifest atomically, retargets evicted blocks' recorded locations, and
//! only then prunes — same failpoint discipline, same crash battery.

#![warn(missing_docs)]

pub mod compact;
pub mod manifest;
pub mod restore;
pub mod writer;

pub use compact::{
    chain_generations, compact_chain, plan_victims, CompactionPolicy, CompactionStats,
    GenerationInfo,
};
pub use manifest::{FrameRef, IndexManifest, Manifest, SegmentEntry, SegmentKind, TableManifest};
pub use restore::{
    fault_in_block, load_into, populate_frozen_block, read_cold_frames, read_manifest, ColdFrame,
    LoadStats,
};
pub use writer::{
    write_checkpoint, write_checkpoint_anchored, CheckpointStats, TableCheckpointSpec,
};
