//! `mainline-checkpoint` — Arrow-native checkpoints and fast restart.
//!
//! The paper's central claim is that cold blocks *are* canonical Arrow, so
//! exporting them costs zero transformation (§5). This crate applies the
//! same claim to **durability**: a checkpoint snapshots every frozen block
//! as the raw Arrow IPC frame the export path would put on the wire —
//! literally the same bytes, produced by the same
//! [`frozen_batch`](mainline_export::materialize::frozen_batch) — while hot
//! blocks are materialized through the ordinary MVCC snapshot-read path into
//! a *delta segment*. Together with WAL segmentation
//! ([`mainline_wal::segments`]) this bounds restart time by **live data + WAL
//! tail** instead of by history:
//!
//! ```text
//!  checkpoint (online, writers keep running)
//!  ┌──────────────────────────────────────────────────────────┐
//!  │ pick ts via txn manager (the open txn pins GC pruning,   │
//!  │ so a block observed Frozen holds only data ≤ ts)         │
//!  │   frozen block ──► raw Arrow IPC frame   (zero transform)│
//!  │   hot block    ──► MVCC snapshot ──► delta redo stream   │
//!  │ manifest written last, atomically renamed                │
//!  └──────────────────────────────────────────────────────────┘
//!  restart = load IPC frames straight into frozen blocks
//!          + replay delta rows
//!          + replay only the WAL tail (commit ts > checkpoint ts)
//! ```
//!
//! ## Consistency argument
//!
//! The checkpoint transaction stays open for the whole block walk. While it
//! is open, `oldest_active_start() <= checkpoint_ts`, so the GC cannot prune
//! the version of any transaction that committed *after* the checkpoint
//! timestamp — and a block cannot freeze until its version column is fully
//! pruned. Therefore any block observed `Frozen` during the walk contains
//! exactly the committed data visible at `checkpoint_ts`, and copying its
//! raw bytes *is* a consistent snapshot. Hot, cooling, and freezing blocks
//! go through `DataTable::select`, which is MVCC-correct by construction.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/CURRENT              name of the live checkpoint directory
//! <root>/ckpt-<ts>/MANIFEST   tables, schemas, indexes, segment list
//! <root>/ckpt-<ts>/table-<id>.cold    frozen-block IPC frames
//! <root>/ckpt-<ts>/table-<id>.delta   hot-row redo stream
//! ```
//!
//! The manifest is written last and the directory + `CURRENT` pointer are
//! published by atomic rename, so a crash mid-checkpoint leaves the previous
//! checkpoint (or none) intact and the WAL untouched — truncation only runs
//! after `CURRENT` points at the new checkpoint.

#![warn(missing_docs)]

pub mod manifest;
pub mod restore;
pub mod writer;

pub use manifest::{IndexManifest, Manifest, SegmentEntry, SegmentKind, TableManifest};
pub use restore::{load_into, read_manifest, ColdFrame, LoadStats};
pub use writer::{write_checkpoint, CheckpointStats, TableCheckpointSpec};
