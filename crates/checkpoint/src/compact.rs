//! Size-tiered generation GC for the checkpoint chain — the copying
//! compactor (ISSUE 8, ROADMAP direction 3).
//!
//! Incremental checkpoints reference unchanged frames wherever they already
//! live, so a generation directory survives while *any* published frame —
//! including an evicted block's recorded
//! [`ColdLocation`] — still points into it.
//! Under churn that policy leaks: a generation whose frames are slowly
//! superseded keeps its full on-disk footprint for its last live frame, and
//! restart / fault-in walk an ever-deeper chain. This module bounds the
//! chain the way an LSM store bounds its runs (size-tiered, STCS-style):
//!
//! * **Accounting** ([`chain_generations`]): for every generation the live
//!   manifest references, live bytes = the payload bytes of the manifest
//!   frames still pointing there; total bytes = the directory's on-disk
//!   footprint (superseded frames, stale delta segments, and the old
//!   generation's own MANIFEST are all dead weight).
//! * **Bucketing** ([`CompactionPolicy`]): a generation becomes a victim on
//!   either trigger — its **dead ratio** crosses
//!   [`min_dead_ratio`](CompactionPolicy::min_dead_ratio) (space reclaim),
//!   or its **size tier** (power-of-two bucket of total bytes) accumulates
//!   [`tier_merge_count`](CompactionPolicy::tier_merge_count) generations
//!   (depth bound: many similarly-sized mostly-live generations merge into
//!   one, exactly the STCS compaction trigger).
//! * **Copying rewrite**: every *surviving* frame of every victim is copied
//!   — envelope verbatim, payload byte-identical — into a fresh generation
//!   directory (`ckpt-<ts>-gc<seq>`), so the zero-transformation claim is
//!   untouched: the rewritten frame still serves restarts, fault-ins, and
//!   Flight export with the exact bytes the freeze produced.
//! * **Atomic republish**: the live manifest is rewritten **in place**
//!   (tmp + rename inside the `CURRENT` directory — `CURRENT` itself never
//!   moves) with the victims' frame references retargeted to the fresh
//!   generation. A crash before the rename leaves the old manifest and an
//!   unreferenced new directory (garbage, pruned by the next pass); after
//!   the rename the chain is already consistent.
//! * **Retarget, then prune** — the liveness invariant: *no generation a
//!   published manifest or a recorded `ColdLocation` references is ever
//!   deleted.* After the republish, every block whose recorded location
//!   points at a rewritten frame is retargeted
//!   ([`Block::retarget_cold_location`]) under its stamp guard, and only
//!   then are the victims removed. A concurrent fault-in that captured the
//!   *old* location before the prune simply retries: it re-reads the
//!   location after the failed read, finds the retargeted one (retarget
//!   happens strictly before prune), and rebuilds from the fresh copy —
//!   see [`fault_in_block`](crate::restore::fault_in_block), and the
//!   `retarget_interleavings` model check that walks every interleaving of
//!   the two protocols.
//!
//! Every externally visible file operation goes through
//! [`mainline_common::failpoint`] (`compact.*` labels plus the shared
//! `manifest.*` ones), so the crash-matrix battery extends to the compactor:
//! a kill after any operation must leave `CURRENT` resolving to a whole
//! manifest whose every referenced frame still exists.
//!
//! [`Block::retarget_cold_location`]: mainline_storage::raw_block::Block::retarget_cold_location

use crate::manifest::FrameRef;
use crate::restore::read_cold_frames;
use crate::writer::{fsync_dir, prune_old, COLD_MAGIC};
use mainline_common::{failpoint, Error, Result};
use mainline_storage::ColdLocation;
use mainline_txn::DataTable;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When to rewrite which generations (see the module docs for the two
/// triggers). Defaults are deliberately conservative; the database layer
/// derives tighter settings from `MAINLINE_COMPACTION_*` for CI forcing.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionPolicy {
    /// Space trigger: a generation whose dead-byte fraction (1 − live/total)
    /// reaches this becomes a victim.
    pub min_dead_ratio: f64,
    /// Depth trigger: a power-of-two size tier holding this many generations
    /// is merged wholesale, live ratio notwithstanding (bounds chain depth
    /// to roughly `tier_merge_count · log₂(data)` generations). Clamped to
    /// at least 2 — merging single generations into themselves forever
    /// would be pure write amplification.
    pub tier_merge_count: usize,
    /// At most this many generations are rewritten per pass (bounds pass
    /// latency; the dirtiest victims go first, the rest wait their turn).
    pub max_batch: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { min_dead_ratio: 0.35, tier_merge_count: 4, max_batch: 8 }
    }
}

/// Per-generation accounting, as [`chain_generations`] reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationInfo {
    /// Directory name under the checkpoint root.
    pub dir: String,
    /// On-disk bytes of every file in the directory.
    pub total_bytes: u64,
    /// Payload bytes of the live manifest's frames that point here.
    pub live_bytes: u64,
    /// Number of live frames pointing here.
    pub live_frames: usize,
    /// Whether this is the `CURRENT` directory (holds the live manifest and
    /// delta segments; never a compaction victim).
    pub current: bool,
}

impl GenerationInfo {
    /// Live fraction of the on-disk footprint (1.0 for an empty directory).
    pub fn live_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            1.0
        } else {
            (self.live_bytes.min(self.total_bytes)) as f64 / self.total_bytes as f64
        }
    }

    /// Dead fraction — the reclaim available by rewriting the survivors.
    pub fn dead_ratio(&self) -> f64 {
        1.0 - self.live_ratio()
    }
}

/// What one compaction pass did (or found nothing to do).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompactionStats {
    /// Generations the pass examined (the live chain, minus `CURRENT`).
    pub generations_examined: usize,
    /// Victim generations rewritten and pruned.
    pub generations_compacted: usize,
    /// Surviving frames copied into the fresh generation.
    pub frames_rewritten: usize,
    /// Bytes written into the fresh generation (envelopes + payload).
    pub bytes_rewritten: u64,
    /// On-disk bytes of the victims, net of the rewrite — the reclaim.
    pub bytes_reclaimed: u64,
    /// Live-ratio histogram over the examined generations: bucket `i` counts
    /// generations with `live_ratio ∈ [i/10, (i+1)/10)` (bucket 9 includes
    /// fully live).
    pub live_ratio_histogram: [u64; 10],
    /// The fresh generation directory, when one was published.
    pub dir: Option<PathBuf>,
    /// Wall-clock seconds the pass took.
    pub duration_secs: f64,
}

/// Account every generation of the live chain under `root`: the directories
/// the `CURRENT` manifest references, plus the `CURRENT` directory itself.
/// Returns an empty list when no checkpoint has been published yet.
pub fn chain_generations(root: &Path) -> Result<Vec<GenerationInfo>> {
    let (cur_dir, manifest) = match crate::restore::read_manifest(root) {
        Ok(v) => v,
        Err(Error::NotFound(_)) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let current_name =
        cur_dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let mut dirs: BTreeSet<String> = manifest.referenced_dirs();
    dirs.insert(current_name.clone());

    let mut live: BTreeMap<String, (u64, usize)> = BTreeMap::new();
    for f in &manifest.frames {
        let e = live.entry(f.dir.clone()).or_insert((0, 0));
        e.0 += f.bytes;
        e.1 += 1;
    }
    let mut out = Vec::new();
    for dir in dirs {
        let total = dir_bytes(&root.join(&dir));
        let (live_bytes, live_frames) = live.get(&dir).copied().unwrap_or((0, 0));
        out.push(GenerationInfo {
            current: dir == current_name,
            dir,
            total_bytes: total,
            live_bytes,
            live_frames,
        });
    }
    Ok(out)
}

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// Pick the victims of one pass. Pure policy, split out so tests (and the
/// stats surface) can interrogate it without touching disk beyond the
/// accounting.
pub fn plan_victims(policy: &CompactionPolicy, gens: &[GenerationInfo]) -> Vec<String> {
    let tier_merge = policy.tier_merge_count.max(2);
    let candidates: Vec<&GenerationInfo> = gens.iter().filter(|g| !g.current).collect();
    let mut victims: BTreeSet<&str> = candidates
        .iter()
        .filter(|g| g.dead_ratio() >= policy.min_dead_ratio)
        .map(|g| g.dir.as_str())
        .collect();
    // Size tiers: bucket by the bit length of total bytes (power-of-two
    // tiers, the classic STCS shape). A full tier merges wholesale.
    let mut tiers: BTreeMap<u32, Vec<&GenerationInfo>> = BTreeMap::new();
    for g in &candidates {
        tiers.entry(64 - g.total_bytes.max(1).leading_zeros()).or_default().push(g);
    }
    for members in tiers.values().filter(|m| m.len() >= tier_merge) {
        victims.extend(members.iter().map(|g| g.dir.as_str()));
    }
    // Dirtiest first, then older (lexically smaller) names, then cap.
    let mut ordered: Vec<&GenerationInfo> =
        candidates.iter().filter(|g| victims.contains(g.dir.as_str())).copied().collect();
    ordered.sort_by(|a, b| {
        let da = a.total_bytes.saturating_sub(a.live_bytes);
        let db = b.total_bytes.saturating_sub(b.live_bytes);
        db.cmp(&da).then_with(|| a.dir.cmp(&b.dir))
    });
    ordered.truncate(policy.max_batch);
    ordered.into_iter().map(|g| g.dir.clone()).collect()
}

/// One lazily-created cold segment of the fresh generation. Unlike the
/// checkpoint writer's segment writer this copies envelopes **verbatim** —
/// in particular each frame's original freeze *era*, which identifies the
/// process that froze the content, not the one compacting it.
struct RewriteSegment {
    path: PathBuf,
    file_name: String,
    table_id: u32,
    out: Option<std::io::BufWriter<std::fs::File>>,
    count: u32,
    bytes: u64,
}

impl RewriteSegment {
    fn new(dir: &Path, table_id: u32) -> RewriteSegment {
        let file_name = format!("table-{table_id}.cold");
        RewriteSegment {
            path: dir.join(&file_name),
            file_name,
            table_id,
            out: None,
            count: 0,
            bytes: 0,
        }
    }

    fn append(&mut self, frame: &crate::restore::ColdFrame) -> Result<u32> {
        if self.out.is_none() {
            failpoint::check("compact.segment.create")?;
            let mut w = std::io::BufWriter::new(std::fs::File::create(&self.path)?);
            w.write_all(COLD_MAGIC)?;
            w.write_all(&self.table_id.to_le_bytes())?;
            self.bytes += 12;
            self.out = Some(w);
        }
        failpoint::check("compact.frame.write")?;
        let w = self.out.as_mut().unwrap();
        w.write_all(&frame.old_base.to_le_bytes())?;
        w.write_all(&frame.freeze_stamp.to_le_bytes())?;
        w.write_all(&frame.freeze_era.to_le_bytes())?;
        w.write_all(&frame.n.to_le_bytes())?;
        w.write_all(&(frame.alloc.len() as u32).to_le_bytes())?;
        w.write_all(&frame.alloc)?;
        w.write_all(&(frame.payload.len() as u64).to_le_bytes())?;
        w.write_all(&frame.payload)?;
        self.bytes += 36 + frame.alloc.len() as u64 + frame.payload.len() as u64;
        let index = self.count;
        self.count += 1;
        Ok(index)
    }

    fn finish(self) -> Result<u64> {
        let Some(mut w) = self.out else { return Ok(0) };
        failpoint::check("compact.segment.sync")?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(self.bytes)
    }
}

/// Run one compaction pass over the chain under `root`.
///
/// `tables` is the live table set (the database layer's catalog snapshot):
/// after the republish, any of their blocks whose recorded
/// [`ColdLocation`] still points at a rewritten frame is retargeted to the
/// fresh copy *before* the victims are pruned — the buffer-manager half of
/// the liveness invariant. Runs with no checkpoint writer concurrently (the
/// database layer serializes both behind its checkpoint lock).
///
/// Returns zeroed stats when there is no published checkpoint or the policy
/// finds no victims; never an error for "nothing to do".
pub fn compact_chain(
    root: &Path,
    policy: &CompactionPolicy,
    tables: &[Arc<DataTable>],
) -> Result<CompactionStats> {
    let t0 = std::time::Instant::now();
    let mut stats = CompactionStats::default();
    let (cur_dir, manifest) = match crate::restore::read_manifest(root) {
        Ok(v) => v,
        Err(Error::NotFound(_)) => return Ok(stats),
        Err(e) => return Err(e),
    };
    let current_name =
        cur_dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();

    let gens = chain_generations(root)?;
    for g in gens.iter().filter(|g| !g.current) {
        stats.generations_examined += 1;
        let bucket = ((g.live_ratio() * 10.0) as usize).min(9);
        stats.live_ratio_histogram[bucket] += 1;
    }
    let victims: BTreeSet<String> = plan_victims(policy, &gens).into_iter().collect();
    if victims.is_empty() {
        stats.duration_secs = t0.elapsed().as_secs_f64();
        return Ok(stats);
    }
    let victim_bytes: u64 =
        gens.iter().filter(|g| victims.contains(&g.dir)).map(|g| g.total_bytes).sum();

    // Fresh generation name: monotonic `-gc<seq>` suffix past every existing
    // directory, so a retrying pass can never collide with (or resurrect the
    // name of) an earlier one that is still referenced.
    let seq = next_gc_seq(root)?;
    let new_name = format!("ckpt-{:020}-gc{seq}", manifest.checkpoint_ts.0);
    let tmp_dir = root.join(format!("{new_name}.tmp"));
    let final_dir = root.join(&new_name);
    let _ = std::fs::remove_dir_all(&tmp_dir);
    std::fs::create_dir_all(&tmp_dir)?;

    // Copy every surviving frame of every victim, grouped by source file so
    // each is read exactly once. Iteration order is the manifest's frame
    // order — deterministic, which the crash battery's op counting relies
    // on.
    let mut by_src: Vec<((String, String), Vec<usize>)> = Vec::new();
    for (i, f) in manifest.frames.iter().enumerate() {
        if !victims.contains(&f.dir) {
            continue;
        }
        let key = (f.dir.clone(), f.file.clone());
        match by_src.iter_mut().find(|(k, _)| *k == key) {
            Some((_, refs)) => refs.push(i),
            None => by_src.push((key, vec![i])),
        }
    }
    let mut new_manifest = manifest.clone();
    let mut segments: BTreeMap<u32, RewriteSegment> = BTreeMap::new();
    // (table, stamp) → fresh location, for the block retarget below.
    let mut retargets: HashMap<(u32, u64), ColdLocation> = HashMap::new();
    for ((dir_name, file), refs) in by_src {
        let frames = read_cold_frames(&root.join(&dir_name).join(&file))?;
        for i in refs {
            let fref = &manifest.frames[i];
            let frame = frames.get(fref.index as usize).ok_or_else(|| {
                Error::Corrupt(format!(
                    "compaction: manifest references frame {} of {dir_name}/{file}, which has \
                     only {}",
                    fref.index,
                    frames.len()
                ))
            })?;
            // Same identity rule as the loader: base must match unless the
            // (era-unique, nonzero) stamp does — a reused frame that crossed
            // a restart carries the current process's base in the manifest.
            let stamp_match = frame.freeze_stamp != 0 && frame.freeze_stamp == fref.freeze_stamp;
            if frame.table_id != fref.table_id || (frame.old_base != fref.old_base && !stamp_match)
            {
                return Err(Error::Corrupt(format!(
                    "compaction: frame {} of {dir_name}/{file} is (table {}, base {:#x}, stamp \
                     {}), manifest says (table {}, base {:#x}, stamp {})",
                    fref.index,
                    frame.table_id,
                    frame.old_base,
                    frame.freeze_stamp,
                    fref.table_id,
                    fref.old_base,
                    fref.freeze_stamp
                )));
            }
            let seg = segments
                .entry(fref.table_id)
                .or_insert_with(|| RewriteSegment::new(&tmp_dir, fref.table_id));
            let new_index = seg.append(frame)?;
            new_manifest.frames[i] = FrameRef {
                index: new_index,
                dir: new_name.clone(),
                file: seg.file_name.clone(),
                ..fref.clone()
            };
            if fref.freeze_stamp != 0 {
                retargets.insert(
                    (fref.table_id, fref.freeze_stamp),
                    ColdLocation {
                        dir: new_name.clone(),
                        file: seg.file_name.clone(),
                        index: new_index,
                        bytes: fref.bytes,
                        stamp: fref.freeze_stamp,
                    },
                );
            }
            stats.frames_rewritten += 1;
        }
    }
    for (_id, seg) in segments {
        stats.bytes_rewritten += seg.finish()?;
    }

    // Publish the fresh generation, then republish the manifest in place.
    // Order matters: the retargeted manifest must never reference a
    // directory that is not durably on disk.
    failpoint::check("compact.tmpdir.fsync")?;
    fsync_dir(&tmp_dir);
    let _ = std::fs::remove_dir_all(&final_dir);
    failpoint::check("compact.dir.rename")?;
    std::fs::rename(&tmp_dir, &final_dir)?;
    failpoint::check("compact.root.fsync")?;
    fsync_dir(root);
    new_manifest.write_to(&cur_dir.join("MANIFEST"))?;
    failpoint::check("compact.manifest.dirfsync")?;
    fsync_dir(&cur_dir);

    // The rewrite is live. Repoint every block whose recorded location still
    // names a rewritten frame — under the stamp guard, so a block that was
    // thawed/refrozen since keeps its own (stale-anyway) location — and only
    // *then* prune. A fault-in racing this window retries off the updated
    // location (see the module docs).
    for table in tables {
        let id = table.id();
        for block in table.blocks() {
            let Some(loc) = block.cold_location() else { continue };
            if !victims.contains(&loc.dir) {
                continue;
            }
            if let Some(new_loc) = retargets.get(&(id, loc.stamp)) {
                block.retarget_cold_location(loc.stamp, new_loc.clone());
            }
        }
    }

    let mut keep = new_manifest.referenced_dirs();
    keep.insert(current_name);
    prune_old(root, &keep, "compact.prune.remove");

    stats.generations_compacted = victims.len();
    stats.bytes_reclaimed = victim_bytes.saturating_sub(stats.bytes_rewritten);
    stats.dir = Some(final_dir);
    stats.duration_secs = t0.elapsed().as_secs_f64();
    Ok(stats)
}

/// The next unused `-gc<seq>` suffix under `root`: one past the largest seen
/// on any existing directory (pruned numbers are only reused once every
/// larger-numbered generation is gone too, and never while referenced —
/// `compact_chain` names strictly monotonically within a chain's lifetime).
fn next_gc_seq(root: &Path) -> Result<u64> {
    let mut max_seen = 0u64;
    for e in std::fs::read_dir(root)?.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        let Some(pos) = name.rfind("-gc") else { continue };
        if let Ok(n) = name[pos + 3..].trim_end_matches(".tmp").parse::<u64>() {
            max_seen = max_seen.max(n + 1);
        }
    }
    Ok(max_seen.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(dir: &str, total: u64, live: u64, current: bool) -> GenerationInfo {
        GenerationInfo {
            dir: dir.into(),
            total_bytes: total,
            live_bytes: live,
            live_frames: (live > 0) as usize,
            current,
        }
    }

    #[test]
    fn dead_ratio_trigger_picks_mostly_dead_generations() {
        let policy = CompactionPolicy { min_dead_ratio: 0.5, tier_merge_count: 99, max_batch: 8 };
        let gens = vec![
            gen("ckpt-1", 1000, 100, false), // 90% dead
            gen("ckpt-2", 1000, 900, false), // 10% dead
            gen("ckpt-3", 1000, 400, false), // 60% dead
            gen("ckpt-4", 1000, 0, true),    // CURRENT: never a victim
        ];
        assert_eq!(plan_victims(&policy, &gens), vec!["ckpt-1".to_string(), "ckpt-3".into()]);
    }

    #[test]
    fn tier_trigger_merges_a_full_size_tier() {
        // Four ~1 KB generations, fully live: the ratio trigger never fires,
        // the tier trigger merges them all (depth bound).
        let policy = CompactionPolicy { min_dead_ratio: 0.9, tier_merge_count: 4, max_batch: 8 };
        let gens = vec![
            gen("ckpt-1", 1100, 1100, false),
            gen("ckpt-2", 1200, 1200, false),
            gen("ckpt-3", 1300, 1300, false),
            gen("ckpt-4", 1400, 1400, false),
            gen("ckpt-5", 1 << 20, 1 << 20, false), // different tier, alone
            gen("ckpt-6", 500, 0, true),
        ];
        let v = plan_victims(&policy, &gens);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(!v.contains(&"ckpt-5".to_string()));
    }

    #[test]
    fn max_batch_caps_a_pass_dirtiest_first() {
        let policy = CompactionPolicy { min_dead_ratio: 0.1, tier_merge_count: 99, max_batch: 2 };
        let gens = vec![
            gen("ckpt-1", 1000, 800, false), // 200 dead
            gen("ckpt-2", 1000, 100, false), // 900 dead
            gen("ckpt-3", 1000, 500, false), // 500 dead
        ];
        assert_eq!(plan_victims(&policy, &gens), vec!["ckpt-2".to_string(), "ckpt-3".into()]);
    }

    #[test]
    fn tier_merge_count_clamps_to_two() {
        // A pathological count of 1 would rewrite every generation on every
        // pass forever; the clamp keeps singleton tiers alone.
        let policy = CompactionPolicy { min_dead_ratio: 2.0, tier_merge_count: 1, max_batch: 8 };
        let gens = vec![gen("ckpt-1", 1000, 1000, false), gen("ckpt-2", 1 << 20, 1 << 20, false)];
        assert!(plan_victims(&policy, &gens).is_empty());
    }

    #[test]
    fn gc_seq_is_monotonic_past_existing_names() {
        let mut root = std::env::temp_dir();
        root.push(format!("mainline-gcseq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("ckpt-00000000000000000007-gc3.tmp")).unwrap();
        std::fs::create_dir_all(root.join("ckpt-00000000000000000009-gc11")).unwrap();
        std::fs::create_dir_all(root.join("ckpt-00000000000000000009")).unwrap();
        assert_eq!(next_gc_seq(&root).unwrap(), 12);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        assert_eq!(next_gc_seq(&root).unwrap(), 1, "fresh roots start at 1");
        let _ = std::fs::remove_dir_all(&root);
    }
}
