//! Exhaustive interleaving check of the compactor's retarget protocol
//! against a concurrent fault-in (ISSUE 8) — the chain-compaction companion
//! to `residency_interleavings.rs` in the storage crate.
//!
//! A **compactor** (mirroring the publish tail of `compact_chain`: rewrite
//! the surviving frame into a fresh generation, retarget the block's
//! recorded [`ColdLocation`], prune the superseded generation) races a
//! **faulter** (mirroring `fault_in_block`: claim `Evicted → Faulting`,
//! read the recorded location, read the frame, on failure re-read the
//! location and retry if it moved). Each observable operation is one step;
//! the checker explores every reachable interleaving by depth-first search
//! over configurations, executing the real [`Block`] location primitives
//! (`cold_location` / `retarget_cold_location`) and the real
//! [`BlockStateMachine`] fault transitions serially in the scheduled order.
//! The chain itself is modeled as two existence bits — the faulter's frame
//! read succeeds iff the generation its captured location names still
//! exists — because readability of a generation directory is the only thing
//! the real filesystem adds to this race.
//!
//! The protocol's load-bearing rule is the publish order: **retarget
//! strictly before prune**. With it, every interleaving ends with the
//! fault-in succeeding (a reader that loses the race observes a *moved*
//! location and retries against the fresh copy). A second battery runs the
//! deliberately misordered compactor (prune before retarget) and shows the
//! stranded schedule this rule exists to exclude.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::layout::BlockLayout;
use mainline_storage::raw_block::{word_state, word_version, Block, VERSION_SHIFT};
use mainline_storage::ColdLocation;
use std::collections::HashSet;
use std::sync::Arc;

/// The frozen content's identity — shared by the live block, the old frame,
/// and the rewritten frame (compaction preserves stamps verbatim).
const STAMP: u64 = 7001;

/// Which generation the block's recorded location names.
const LOC_OLD: u8 = 0;
const LOC_NEW: u8 = 1;

/// Faulter program counter (the steps of `fault_in_block`).
const F_CLAIM: u8 = 0; // begin_fault: CAS Evicted → Faulting
const F_READLOC: u8 = 1; // capture block.cold_location()
const F_READ: u8 = 2; // read the frame at the captured location
const F_RECHECK: u8 = 3; // read failed: did the location move?
const F_FINISH: u8 = 4; // finish_fault: publish Frozen
const F_DONE: u8 = 5;

const F_PENDING: u8 = 0;
const F_FAULTED: u8 = 1; // content restored, Frozen published
const F_GAVE_UP: u8 = 2; // read failed with an unmoved location: abort_fault

/// Compactor program counter (the publish tail of `compact_chain`). The
/// earlier steps (victim selection, tmp-dir write, fsync, rename, manifest
/// republish) are invisible to the faulter — the first thing it can observe
/// is the rewritten generation becoming readable.
const C_REWRITE: u8 = 0; // new generation published and readable
const C_SWAP_A: u8 = 1; // correct: retarget — misordered: prune
const C_SWAP_B: u8 = 2; // correct: prune — misordered: retarget
const C_DONE: u8 = 3;

/// One explored configuration: the real block's shared words plus the
/// modeled chain and both actors' program counters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Config {
    state: u32,
    version: u32,
    /// Which generation the block's `ColdLocation` currently names.
    loc: u8,
    /// The superseded generation still exists on disk.
    old_exists: bool,
    /// The rewritten generation exists on disk.
    new_exists: bool,
    fpc: u8,
    foutcome: u8,
    /// The location the faulter's current read attempt is aimed at.
    floc: u8,
    /// The faulter observed a moved location and retried at least once.
    fretried: bool,
    cpc: u8,
    /// Compactor order: false = retarget-then-prune (the real protocol),
    /// true = prune-then-retarget (the bug the protocol excludes).
    misordered: bool,
}

struct Model {
    block: Arc<Block>,
}

fn gen_location(which: u8) -> ColdLocation {
    ColdLocation {
        dir: match which {
            LOC_OLD => "ckpt-00000000000000000001".into(),
            _ => "ckpt-00000000000000000001-gc1".into(),
        },
        file: "cold-1.mlc".into(),
        index: 0,
        bytes: 42,
        stamp: STAMP,
    }
}

impl Model {
    fn new() -> Model {
        let layout = Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![ColumnDef::new("a", TypeId::BigInt)]))
                .unwrap(),
        );
        let block = Block::new(layout);
        block.adopt_freeze_stamp(STAMP);
        Model { block }
    }

    /// Load `cfg`'s shared words onto the real block.
    fn restore(&self, cfg: Config) {
        self.block.header().set_state_word((cfg.version << VERSION_SHIFT) | cfg.state);
        self.block.set_cold_location(gen_location(cfg.loc));
    }

    /// Read the shared words back into a configuration.
    fn capture(&self, cfg: Config) -> Config {
        let w = self.block.header().state_word();
        let loc = self.block.cold_location().expect("model block always has a location");
        Config {
            state: word_state(w),
            version: word_version(w),
            loc: if loc == gen_location(LOC_OLD) { LOC_OLD } else { LOC_NEW },
            ..cfg
        }
    }

    /// Execute one faulter step from `cfg` (mirrors `fault_in_block`).
    fn faulter_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let h = self.block.header();
        let mut next = cfg;
        match cfg.fpc {
            F_CLAIM => {
                // The model has no competing faulter or thawing writer:
                // the exclusive claim always succeeds.
                assert!(BlockStateMachine::begin_fault(h), "fault claim lost: {cfg:?}");
                next.fpc = F_READLOC;
            }
            F_READLOC => {
                let loc = self.block.cold_location().expect("evicted block has a location");
                // The stamp gate of the real loop: compaction preserves the
                // content stamp verbatim, so it passes whichever copy the
                // location names.
                assert_eq!(loc.stamp, self.block.freeze_stamp(), "stamp drifted: {cfg:?}");
                next.floc = if loc == gen_location(LOC_OLD) { LOC_OLD } else { LOC_NEW };
                next.fpc = F_READ;
            }
            F_READ => {
                let readable = if cfg.floc == LOC_OLD { cfg.old_exists } else { cfg.new_exists };
                next.fpc = if readable { F_FINISH } else { F_RECHECK };
            }
            F_RECHECK => {
                let fresh = self.block.cold_location().expect("location never cleared");
                let fresh = if fresh == gen_location(LOC_OLD) { LOC_OLD } else { LOC_NEW };
                if fresh != cfg.floc {
                    // Moved under us — compaction retargeted it; retry there.
                    next.floc = fresh;
                    next.fretried = true;
                    next.fpc = F_READ;
                } else {
                    // Nothing moved — the failure is genuine and propagates.
                    BlockStateMachine::abort_fault(h);
                    next.foutcome = F_GAVE_UP;
                    next.fpc = F_DONE;
                }
            }
            F_FINISH => {
                BlockStateMachine::finish_fault(h);
                next.foutcome = F_FAULTED;
                next.fpc = F_DONE;
            }
            _ => unreachable!("stepping a finished faulter"),
        }
        self.capture(next)
    }

    /// Execute one compactor step from `cfg` (mirrors `compact_chain`'s
    /// publish tail, in the configured order).
    fn compactor_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let mut next = cfg;
        let retarget = |next: &mut Config| {
            // The real stamp-guarded swap; the guard passes because the
            // block's content identity is unchanged (it is merely evicted).
            assert!(
                self.block.retarget_cold_location(STAMP, gen_location(LOC_NEW)),
                "retarget refused with a matching stamp: {cfg:?}"
            );
            let _ = next;
        };
        match cfg.cpc {
            C_REWRITE => {
                next.new_exists = true;
                next.cpc = C_SWAP_A;
            }
            C_SWAP_A => {
                if cfg.misordered {
                    next.old_exists = false;
                } else {
                    retarget(&mut next);
                }
                next.cpc = C_SWAP_B;
            }
            C_SWAP_B => {
                if cfg.misordered {
                    retarget(&mut next);
                } else {
                    next.old_exists = false;
                }
                next.cpc = C_DONE;
            }
            _ => unreachable!("stepping a finished compactor"),
        }
        self.capture(next)
    }
}

/// Explore every interleaving from `initial`; returns (every reachable
/// configuration, the terminal configurations).
fn explore(initial: Config) -> (HashSet<Config>, HashSet<Config>) {
    let model = Model::new();
    let mut visited: HashSet<Config> = HashSet::new();
    let mut terminals: HashSet<Config> = HashSet::new();
    let mut stack = vec![initial];
    while let Some(cfg) = stack.pop() {
        if !visited.insert(cfg) {
            continue;
        }
        if cfg.fpc == F_DONE && cfg.cpc == C_DONE {
            terminals.insert(cfg);
            continue;
        }
        if cfg.fpc != F_DONE {
            stack.push(model.faulter_step(cfg));
        }
        if cfg.cpc != C_DONE {
            stack.push(model.compactor_step(cfg));
        }
    }
    assert!(!terminals.is_empty(), "model never terminated");
    (visited, terminals)
}

/// An evicted, checkpoint-captured block; the compactor is about to publish
/// a rewrite of the generation holding its frame.
fn evicted_initial() -> Config {
    Config {
        state: BlockState::Evicted as u32,
        version: 0,
        loc: LOC_OLD,
        old_exists: true,
        new_exists: false,
        fpc: F_CLAIM,
        foutcome: F_PENDING,
        floc: LOC_OLD,
        fretried: false,
        cpc: C_REWRITE,
        misordered: false,
    }
}

#[test]
fn retarget_before_prune_never_strands_a_fault_in() {
    let (visited, terminals) = explore(evicted_initial());

    // The liveness invariant the publish order buys: at every reachable
    // configuration the block's recorded location names a generation that
    // still exists — there is no window in which a fresh location read can
    // aim at deleted bytes.
    for cfg in &visited {
        let readable = if cfg.loc == LOC_OLD { cfg.old_exists } else { cfg.new_exists };
        assert!(readable, "recorded location names a pruned generation: {cfg:?}");
    }

    for t in &terminals {
        // Every schedule restores the block — no interleaving of the
        // compactor can make a fault-in fail.
        assert_eq!(t.foutcome, F_FAULTED, "fault-in stranded by compaction: {t:?}");
        assert_eq!(t.state, BlockState::Frozen as u32, "terminal not Frozen: {t:?}");
        // The compactor always completes: location on the rewrite, old
        // generation reclaimed.
        assert_eq!(t.loc, LOC_NEW, "retarget lost: {t:?}");
        assert!(t.new_exists && !t.old_exists, "prune incomplete: {t:?}");
    }

    // Both races genuinely happened: some schedule read the old copy before
    // the prune, and some schedule lost it and retried via the retarget.
    assert!(
        terminals.iter().any(|t| !t.fretried),
        "no schedule read the old generation before the prune"
    );
    assert!(terminals.iter().any(|t| t.fretried), "no schedule exercised the moved-location retry");
}

#[test]
fn prune_before_retarget_strands_the_fault_in() {
    // The misordered compactor — prune first, retarget after — is exactly
    // the bug the publish order exists to exclude: a faulter that captured
    // the old location before the prune, and rechecks it before the
    // retarget, sees an *unmoved* location pointing at deleted bytes and
    // must propagate the failure.
    let (visited, terminals) = explore(Config { misordered: true, ..evicted_initial() });

    assert!(
        visited.iter().any(|cfg| cfg.loc == LOC_OLD && !cfg.old_exists),
        "the misordered compactor never exposed a dangling location"
    );
    let stranded: Vec<_> = terminals.iter().filter(|t| t.foutcome == F_GAVE_UP).collect();
    assert!(
        !stranded.is_empty(),
        "the stranded schedule disappeared — is the order still load-bearing?"
    );
    for t in stranded {
        // Even stranded, the claim is reverted cleanly: the block ends
        // Evicted (faultable again), never Faulting or a corrupt resident.
        assert_eq!(t.state, BlockState::Evicted as u32, "strand left a stuck state: {t:?}");
    }
    // Lucky schedules (retarget lands before the recheck) still succeed.
    assert!(terminals.iter().any(|t| t.foutcome == F_FAULTED), "even the lucky schedules failed");
}

#[test]
fn stale_stamp_blocks_the_retarget() {
    // A block that was thawed and refrozen since the compactor planned
    // carries a newer stamp; the compactor's swap must refuse (the next
    // checkpoint records the fresh location — this one is already stale).
    let model = Model::new();
    let parked = ColdLocation { stamp: STAMP, ..gen_location(LOC_OLD) };
    model.block.set_cold_location(parked.clone());
    assert!(
        !model.block.retarget_cold_location(
            STAMP + 1,
            ColdLocation { stamp: STAMP + 1, ..gen_location(LOC_NEW) }
        ),
        "retargeted a location whose stamp the compactor never rewrote"
    );
    assert_eq!(model.block.cold_location(), Some(parked.clone()));
    // Stamp 0 (never frozen) is never retargetable.
    model.block.set_cold_location(ColdLocation { stamp: 0, ..gen_location(LOC_OLD) });
    assert!(!model
        .block
        .retarget_cold_location(0, ColdLocation { stamp: 0, ..gen_location(LOC_NEW) }));
    // And the matching-stamp swap goes through.
    model.block.set_cold_location(parked);
    assert!(model.block.retarget_cold_location(STAMP, gen_location(LOC_NEW)));
    assert_eq!(model.block.cold_location(), Some(gen_location(LOC_NEW)));
}
