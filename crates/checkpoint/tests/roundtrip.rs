//! Checkpoint write → load roundtrips at the crate level (no `mainline-db`):
//! frozen blocks survive as raw Arrow, hot rows survive through the delta,
//! and the restored table is row-for-row identical.

use mainline_checkpoint::{
    load_into, read_manifest, write_checkpoint, SegmentKind, TableCheckpointSpec,
};
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_common::Timestamp;
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::ProjectedRow;
use mainline_txn::{DataTable, TransactionManager};
use std::collections::HashMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("name", TypeId::Varchar),
        ColumnDef::new("score", TypeId::Double),
    ])
}

fn row(i: i64) -> ProjectedRow {
    ProjectedRow::from_values(
        &[TypeId::BigInt, TypeId::Varchar, TypeId::Double],
        &[
            Value::BigInt(i),
            if i % 5 == 0 { Value::Null } else { Value::string(&format!("row-payload-{i:07}")) },
            Value::Double(i as f64 / 3.0),
        ],
    )
}

fn freeze_block(m: &Arc<TransactionManager>, t: &Arc<DataTable>, idx: usize, dictionary: bool) {
    let mut gc = mainline_gc::GarbageCollector::new(Arc::clone(m));
    gc.run();
    gc.run();
    let block = t.blocks()[idx].clone();
    let h = block.header();
    assert!(BlockStateMachine::begin_cooling(h));
    assert!(BlockStateMachine::begin_freezing(h));
    unsafe {
        let d = if dictionary {
            mainline_transform::dictionary::compress_block(&block)
        } else {
            mainline_transform::gather::gather_block(&block)
        };
        block.stamp_freeze();
        BlockStateMachine::finish_freezing(h);
        d.free();
    }
}

fn freeze_first_block(m: &Arc<TransactionManager>, t: &Arc<DataTable>, dictionary: bool) {
    freeze_block(m, t, 0, dictionary);
}

fn relation(m: &TransactionManager, t: &Arc<DataTable>) -> Vec<Vec<Value>> {
    let txn = m.begin();
    let mut rows = Vec::new();
    let cols = t.all_cols();
    t.scan(&txn, &cols, |_, r| {
        rows.push(t.row_to_values(r));
        true
    });
    m.commit(&txn);
    rows.sort_by_key(|r| r[0].as_i64().unwrap());
    rows
}

fn tmp_root(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mainline-ckpt-rt-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn run_roundtrip(dictionary: bool, name: &str) {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let per_block = t.layout().num_slots() as i64;
    let txn = m.begin();
    for i in 0..per_block + 321 {
        t.insert(&txn, &row(i));
    }
    m.commit(&txn);
    // Delete a few from each region so gaps are represented on both paths.
    let txn = m.begin();
    let mut dropped = Vec::new();
    let cols = t.all_cols();
    t.scan(&txn, &cols, |slot, r| {
        let id = t.row_to_values(r)[0].as_i64().unwrap();
        if id % 97 == 3 {
            dropped.push(slot);
        }
        true
    });
    for s in dropped {
        t.delete(&txn, s).unwrap();
    }
    m.commit(&txn);
    freeze_first_block(&m, &t, dictionary);
    let expected = relation(&m, &t);

    let root = tmp_root(name);
    let spec = TableCheckpointSpec {
        name: "t".into(),
        transform: false,
        indexes: vec![("pk".into(), vec![0])],
        table: Arc::clone(&t),
    };
    let stats = write_checkpoint(&m, std::slice::from_ref(&spec), &root).unwrap();
    assert_eq!(stats.frozen_blocks, 1, "first block was frozen: {stats:?}");
    assert!(stats.delta_rows > 0, "second (hot) block rows go through the delta");
    assert!(stats.cold_bytes > 0);

    // Load into a fresh world.
    let (dir, manifest) = read_manifest(&root).unwrap();
    assert_eq!(manifest.checkpoint_ts, stats.checkpoint_ts);
    assert_eq!(manifest.tables.len(), 1);
    assert_eq!(manifest.tables[0].indexes[0].key_cols, vec![0]);
    assert_eq!(manifest.tables[0].schema(), schema());
    assert!(manifest.segments.iter().any(|s| s.kind == SegmentKind::Cold));
    assert!(manifest.segments.iter().any(|s| s.kind == SegmentKind::Delta));

    let m2 = Arc::new(TransactionManager::new());
    let t2 = DataTable::new(1, schema()).unwrap();
    let mut tables = HashMap::new();
    tables.insert(1u32, Arc::clone(&t2));
    let mut slot_map = HashMap::new();
    let load = load_into(&root, &dir, &manifest, &m2, &tables, &mut slot_map).unwrap();
    assert_eq!(load.frozen_blocks, 1);
    assert_eq!(load.cold_rows + load.delta_rows, expected.len() as u64);
    // Every restored row is reachable through the slot map.
    assert_eq!(slot_map.len(), expected.len());

    // The restored block is genuinely frozen and the relation matches.
    assert!(t2.blocks().iter().any(|b| BlockStateMachine::state(b.header()) == BlockState::Frozen));
    assert_eq!(relation(&m2, &t2), expected);

    // Zero-transformation proof at the crate level: the restored frozen
    // block re-exports the same IPC bytes the checkpoint stored.
    let cold_seg = manifest.segments.iter().find(|s| s.kind == SegmentKind::Cold).unwrap();
    let frames = mainline_checkpoint::restore::read_cold_frames(&dir.join(&cold_seg.file)).unwrap();
    assert_eq!(frames.len(), 1);
    let restored_frozen = t2
        .blocks()
        .into_iter()
        .find(|b| BlockStateMachine::state(b.header()) == BlockState::Frozen)
        .unwrap();
    assert!(BlockStateMachine::reader_acquire(restored_frozen.header()));
    let reexport = mainline_arrowlite::ipc::encode_batch(&unsafe {
        mainline_export::materialize::frozen_batch(&t2, &restored_frozen)
    });
    BlockStateMachine::reader_release(restored_frozen.header());
    assert_eq!(reexport, frames[0].payload, "restored block must re-export identical Arrow bytes");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn gather_roundtrip_is_exact() {
    run_roundtrip(false, "gather");
}

#[test]
fn dictionary_roundtrip_is_exact() {
    run_roundtrip(true, "dictionary");
}

#[test]
fn successive_checkpoints_prune_and_current_tracks_latest() {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let txn = m.begin();
    for i in 0..100 {
        t.insert(&txn, &row(i));
    }
    m.commit(&txn);
    let root = tmp_root("successive");
    let spec = |t: &Arc<DataTable>| TableCheckpointSpec {
        name: "t".into(),
        transform: false,
        indexes: vec![],
        table: Arc::clone(t),
    };
    let first = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    let txn = m.begin();
    for i in 100..150 {
        t.insert(&txn, &row(i));
    }
    m.commit(&txn);
    let second = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert!(second.checkpoint_ts > first.checkpoint_ts);

    let (dir, manifest) = read_manifest(&root).unwrap();
    assert_eq!(manifest.checkpoint_ts, second.checkpoint_ts);
    // The superseded checkpoint directory is pruned.
    let dirs: Vec<_> = std::fs::read_dir(&root)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
        .collect();
    assert_eq!(dirs.len(), 1);
    assert_eq!(dirs[0].path(), dir);

    // And the latest image holds all 150 rows.
    let m2 = Arc::new(TransactionManager::new());
    let t2 = DataTable::new(1, schema()).unwrap();
    let mut tables = HashMap::new();
    tables.insert(1u32, Arc::clone(&t2));
    let mut slot_map = HashMap::new();
    let load = load_into(&root, &dir, &manifest, &m2, &tables, &mut slot_map).unwrap();
    assert_eq!(load.cold_rows + load.delta_rows, 150);
    let check = m2.begin();
    assert_eq!(t2.count_visible(&check), 150);
    m2.commit(&check);
    let _ = std::fs::remove_dir_all(&root);
}

/// The incremental chain at the crate level: a second checkpoint after a
/// small delta *references* the first checkpoint's frozen frame instead of
/// rewriting it, pruning keeps the referenced generation alive, a restore
/// resolves the chain, and once the block is recaptured (thaw → refreeze →
/// new stamp) the fully superseded generations are deleted.
#[test]
fn incremental_chain_reuses_frames_prunes_superseded_and_restores() {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let per_block = t.layout().num_slots() as i64;
    let txn = m.begin();
    let mut slots = Vec::new();
    for i in 0..per_block + 200 {
        slots.push(t.insert(&txn, &row(i)));
    }
    m.commit(&txn);
    freeze_first_block(&m, &t, false);

    let root = tmp_root("incremental");
    let spec = |t: &Arc<DataTable>| TableCheckpointSpec {
        name: "t".into(),
        transform: false,
        indexes: vec![],
        table: Arc::clone(t),
    };
    let first = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!((first.frozen_blocks, first.frozen_blocks_reused), (1, 0));
    assert!(first.cold_bytes > 0);
    let first_dir = first.dir.file_name().unwrap().to_string_lossy().into_owned();

    // Small delta: a few hot inserts; the frozen block is untouched.
    let txn = m.begin();
    for i in 0..37 {
        t.insert(&txn, &row(per_block + 200 + i));
    }
    m.commit(&txn);

    let second = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!(
        (second.frozen_blocks, second.frozen_blocks_reused),
        (0, 1),
        "the unchanged frozen block must be referenced, not rewritten: {second:?}"
    );
    assert_eq!(second.cold_bytes, 0, "no new cold bytes for an unchanged cold set");
    assert_eq!(second.cold_bytes_reused, first.cold_bytes);

    // The manifest's frame points into generation 1, and pruning kept that
    // directory alive because the chain references it.
    let (dir2, manifest2) = read_manifest(&root).unwrap();
    assert_eq!(manifest2.checkpoint_ts, second.checkpoint_ts);
    assert_eq!(manifest2.frames.len(), 1);
    assert_eq!(manifest2.frames[0].dir, first_dir);
    assert!(first.dir.is_dir(), "referenced checkpoint dir must survive pruning");
    assert!(dir2.is_dir());

    // The chain restores row-for-row.
    let expected = relation(&m, &t);
    let m2 = Arc::new(TransactionManager::new());
    let t2 = DataTable::new(1, schema()).unwrap();
    let mut tables = HashMap::new();
    tables.insert(1u32, Arc::clone(&t2));
    let mut slot_map = HashMap::new();
    let load = load_into(&root, &dir2, &manifest2, &m2, &tables, &mut slot_map).unwrap();
    assert_eq!(load.frozen_blocks, 1);
    assert_eq!(relation(&m2, &t2), expected);

    // Thaw the frozen block (a writer updates a row in place), refreeze —
    // the stamp changes — and checkpoint again: the frame is recaptured and
    // the now-unreferenced generations 1 and 2 are both pruned.
    let txn = m.begin();
    let mut delta = ProjectedRow::new();
    delta.push_fixed(3, &Value::Double(99.5));
    t.update(&txn, slots[0], &delta).unwrap();
    m.commit(&txn);
    assert_eq!(
        BlockStateMachine::state(t.blocks()[0].header()),
        BlockState::Hot,
        "the update must have thawed the block"
    );
    freeze_first_block(&m, &t, false);

    let third = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!(
        (third.frozen_blocks, third.frozen_blocks_reused),
        (1, 0),
        "a refrozen block has a new stamp and must be recaptured: {third:?}"
    );
    let dirs: Vec<String> = std::fs::read_dir(&root)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-"))
        .collect();
    assert_eq!(
        dirs,
        vec![third.dir.file_name().unwrap().to_string_lossy().into_owned()],
        "fully superseded generations must be pruned"
    );

    // And the recaptured image reflects the update.
    let expected = relation(&m, &t);
    let (dir3, manifest3) = read_manifest(&root).unwrap();
    let m3 = Arc::new(TransactionManager::new());
    let t3 = DataTable::new(1, schema()).unwrap();
    let mut tables = HashMap::new();
    tables.insert(1u32, Arc::clone(&t3));
    let mut slot_map = HashMap::new();
    load_into(&root, &dir3, &manifest3, &m3, &tables, &mut slot_map).unwrap();
    assert_eq!(relation(&m3, &t3), expected);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_of_empty_table_restores_empty() {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let root = tmp_root("empty");
    let spec = TableCheckpointSpec {
        name: "t".into(),
        transform: true,
        indexes: vec![],
        table: Arc::clone(&t),
    };
    let stats = write_checkpoint(&m, &[spec], &root).unwrap();
    assert_eq!((stats.frozen_blocks, stats.delta_rows), (0, 0));
    assert!(stats.checkpoint_ts > Timestamp::ZERO);
    let (dir, manifest) = read_manifest(&root).unwrap();
    assert!(manifest.segments.is_empty(), "empty tables write no segment files");
    assert!(manifest.tables[0].transform);

    let m2 = Arc::new(TransactionManager::new());
    let t2 = DataTable::new(1, schema()).unwrap();
    let mut tables = HashMap::new();
    tables.insert(1u32, Arc::clone(&t2));
    let mut slot_map = HashMap::new();
    let load = load_into(&root, &dir, &manifest, &m2, &tables, &mut slot_map).unwrap();
    assert_eq!(load, mainline_checkpoint::LoadStats::default());
    let check = m2.begin();
    assert_eq!(t2.count_visible(&check), 0);
    m2.commit(&check);
    let _ = std::fs::remove_dir_all(&root);
}

/// The demand-paging roundtrip at the crate level: once a checkpoint has
/// recorded a frozen block's chain location the block can be evicted in
/// place, a later checkpoint *references* the evicted frame instead of
/// touching the released body, pruning keeps the generation that frame
/// lives in, and [`fault_in_block`] rebuilds the identical block — same
/// relation, same re-exported Arrow bytes — at its original address.
#[test]
fn evicted_blocks_fault_back_and_survive_pruning() {
    use mainline_checkpoint::fault_in_block;
    use mainline_storage::evict_block;

    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let per_block = t.layout().num_slots() as i64;
    let txn = m.begin();
    for i in 0..per_block + 200 {
        t.insert(&txn, &row(i));
    }
    m.commit(&txn);
    freeze_first_block(&m, &t, false);

    let root = tmp_root("evict");
    let spec = |t: &Arc<DataTable>| TableCheckpointSpec {
        name: "t".into(),
        transform: false,
        indexes: vec![],
        table: Arc::clone(t),
    };
    let first = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!((first.frozen_blocks, first.frozen_blocks_reused), (1, 0));

    // More hot rows after the checkpoint; the frozen block is untouched.
    let txn = m.begin();
    for i in 0..37 {
        t.insert(&txn, &row(per_block + 200 + i));
    }
    m.commit(&txn);
    let expected = relation(&m, &t);

    // The publish recorded the block's chain location — evict the body.
    let block = t.blocks()[0].clone();
    let loc = block.cold_location().expect("checkpoint must record a cold location");
    assert_eq!(loc.stamp, block.freeze_stamp());
    let buffers = evict_block(&block).expect("a checkpointed quiescent frozen block is evictable");
    assert_eq!(BlockStateMachine::state(block.header()), BlockState::Evicted);
    drop(buffers); // no concurrent readers in this test: safe to free now

    // A checkpoint over the evicted block must reference its frame, not
    // read the released body — and pruning must keep the referenced
    // generation on disk, or the fault path below would dangle.
    let second = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!(
        (second.frozen_blocks, second.frozen_blocks_reused),
        (0, 1),
        "the evicted block's frame must be referenced: {second:?}"
    );
    assert!(first.dir.is_dir(), "pruning deleted a generation an evicted block points into");

    // Fault the content back in from the chain, in place.
    assert!(fault_in_block(&root, &t, &block).unwrap());
    assert_eq!(BlockStateMachine::state(block.header()), BlockState::Frozen);
    assert_eq!(relation(&m, &t), expected, "faulted block must restore the exact relation");

    // Zero-transformation survives the round trip: the faulted block
    // re-exports byte-identical Arrow to the frame it was rebuilt from.
    let frames =
        mainline_checkpoint::restore::read_cold_frames(&root.join(&loc.dir).join(&loc.file))
            .unwrap();
    assert!(BlockStateMachine::reader_acquire(block.header()));
    let reexport = mainline_arrowlite::ipc::encode_batch(&unsafe {
        mainline_export::materialize::frozen_batch(&t, &block)
    });
    BlockStateMachine::reader_release(block.header());
    assert_eq!(reexport, frames[loc.index as usize].payload);

    // Faulting an already-resident block is a polite no-op.
    assert!(!fault_in_block(&root, &t, &block).unwrap());
    let _ = std::fs::remove_dir_all(&root);
}
