//! Chain compaction at the crate level (no `mainline-db`): a mostly-dead
//! generation is rewritten into a fresh one, the manifest is republished
//! with retargeted frame references, evicted blocks' recorded locations
//! follow the move, the superseded generation is pruned — and everything
//! still restores row-for-row with byte-identical Arrow.

use mainline_checkpoint::{
    chain_generations, compact_chain, fault_in_block, load_into, read_manifest, write_checkpoint,
    CompactionPolicy, TableCheckpointSpec,
};
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::{evict_block, ProjectedRow};
use mainline_txn::{DataTable, TransactionManager};
use std::collections::HashMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", TypeId::BigInt),
        ColumnDef::nullable("name", TypeId::Varchar),
        ColumnDef::new("score", TypeId::Double),
    ])
}

fn row(i: i64) -> ProjectedRow {
    ProjectedRow::from_values(
        &[TypeId::BigInt, TypeId::Varchar, TypeId::Double],
        &[
            Value::BigInt(i),
            if i % 5 == 0 { Value::Null } else { Value::string(&format!("row-payload-{i:07}")) },
            Value::Double(i as f64 / 3.0),
        ],
    )
}

fn freeze_block(m: &Arc<TransactionManager>, t: &Arc<DataTable>, idx: usize) {
    let mut gc = mainline_gc::GarbageCollector::new(Arc::clone(m));
    gc.run();
    gc.run();
    let block = t.blocks()[idx].clone();
    let h = block.header();
    assert!(BlockStateMachine::begin_cooling(h));
    assert!(BlockStateMachine::begin_freezing(h));
    unsafe {
        let d = mainline_transform::gather::gather_block(&block);
        block.stamp_freeze();
        BlockStateMachine::finish_freezing(h);
        d.free();
    }
}

fn relation(m: &TransactionManager, t: &Arc<DataTable>) -> Vec<Vec<Value>> {
    let txn = m.begin();
    let mut rows = Vec::new();
    let cols = t.all_cols();
    t.scan(&txn, &cols, |_, r| {
        rows.push(t.row_to_values(r));
        true
    });
    m.commit(&txn);
    rows.sort_by_key(|r| r[0].as_i64().unwrap());
    rows
}

fn tmp_root(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mainline-compact-rt-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn spec(t: &Arc<DataTable>) -> TableCheckpointSpec {
    TableCheckpointSpec {
        name: "t".into(),
        transform: false,
        indexes: vec![],
        table: Arc::clone(t),
    }
}

fn ckpt_dirs(root: &std::path::Path) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(root)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-"))
        .collect();
    v.sort();
    v
}

/// The full tentpole path: build a chain whose first generation is mostly
/// dead (one superseded frame, one live frame an *evicted* block points at),
/// compact, and prove rewrite + republish + retarget + prune + fault-in.
#[test]
fn compaction_rewrites_retargets_prunes_and_faults_back() {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let per_block = t.layout().num_slots() as i64;
    let txn = m.begin();
    let mut slots = Vec::new();
    for i in 0..2 * per_block + 150 {
        slots.push(t.insert(&txn, &row(i)));
    }
    m.commit(&txn);
    freeze_block(&m, &t, 0);
    freeze_block(&m, &t, 1);

    let root = tmp_root("tentpole");
    // Generation A: both frozen frames + the hot delta.
    let first = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!(first.frozen_blocks, 2);
    let gen_a = first.dir.file_name().unwrap().to_string_lossy().into_owned();

    // Thaw block 0 (in-place update), refreeze — new stamp — and checkpoint:
    // generation B captures block 0's new frame and *references* block 1's
    // frame in A. A is now mostly dead (superseded frame, old MANIFEST, old
    // delta) but must survive pruning for that one live frame.
    let txn = m.begin();
    let mut delta = ProjectedRow::new();
    delta.push_fixed(3, &Value::Double(424.2));
    t.update(&txn, slots[0], &delta).unwrap();
    m.commit(&txn);
    freeze_block(&m, &t, 0);
    let second = write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    assert_eq!((second.frozen_blocks, second.frozen_blocks_reused), (1, 1));
    assert!(root.join(&gen_a).is_dir());

    // Evict block 1: its recorded location points into generation A. (The
    // expected relation is captured first — this crate-level world has no
    // fault handler, so a scan must not meet an evicted block.)
    let expected = relation(&m, &t);
    let block1 = t.blocks()[1].clone();
    let loc = block1.cold_location().expect("checkpoint must record a cold location");
    assert_eq!(loc.dir, gen_a);
    let stamp = block1.freeze_stamp();
    drop(evict_block(&block1).expect("checkpointed quiescent frozen block is evictable"));
    assert_eq!(BlockStateMachine::state(block1.header()), BlockState::Evicted);
    let gens = chain_generations(&root).unwrap();
    assert_eq!(gens.len(), 2);
    let a = gens.iter().find(|g| g.dir == gen_a).unwrap();
    assert!(!a.current);
    assert_eq!(a.live_frames, 1, "only block 1's frame is still live in A");
    assert!(a.dead_ratio() > 0.3, "A must be mostly dead: {a:?}");

    // Compact. A is the only candidate and crosses the ratio trigger.
    let policy = CompactionPolicy { min_dead_ratio: 0.1, tier_merge_count: 99, max_batch: 8 };
    let tables = vec![Arc::clone(&t)];
    let stats = compact_chain(&root, &policy, &tables).unwrap();
    assert_eq!(stats.generations_compacted, 1, "{stats:?}");
    assert_eq!(stats.frames_rewritten, 1);
    assert!(stats.bytes_rewritten > 0);
    assert!(stats.bytes_reclaimed > 0, "dropping A's dead weight must reclaim bytes");
    let gc_dir = stats.dir.clone().unwrap();
    let gc_name = gc_dir.file_name().unwrap().to_string_lossy().into_owned();

    // Prune invariant: A is gone, the fresh generation and CURRENT remain,
    // and the republished manifest references only what exists.
    assert!(!root.join(&gen_a).exists(), "superseded generation must be pruned");
    assert!(gc_dir.is_dir());
    let (cur_dir, manifest) = read_manifest(&root).unwrap();
    assert_eq!(manifest.checkpoint_ts, second.checkpoint_ts, "compaction must not move CURRENT");
    assert!(manifest.frames.iter().all(|f| f.dir != gen_a));
    assert_eq!(manifest.frames.iter().filter(|f| f.dir == gc_name).count(), 1);
    for f in &manifest.frames {
        assert!(root.join(&f.dir).join(&f.file).is_file(), "dangling frame ref {f:?}");
    }
    assert_eq!(ckpt_dirs(&root).len(), 2);

    // Retarget invariant: the evicted block's location followed the move
    // with its stamp intact, and fault-in rebuilds the identical block.
    let new_loc = block1.cold_location().unwrap();
    assert_eq!(new_loc.dir, gc_name);
    assert_eq!(new_loc.stamp, stamp, "retarget must preserve content identity");
    assert!(fault_in_block(&root, &t, &block1).unwrap());
    assert_eq!(BlockStateMachine::state(block1.header()), BlockState::Frozen);
    assert_eq!(relation(&m, &t), expected);

    // Zero-transformation survives compaction: the faulted block re-exports
    // bytes identical to the *rewritten* frame.
    let frames =
        mainline_checkpoint::read_cold_frames(&root.join(&new_loc.dir).join(&new_loc.file))
            .unwrap();
    assert!(BlockStateMachine::reader_acquire(block1.header()));
    let reexport = mainline_arrowlite::ipc::encode_batch(&unsafe {
        mainline_export::materialize::frozen_batch(&t, &block1)
    });
    BlockStateMachine::reader_release(block1.header());
    assert_eq!(reexport, frames[new_loc.index as usize].payload);

    // And a cold restore of the compacted chain is row-for-row identical.
    let m2 = Arc::new(TransactionManager::new());
    let t2 = DataTable::new(1, schema()).unwrap();
    let mut tables2 = HashMap::new();
    tables2.insert(1u32, Arc::clone(&t2));
    let mut slot_map = HashMap::new();
    let load = load_into(&root, &cur_dir, &manifest, &m2, &tables2, &mut slot_map).unwrap();
    assert_eq!(load.frozen_blocks, 2);
    assert_eq!(relation(&m2, &t2), expected);
    let _ = std::fs::remove_dir_all(&root);
}

/// The depth bound: several similarly-sized fully-live generations trip the
/// size-tier trigger and merge into one, and the merged chain still
/// restores exactly.
#[test]
fn tier_trigger_merges_fully_live_generations() {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let per_block = t.layout().num_slots() as i64;
    let root = tmp_root("tier");

    // Three checkpoints, each freezing one more block: each generation holds
    // one live cold frame (plus references to the earlier ones).
    for g in 0..3i64 {
        let txn = m.begin();
        for i in 0..per_block {
            t.insert(&txn, &row(g * per_block + i));
        }
        m.commit(&txn);
        freeze_block(&m, &t, g as usize);
        write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    }
    let expected = relation(&m, &t);
    let before = chain_generations(&root).unwrap();
    assert_eq!(before.len(), 3);
    assert!(
        before.iter().filter(|g| !g.current).all(|g| g.dead_ratio() < 0.9),
        "generations are mostly live: {before:?}"
    );

    // Ratio trigger effectively off; the two non-CURRENT single-frame
    // generations share a size tier and merge.
    let policy = CompactionPolicy { min_dead_ratio: 1.1, tier_merge_count: 2, max_batch: 8 };
    let tables = vec![Arc::clone(&t)];
    let stats = compact_chain(&root, &policy, &tables).unwrap();
    assert_eq!(stats.generations_compacted, 2, "{stats:?}");
    assert_eq!(stats.frames_rewritten, 2);

    let after = chain_generations(&root).unwrap();
    assert_eq!(after.len(), 2, "chain depth must shrink: {after:?}");

    let (cur_dir, manifest) = read_manifest(&root).unwrap();
    let m2 = Arc::new(TransactionManager::new());
    let t2 = DataTable::new(1, schema()).unwrap();
    let mut tables2 = HashMap::new();
    tables2.insert(1u32, Arc::clone(&t2));
    let mut slot_map = HashMap::new();
    let load = load_into(&root, &cur_dir, &manifest, &m2, &tables2, &mut slot_map).unwrap();
    assert_eq!(load.frozen_blocks, 3);
    assert_eq!(relation(&m2, &t2), expected);

    // A second pass finds nothing: one merged generation per tier.
    let again = compact_chain(&root, &policy, &tables).unwrap();
    assert_eq!(again.generations_compacted, 0, "{again:?}");
    let _ = std::fs::remove_dir_all(&root);
}

/// Below both triggers a pass is a no-op: stats are zeroed and the chain is
/// untouched on disk.
#[test]
fn below_thresholds_compaction_is_a_noop() {
    let m = Arc::new(TransactionManager::new());
    let t = DataTable::new(1, schema()).unwrap();
    let txn = m.begin();
    for i in 0..200 {
        t.insert(&txn, &row(i));
    }
    m.commit(&txn);
    let root = tmp_root("noop");
    write_checkpoint(&m, &[spec(&t)], &root).unwrap();
    let txn = m.begin();
    for i in 200..260 {
        t.insert(&txn, &row(i));
    }
    m.commit(&txn);
    write_checkpoint(&m, &[spec(&t)], &root).unwrap();

    let dirs_before = ckpt_dirs(&root);
    let policy = CompactionPolicy { min_dead_ratio: 1.1, tier_merge_count: 99, max_batch: 8 };
    let stats = compact_chain(&root, &policy, &[Arc::clone(&t)]).unwrap();
    assert_eq!(stats.generations_compacted, 0);
    assert_eq!(stats.frames_rewritten, 0);
    assert_eq!(stats.dir, None);
    assert_eq!(ckpt_dirs(&root), dirs_before, "a no-op pass must not touch the chain");

    // No chain at all is equally a no-op, not an error.
    let empty = tmp_root("noop-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let stats = compact_chain(&empty, &policy, &[]).unwrap();
    assert_eq!(stats.generations_examined, 0);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&empty);
}
