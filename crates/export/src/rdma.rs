//! Simulated client-side RDMA export (paper §5 "Shipping Data with RDMA").
//!
//! Real client-side RDMA lets the server write block memory straight into
//! the client's address space: no protocol framing, no server-side
//! serialization, traffic close to the theoretical lower bound. We model
//! exactly that data path: for frozen blocks, the "client" copies the
//! block's Arrow-relevant regions (fixed-column bytes, bitmaps, gathered
//! varlen buffers) directly out of server memory — one memcpy, no frames,
//! no per-value work. Hot blocks must be transactionally materialized first
//! (the server retains control over concurrency, as in the paper).
//!
//! The substitution (DESIGN.md): what Fig. 15 measures for RDMA is "raw
//! memory-bandwidth transfer without touching the CPU's protocol stack";
//! a direct memcpy from server memory has identical cost structure, minus
//! the NIC's wire ceiling (which the caller can model by capping MB/s).

use crate::materialize::block_batch;
use crate::transport::ExportStats;
use mainline_common::bitmap::bytes_for_bits_aligned;
use mainline_storage::arrow_side::GatheredColumn;
use mainline_storage::block_state::BlockStateMachine;
use mainline_txn::{DataTable, TransactionManager};

/// Export a table by direct memory reads.
pub fn export(manager: &TransactionManager, table: &DataTable) -> ExportStats {
    let mut stats = ExportStats::default();
    let layout = table.layout();
    // The client's receive region.
    let mut client: Vec<u8> = Vec::new();

    for block in table.blocks() {
        let h = block.header();
        if BlockStateMachine::reader_acquire(h) {
            // Client-side RDMA read of the frozen block: copy each column's
            // contiguous region verbatim.
            let n = h.insert_head().min(layout.num_slots()) as usize;
            unsafe {
                for &col in table.all_cols().iter() {
                    // Null bitmap.
                    let bm = std::slice::from_raw_parts(
                        block.as_ptr().add(layout.bitmap_offset(col) as usize),
                        bytes_for_bits_aligned(n),
                    );
                    client.extend_from_slice(bm);
                    if layout.is_varlen(col) {
                        match block.arrow.get(col).as_deref() {
                            Some(GatheredColumn::Gathered { offsets, values, .. }) => {
                                client.extend_from_slice(bytes_of(&offsets[..=n]));
                                let end = offsets[n] as usize;
                                client.extend_from_slice(&values[..end]);
                            }
                            Some(GatheredColumn::Dictionary {
                                codes,
                                dict_offsets,
                                dict_values,
                                ..
                            }) => {
                                client.extend_from_slice(bytes_of(&codes[..n]));
                                client.extend_from_slice(bytes_of(dict_offsets));
                                client.extend_from_slice(dict_values);
                            }
                            None => {
                                // No gathered data: ship the raw entries
                                // (the client can chase nothing remotely, so
                                // this only covers all-inline columns).
                                let data = std::slice::from_raw_parts(
                                    block.as_ptr().add(layout.column_offset(col) as usize),
                                    n * layout.attr_size(col) as usize,
                                );
                                client.extend_from_slice(data);
                            }
                        }
                    } else {
                        let data = std::slice::from_raw_parts(
                            block.as_ptr().add(layout.column_offset(col) as usize),
                            n * layout.attr_size(col) as usize,
                        );
                        client.extend_from_slice(data);
                    }
                }
                // Count live rows from the allocation bitmap.
                for slot in 0..n as u32 {
                    if mainline_storage::access::is_allocated(block.as_ptr(), layout, slot) {
                        stats.rows += 1;
                    }
                }
            }
            BlockStateMachine::reader_release(h);
            stats.frozen_blocks += 1;
        } else {
            // Hot block: the server materializes a snapshot; the client then
            // RDMAs the materialized buffers.
            let (batch, _) = block_batch(manager, table, &block);
            for col in batch.columns() {
                // Copy each buffer of the materialized batch.
                match col {
                    mainline_arrowlite::array::ColumnArray::Primitive(a) => {
                        client.extend_from_slice(a.values().as_slice());
                    }
                    mainline_arrowlite::array::ColumnArray::VarBinary(a) => {
                        client.extend_from_slice(a.offsets().as_slice());
                        client.extend_from_slice(a.values().as_slice());
                    }
                    mainline_arrowlite::array::ColumnArray::Dictionary(a) => {
                        client.extend_from_slice(a.codes().as_slice());
                        client.extend_from_slice(a.dictionary().values().as_slice());
                    }
                }
            }
            stats.rows += (0..batch.num_rows())
                .filter(|&r| batch.columns().iter().any(|c| c.is_valid(r)))
                .count() as u64;
            stats.hot_blocks += 1;
        }
    }
    stats.bytes_transferred = client.len() as u64;
    stats
}

fn bytes_of<T: Copy>(xs: &[T]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u8, std::mem::size_of_val(xs)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::{TypeId, Value};
    use mainline_storage::ProjectedRow;
    use std::sync::Arc;

    #[test]
    fn hot_and_frozen_paths() {
        let m = Arc::new(TransactionManager::new());
        let t = mainline_txn::DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::new("v", TypeId::Varchar),
            ]),
        )
        .unwrap();
        let txn = m.begin();
        for i in 0..400 {
            t.insert(
                &txn,
                &ProjectedRow::from_values(
                    &[TypeId::BigInt, TypeId::Varchar],
                    &[Value::BigInt(i), Value::string(&format!("rdma-sim-value-{i:05}"))],
                ),
            );
        }
        m.commit(&txn);
        let hot = export(&m, &t);
        assert_eq!(hot.rows, 400);
        assert_eq!(hot.hot_blocks, 1);

        // Freeze, then the frozen path must be used and carry fewer bytes
        // than the row protocol would.
        let mut gc = mainline_gc::GarbageCollector::new(Arc::clone(&m));
        gc.run();
        gc.run();
        let block = t.blocks()[0].clone();
        let h = block.header();
        assert!(BlockStateMachine::begin_cooling(h));
        assert!(BlockStateMachine::begin_freezing(h));
        unsafe {
            let d = mainline_transform::gather::gather_block(&block);
            BlockStateMachine::finish_freezing(h);
            d.free();
        }
        let frozen = export(&m, &t);
        assert_eq!(frozen.rows, 400);
        assert_eq!(frozen.frozen_blocks, 1);
        assert!(frozen.bytes_transferred > 0);
    }
}
