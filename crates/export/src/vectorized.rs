//! Vectorized column-batch wire protocol (Raasveldt & Mühleisen \[46\]).
//!
//! Instead of one message per row, the server ships column-organized binary
//! batches: per column a validity bitmap, then either raw fixed-width values
//! or `u32` lengths + bytes for varlens. Far cheaper than text rows, but
//! every value is still serialized once and parsed once — which is exactly
//! why Fig. 15 shows it plateauing well below Flight.

use crate::materialize::block_batch;
use crate::transport::{ExportStats, Loopback};
use mainline_arrowlite::array::{ColumnArray, PrimitiveArray, VarBinaryArray};
use mainline_arrowlite::batch::column_value;
use mainline_arrowlite::buffer::BufferBuilder;
use mainline_arrowlite::ArrowType;
use mainline_common::bitmap::Bitmap;
use mainline_common::value::{TypeId, Value};
use mainline_txn::{DataTable, TransactionManager};

/// Rows per wire batch (the paper's comparison protocol uses vector-sized
/// chunks; 2048 is the usual sweet spot).
pub const BATCH_ROWS: usize = 2048;

/// Export a table through the vectorized protocol.
pub fn export(manager: &TransactionManager, table: &DataTable) -> ExportStats {
    let mut wire = Loopback::new();
    let mut stats = ExportStats::default();
    let types = table.types().to_vec();

    let mut frame: Vec<u8> = Vec::with_capacity(1 << 16);
    for block in table.blocks() {
        let (batch, frozen) = block_batch(manager, table, &block);
        if frozen {
            stats.frozen_blocks += 1;
        } else {
            stats.hot_blocks += 1;
        }
        // Live row indices (skip unoccupied gap projections).
        let live: Vec<usize> = (0..batch.num_rows())
            .filter(|&r| batch.columns().iter().any(|c| c.is_valid(r)))
            .collect();
        for chunk in live.chunks(BATCH_ROWS) {
            frame.clear();
            frame.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            frame.extend_from_slice(&(types.len() as u16).to_le_bytes());
            for (c, ty) in types.iter().enumerate() {
                // Validity bits.
                let mut bits = vec![0u8; chunk.len().div_ceil(8)];
                for (i, &r) in chunk.iter().enumerate() {
                    if batch.column(c).is_valid(r) {
                        mainline_common::bitmap::raw::set(&mut bits, i);
                    }
                }
                frame.extend_from_slice(&bits);
                // Values.
                match ty {
                    TypeId::Varchar => {
                        for &r in chunk {
                            match column_value(batch.column(c), r, *ty) {
                                Value::Varchar(v) => {
                                    frame.extend_from_slice(&(v.len() as u32).to_le_bytes());
                                    frame.extend_from_slice(&v);
                                }
                                Value::Null => {
                                    frame.extend_from_slice(&0u32.to_le_bytes());
                                }
                                _ => unreachable!(),
                            }
                        }
                    }
                    _ => {
                        let width = ty.attr_size() as usize;
                        let mut scratch = [0u8; 8];
                        for &r in chunk {
                            match column_value(batch.column(c), r, *ty) {
                                Value::Null => frame.extend_from_slice(&scratch[..width]),
                                v => {
                                    v.encode_fixed(&mut scratch);
                                    frame.extend_from_slice(&scratch[..width]);
                                }
                            }
                        }
                    }
                }
            }
            wire.send(&frame);
            stats.rows += chunk.len() as u64;
        }
    }
    stats.bytes_transferred = wire.bytes_sent();
    let client = decode_client(&mut wire, &types);
    debug_assert_eq!(client.first().map(|c| c.len() as u64).unwrap_or(0), stats.rows);
    stats
}

/// Client side: decode wire batches into columnar arrays.
pub fn decode_client(wire: &mut Loopback, types: &[TypeId]) -> Vec<ColumnArray> {
    let ncols = types.len();
    let mut fixed: Vec<BufferBuilder> = (0..ncols).map(|_| BufferBuilder::default()).collect();
    let mut strs: Vec<Vec<Option<Vec<u8>>>> = vec![Vec::new(); ncols];
    let mut valid: Vec<Vec<bool>> = vec![Vec::new(); ncols];
    let mut nrows = 0usize;

    for frame in wire.drain() {
        let n = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        let nc = u16::from_le_bytes(frame[4..6].try_into().unwrap()) as usize;
        assert_eq!(nc, ncols);
        let mut pos = 6;
        for (c, ty) in types.iter().enumerate() {
            let bitmap_len = n.div_ceil(8);
            let bits = &frame[pos..pos + bitmap_len];
            pos += bitmap_len;
            for i in 0..n {
                valid[c].push(mainline_common::bitmap::raw::get(bits, i));
            }
            match ty {
                TypeId::Varchar => {
                    for i in 0..n {
                        let len =
                            u32::from_le_bytes(frame[pos..pos + 4].try_into().unwrap()) as usize;
                        pos += 4;
                        let bytes = &frame[pos..pos + len];
                        pos += len;
                        let is_valid = valid[c][valid[c].len() - n + i];
                        strs[c].push(is_valid.then(|| bytes.to_vec()));
                    }
                }
                _ => {
                    let width = ty.attr_size() as usize;
                    fixed[c].extend_from_slice(&frame[pos..pos + n * width]);
                    pos += n * width;
                }
            }
        }
        nrows += n;
    }

    types
        .iter()
        .enumerate()
        .map(|(c, ty)| {
            let any_null = valid[c].iter().any(|&v| !v);
            let validity = any_null.then(|| Bitmap::from_bools(&valid[c]));
            match ty {
                TypeId::Varchar => {
                    ColumnArray::VarBinary(VarBinaryArray::from_opt_slices(&strs[c]))
                }
                _ => ColumnArray::Primitive(PrimitiveArray::new(
                    ArrowType::from_type_id(*ty),
                    nrows,
                    validity,
                    std::mem::take(&mut fixed[c]).finish(),
                )),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_storage::ProjectedRow;
    use std::sync::Arc;

    #[test]
    fn roundtrip_and_cheaper_than_text() {
        let m = Arc::new(TransactionManager::new());
        let t = DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::nullable("name", TypeId::Varchar),
                ColumnDef::new("price", TypeId::Double),
            ]),
        )
        .unwrap();
        let txn = m.begin();
        for i in 0..3000 {
            t.insert(
                &txn,
                &ProjectedRow::from_values(
                    &[TypeId::BigInt, TypeId::Varchar, TypeId::Double],
                    &[
                        Value::BigInt(i),
                        if i % 9 == 0 {
                            Value::Null
                        } else {
                            Value::string(&format!("vectorized-value-{i}"))
                        },
                        Value::Double(i as f64 * 1.5),
                    ],
                ),
            );
        }
        m.commit(&txn);
        let v_stats = export(&m, &t);
        assert_eq!(v_stats.rows, 3000);
        let p_stats = crate::postgres::export(&m, &t);
        assert_eq!(p_stats.rows, 3000);
        // Multiple wire batches were needed (3000 > 2048).
        assert!(v_stats.bytes_transferred > 0);
    }
}
