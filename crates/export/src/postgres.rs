//! Row-oriented PostgreSQL-style wire protocol (the Fig. 15 baseline).
//!
//! Faithful to the v3 message shapes: a `RowDescription` ('T') followed by
//! one `DataRow` ('D') per tuple with text-encoded fields, and a
//! `CommandComplete` ('C'). The client parses every field from text back
//! into typed columnar arrays — the Fig. 1 "ODBC" pipeline's cost profile.

use crate::materialize::block_batch;
use crate::transport::{ExportStats, Loopback};
use mainline_arrowlite::array::{ColumnArray, PrimitiveArray, VarBinaryArray};
use mainline_arrowlite::batch::{column_value, RecordBatch};
use mainline_arrowlite::buffer::BufferBuilder;
use mainline_arrowlite::ArrowType;
use mainline_common::bitmap::Bitmap;
use mainline_common::value::{TypeId, Value};
use mainline_txn::{DataTable, TransactionManager};

/// Serialize a `RowDescription` ('T') message for a table's schema. Shared
/// by the in-process export baseline and `mainline-server`'s SELECT path.
pub fn row_description(table: &DataTable) -> Vec<u8> {
    let mut out = vec![b'T'];
    out.extend_from_slice(&0u32.to_be_bytes()); // length placeholder
    out.extend_from_slice(&(table.schema().len() as u16).to_be_bytes());
    for c in table.schema().columns() {
        out.extend_from_slice(c.name.as_bytes());
        out.push(0);
        out.extend_from_slice(&0u32.to_be_bytes()); // table oid
        out.extend_from_slice(&0u16.to_be_bytes()); // attnum
        out.extend_from_slice(&0u32.to_be_bytes()); // type oid
        out.extend_from_slice(&(-1i16).to_be_bytes()); // typlen
        out.extend_from_slice(&(-1i32).to_be_bytes()); // atttypmod
        out.extend_from_slice(&0u16.to_be_bytes()); // text format
    }
    patch_len(&mut out);
    out
}

fn patch_len(msg: &mut [u8]) {
    let len = (msg.len() - 1) as u32;
    msg[1..5].copy_from_slice(&len.to_be_bytes());
}

/// Serialize a `RowDescription` ('T') for an ad-hoc column list — result
/// sets with no backing [`DataTable`] schema, e.g. `mainline-server`'s
/// introspection virtual tables. Same per-column shape as
/// [`row_description`]: zero OIDs, variable typlen, text format.
pub fn named_row_description(names: &[&str]) -> Vec<u8> {
    let mut out = vec![b'T'];
    out.extend_from_slice(&0u32.to_be_bytes()); // length placeholder
    out.extend_from_slice(&(names.len() as u16).to_be_bytes());
    for name in names {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(&0u32.to_be_bytes()); // table oid
        out.extend_from_slice(&0u16.to_be_bytes()); // attnum
        out.extend_from_slice(&0u32.to_be_bytes()); // type oid
        out.extend_from_slice(&(-1i16).to_be_bytes()); // typlen
        out.extend_from_slice(&(-1i32).to_be_bytes()); // atttypmod
        out.extend_from_slice(&0u16.to_be_bytes()); // text format
    }
    patch_len(&mut out);
    out
}

/// Append one `DataRow` ('D') with the given pre-rendered text fields to
/// `out` (companion to [`named_row_description`]; no NULL encoding — every
/// field is a concrete string).
pub fn text_data_row(fields: &[String], out: &mut Vec<u8>) {
    let start = out.len();
    out.push(b'D');
    out.extend_from_slice(&0u32.to_be_bytes());
    out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
    for f in fields {
        out.extend_from_slice(&(f.len() as i32).to_be_bytes());
        out.extend_from_slice(f.as_bytes());
    }
    patch_len(&mut out[start..]);
}

/// Append one `DataRow` ('D') message per occupied row of `batch` to `out`
/// (text-encoded fields, -1 length for NULL; all-NULL projection gaps are
/// skipped). Returns the number of rows appended.
pub fn data_rows(batch: &RecordBatch, types: &[TypeId], out: &mut Vec<u8>) -> u64 {
    let mut rows = 0u64;
    for r in 0..batch.num_rows() {
        if !batch.columns().iter().any(|c| c.is_valid(r)) {
            continue;
        }
        let start = out.len();
        out.push(b'D');
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&(types.len() as u16).to_be_bytes());
        for (c, ty) in types.iter().enumerate() {
            let v = column_value(batch.column(c), r, *ty);
            match v {
                Value::Null => out.extend_from_slice(&(-1i32).to_be_bytes()),
                other => {
                    let text = other.to_text();
                    out.extend_from_slice(&(text.len() as i32).to_be_bytes());
                    out.extend_from_slice(text.as_bytes());
                }
            }
        }
        patch_len(&mut out[start..]);
        rows += 1;
    }
    rows
}

/// Serialize a `CommandComplete` ('C') message with the given tag.
pub fn command_complete(tag: &str) -> Vec<u8> {
    let mut msg = vec![b'C'];
    msg.extend_from_slice(&0u32.to_be_bytes());
    msg.extend_from_slice(tag.as_bytes());
    msg.push(0);
    patch_len(&mut msg);
    msg
}

/// Server side: export the whole table as DataRow messages.
pub fn export(manager: &TransactionManager, table: &DataTable) -> ExportStats {
    let mut wire = Loopback::new();
    let mut stats = ExportStats::default();
    wire.send_owned(row_description(table));

    let types = table.types().to_vec();
    let mut row_buf: Vec<u8> = Vec::with_capacity(256);
    for block in table.blocks() {
        let (batch, frozen) = block_batch(manager, table, &block);
        if frozen {
            stats.frozen_blocks += 1;
        } else {
            stats.hot_blocks += 1;
        }
        row_buf.clear();
        stats.rows += data_rows(&batch, &types, &mut row_buf);
        wire.send(&row_buf);
    }
    wire.send_owned(command_complete("SELECT"));
    stats.bytes_transferred = wire.bytes_sent();

    // Client side: parse every DataRow back into columnar arrays.
    let client = parse_client(&mut wire, &types);
    debug_assert_eq!(client.iter().map(|c| c.len() as u64).next().unwrap_or(0), stats.rows);
    stats
}

/// The "Pandas" half: decode text rows into columnar arrays.
pub fn parse_client(wire: &mut Loopback, types: &[TypeId]) -> Vec<ColumnArray> {
    let ncols = types.len();
    let mut ints: Vec<Vec<i64>> = vec![Vec::new(); ncols];
    let mut floats: Vec<Vec<f64>> = vec![Vec::new(); ncols];
    let mut strs: Vec<Vec<Option<Vec<u8>>>> = vec![Vec::new(); ncols];
    let mut valid: Vec<Vec<bool>> = vec![Vec::new(); ncols];
    let mut nrows = 0usize;

    for frame in wire.drain() {
        // A frame may carry several consecutive messages (one per DataRow
        // plus RowDescription/CommandComplete); walk them by length prefix.
        let mut msg_start = 0usize;
        while msg_start + 5 <= frame.len() {
            let ty = frame[msg_start];
            let len = u32::from_be_bytes(frame[msg_start + 1..msg_start + 5].try_into().unwrap())
                as usize;
            let msg_end = msg_start + 1 + len;
            if ty != b'D' {
                msg_start = msg_end;
                continue;
            }
            let mut pos = msg_start + 5;
            let nfields = u16::from_be_bytes(frame[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2;
            assert_eq!(nfields, ncols);
            for c in 0..ncols {
                let len = i32::from_be_bytes(frame[pos..pos + 4].try_into().unwrap());
                pos += 4;
                if len < 0 {
                    valid[c].push(false);
                    match types[c] {
                        TypeId::Varchar => strs[c].push(None),
                        TypeId::Double => floats[c].push(0.0),
                        _ => ints[c].push(0),
                    }
                    continue;
                }
                let text = &frame[pos..pos + len as usize];
                pos += len as usize;
                valid[c].push(true);
                match types[c] {
                    TypeId::Varchar => strs[c].push(Some(text.to_vec())),
                    TypeId::Double => {
                        floats[c].push(std::str::from_utf8(text).unwrap().parse::<f64>().unwrap())
                    }
                    _ => ints[c].push(std::str::from_utf8(text).unwrap().parse::<i64>().unwrap()),
                }
            }
            nrows += 1;
            msg_start = msg_end;
        }
    }

    (0..ncols)
        .map(|c| {
            let any_null = valid[c].iter().any(|&v| !v);
            let validity = any_null.then(|| Bitmap::from_bools(&valid[c]));
            match types[c] {
                TypeId::Varchar => {
                    ColumnArray::VarBinary(VarBinaryArray::from_opt_slices(&strs[c]))
                }
                TypeId::Double => {
                    let mut bb = BufferBuilder::with_capacity(nrows * 8);
                    for v in &floats[c] {
                        bb.push(*v);
                    }
                    ColumnArray::Primitive(PrimitiveArray::new(
                        ArrowType::Float64,
                        nrows,
                        validity,
                        bb.finish(),
                    ))
                }
                ty => {
                    let mut bb = BufferBuilder::default();
                    for v in &ints[c] {
                        match ty {
                            TypeId::TinyInt => bb.push(*v as i8),
                            TypeId::SmallInt => bb.push(*v as i16),
                            TypeId::Integer => bb.push(*v as i32),
                            TypeId::BigInt => bb.push(*v),
                            _ => unreachable!(),
                        }
                    }
                    ColumnArray::Primitive(PrimitiveArray::new(
                        ArrowType::from_type_id(ty),
                        nrows,
                        validity,
                        bb.finish(),
                    ))
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_storage::ProjectedRow;
    use std::sync::Arc;

    #[test]
    fn roundtrip_through_wire() {
        let m = Arc::new(TransactionManager::new());
        let t = DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::nullable("name", TypeId::Varchar),
            ]),
        )
        .unwrap();
        let txn = m.begin();
        for i in 0..100 {
            t.insert(
                &txn,
                &ProjectedRow::from_values(
                    &[TypeId::BigInt, TypeId::Varchar],
                    &[
                        Value::BigInt(i),
                        if i % 5 == 0 { Value::Null } else { Value::string(&format!("name-{i}")) },
                    ],
                ),
            );
        }
        m.commit(&txn);
        let stats = export(&m, &t);
        assert_eq!(stats.rows, 100);
        assert!(stats.bytes_transferred > 100 * 10);
        assert_eq!(stats.hot_blocks, 1);
        assert_eq!(stats.frozen_blocks, 0);
    }
}
