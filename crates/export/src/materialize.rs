//! Block → record batch conversion.
//!
//! Frozen blocks convert **in place**: the reader takes the Fig. 7 shared
//! lock (reader counter), copies each column's contiguous bytes once, and
//! wraps them as Arrow arrays — no per-value work. Hot blocks take the
//! §5 fallback: "the system needs to start a transaction and materialize a
//! snapshot of the block".

use mainline_arrowlite::array::{ColumnArray, DictionaryArray, PrimitiveArray, VarBinaryArray};
use mainline_arrowlite::batch::RecordBatch;
use mainline_arrowlite::buffer::Buffer;
use mainline_arrowlite::schema::ArrowSchema;
use mainline_arrowlite::ArrowType;
use mainline_common::bitmap::Bitmap;
use mainline_storage::access;
use mainline_storage::arrow_side::GatheredColumn;
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::raw_block::Block;
use mainline_transform::baselines::snapshot_block;
use mainline_txn::{DataTable, TransactionManager};

/// Convert one block to a batch. Returns the batch and whether the frozen
/// in-place path was used.
///
/// An evicted block is faulted back in first (export must see every row, and
/// a faulted block lands Frozen — the zero-transformation path still
/// applies); a block mid-fault is waited out the same way.
pub fn block_batch(
    manager: &TransactionManager,
    table: &DataTable,
    block: &Block,
) -> (RecordBatch, bool) {
    let h = block.header();
    loop {
        if BlockStateMachine::reader_acquire(h) {
            let batch = unsafe { frozen_batch(table, block) };
            BlockStateMachine::reader_release(h);
            return (batch, true);
        }
        match BlockStateMachine::state(h) {
            BlockState::Evicted | BlockState::Faulting => {
                // No error channel here, and skipping the block would
                // silently drop rows from the export.
                table
                    .ensure_resident(block.as_ptr())
                    .expect("fault-in failed during export materialization");
            }
            _ => {
                let txn = manager.begin();
                let (batch, _moved) = snapshot_block(table, &txn, block);
                manager.commit(&txn);
                return (batch, false);
            }
        }
    }
}

/// Build the Arrow projection of a frozen block directly from its memory —
/// the zero-transformation path shared by Flight export and the checkpoint
/// writer (both must produce the *same bytes* for the same frozen block;
/// the checkpoint tests assert it).
///
/// # Safety
/// Caller must hold the block's reader lock (state == Frozen).
pub unsafe fn frozen_batch(table: &DataTable, block: &Block) -> RecordBatch {
    let layout = table.layout();
    let ptr = block.as_ptr();
    let n = block.header().insert_head().min(layout.num_slots()) as usize;

    let mut arrays = Vec::with_capacity(table.all_cols().len());
    for (u, &col) in table.all_cols().iter().enumerate() {
        let ty = table.types()[u];
        // Arrow validity = allocated && !null (our in-block bitmap is
        // inverted relative to Arrow, and gaps project as NULL rows).
        let mut validity = Bitmap::new_zeroed(n);
        let mut any_null = false;
        for slot in 0..n as u32 {
            if access::is_allocated(ptr, layout, slot) && !access::is_null(ptr, layout, slot, col) {
                validity.set(slot as usize);
            } else {
                any_null = true;
            }
        }
        let validity = any_null.then_some(validity);

        let array = if layout.is_varlen(col) {
            match block.arrow.get(col).as_deref() {
                Some(GatheredColumn::Gathered { offsets, values, .. }) => {
                    // One memcpy per buffer: the in-place read the relaxed
                    // format was designed to make possible.
                    let offsets_buf = Buffer::from_values(&offsets[..=n]);
                    let end = offsets[n] as usize;
                    let values_buf = Buffer::from_slice(&values[..end]);
                    ColumnArray::VarBinary(VarBinaryArray::new(
                        n,
                        validity,
                        offsets_buf,
                        values_buf,
                    ))
                }
                Some(GatheredColumn::Dictionary { codes, dict_offsets, dict_values, .. }) => {
                    let codes_buf = Buffer::from_values(&codes[..n]);
                    let dict = VarBinaryArray::new(
                        dict_offsets.len() - 1,
                        None,
                        Buffer::from_values(dict_offsets),
                        Buffer::from_slice(dict_values),
                    );
                    ColumnArray::Dictionary(DictionaryArray::new(n, validity, codes_buf, dict))
                }
                None => {
                    // Frozen block without gathered side data (e.g. frozen
                    // with zero varlen rows): copy per entry.
                    let items: Vec<Option<Vec<u8>>> = (0..n as u32)
                        .map(|slot| {
                            if access::is_allocated(ptr, layout, slot)
                                && !access::is_null(ptr, layout, slot, col)
                            {
                                Some(access::read_varlen(ptr, layout, slot, col).to_vec())
                            } else {
                                None
                            }
                        })
                        .collect();
                    ColumnArray::VarBinary(VarBinaryArray::from_opt_slices(&items))
                }
            }
        } else {
            let width = layout.attr_size(col) as usize;
            let data =
                std::slice::from_raw_parts(ptr.add(layout.column_offset(col) as usize), n * width);
            ColumnArray::Primitive(PrimitiveArray::new(
                ArrowType::from_type_id(ty),
                n,
                validity,
                Buffer::from_slice(data),
            ))
        };
        arrays.push(array);
    }
    RecordBatch::new(ArrowSchema::from_table_schema(table.schema()), arrays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::{TypeId, Value};
    use mainline_storage::block_state::BlockState;
    use mainline_storage::ProjectedRow;
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<TransactionManager>, Arc<DataTable>) {
        let m = Arc::new(TransactionManager::new());
        let t = DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::nullable("name", TypeId::Varchar),
            ]),
        )
        .unwrap();
        let txn = m.begin();
        for i in 0..n {
            t.insert(
                &txn,
                &ProjectedRow::from_values(
                    &[TypeId::BigInt, TypeId::Varchar],
                    &[
                        Value::BigInt(i as i64),
                        if i % 4 == 0 {
                            Value::Null
                        } else {
                            Value::string(&format!("export-materialize-{i:05}"))
                        },
                    ],
                ),
            );
        }
        m.commit(&txn);
        (m, t)
    }

    fn freeze(m: &Arc<TransactionManager>, t: &Arc<DataTable>) {
        let mut gc = mainline_gc::GarbageCollector::new(Arc::clone(m));
        gc.run();
        gc.run();
        let block = t.blocks()[0].clone();
        let h = block.header();
        assert!(BlockStateMachine::begin_cooling(h));
        assert!(BlockStateMachine::begin_freezing(h));
        unsafe {
            let d = mainline_transform::gather::gather_block(&block);
            BlockStateMachine::finish_freezing(h);
            d.free();
        }
    }

    #[test]
    fn hot_block_uses_snapshot_path() {
        let (m, t) = setup(50);
        let (batch, frozen) = block_batch(&m, &t, &t.blocks()[0]);
        assert!(!frozen);
        assert_eq!(batch.num_rows(), 50);
    }

    #[test]
    fn frozen_block_reads_in_place() {
        let (m, t) = setup(200);
        freeze(&m, &t);
        let block = t.blocks()[0].clone();
        assert_eq!(BlockStateMachine::state(block.header()), BlockState::Frozen);
        let (batch, frozen) = block_batch(&m, &t, &block);
        assert!(frozen);
        assert_eq!(batch.num_rows(), 200);
        // Spot check values.
        use mainline_arrowlite::batch::column_value;
        assert_eq!(column_value(batch.column(0), 7, TypeId::BigInt), Value::BigInt(7));
        assert_eq!(column_value(batch.column(1), 0, TypeId::Varchar), Value::Null);
        assert_eq!(
            column_value(batch.column(1), 7, TypeId::Varchar),
            Value::string("export-materialize-00007")
        );
        // Reader lock released.
        assert_eq!(block.header().reader_count(), 0);
    }

    #[test]
    fn frozen_and_snapshot_agree() {
        let (m, t) = setup(300);
        // Snapshot before freezing.
        let txn = m.begin();
        let (snap, _) = snapshot_block(&t, &txn, &t.blocks()[0]);
        m.commit(&txn);
        freeze(&m, &t);
        let (frozen, used_frozen) = block_batch(&m, &t, &t.blocks()[0]);
        assert!(used_frozen);
        // The frozen batch has one row per slot (fully dense here since no
        // deletes): shapes must match, and every cell must agree.
        assert_eq!(frozen.num_rows(), snap.num_rows());
        use mainline_arrowlite::batch::column_value;
        for r in 0..snap.num_rows() {
            for (c, ty) in [(0, TypeId::BigInt), (1, TypeId::Varchar)] {
                assert_eq!(
                    column_value(frozen.column(c), r, ty),
                    column_value(snap.column(c), r, ty),
                    "row {r} col {c}"
                );
            }
        }
    }
}
