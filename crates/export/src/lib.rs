//! `mainline-export` — external access to native Arrow storage (paper §5).
//!
//! Four export paths, in the paper's order of increasing invasiveness:
//!
//! * [`postgres`] — the row-oriented PostgreSQL v3-style wire protocol
//!   (text-encoded `DataRow` messages); the baseline every DBMS ships.
//! * [`vectorized`] — the column-batch binary protocol of Raasveldt &
//!   Mühleisen \[46\].
//! * [`flight`] — Arrow-Flight-style zero-copy framing: frozen blocks' Arrow
//!   buffers go onto the wire as-is; hot blocks are transactionally
//!   materialized first.
//! * [`rdma`] — simulated client-side RDMA: the client copies the server's
//!   block memory directly, no protocol framing and no server-side
//!   serialization (see DESIGN.md for why this preserves the Fig. 15
//!   behaviour of real ConnectX hardware).
//!
//! [`materialize`] converts blocks to record batches, in-place for frozen
//! blocks (taking the reader lock of Fig. 7) and through the transactional
//! snapshot path for hot ones.
//!
//! # Example
//!
//! ```
//! use mainline_common::schema::{ColumnDef, Schema};
//! use mainline_common::value::{TypeId, Value};
//! use mainline_export::{export_table, ExportMethod};
//! use mainline_storage::ProjectedRow;
//! use mainline_txn::{DataTable, TransactionManager};
//!
//! let manager = TransactionManager::new();
//! let table =
//!     DataTable::new(1, Schema::new(vec![ColumnDef::new("id", TypeId::BigInt)])).unwrap();
//! let txn = manager.begin();
//! for i in 0..64 {
//!     table.insert(&txn, &ProjectedRow::from_values(&[TypeId::BigInt], &[Value::BigInt(i)]));
//! }
//! manager.commit(&txn);
//!
//! // Hot blocks go through the transactional materialization path; frozen
//! // blocks would ship their Arrow buffers as-is.
//! let stats = export_table(ExportMethod::Flight, &manager, &table);
//! assert_eq!(stats.rows, 64);
//! assert!(stats.bytes_transferred > 0);
//! ```

pub mod flight;
pub mod materialize;
pub mod postgres;
pub mod rdma;
pub mod transport;
pub mod vectorized;

pub use transport::{ExportStats, Loopback};

use mainline_txn::{DataTable, TransactionManager};

/// The export methods compared in Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportMethod {
    /// Row-based PostgreSQL-style wire protocol.
    PostgresWire,
    /// Vectorized column-batch protocol \[46\].
    Vectorized,
    /// Arrow-Flight-style zero-copy framing.
    Flight,
    /// Simulated client-side RDMA.
    Rdma,
}

/// Export a whole table through the chosen method, returning byte/row
/// accounting. The client side fully *consumes* the data (parses it back
/// into columnar form), so the measured cost includes deserialization — the
/// paper's point is precisely that serialization+deserialization dominates.
pub fn export_table(
    method: ExportMethod,
    manager: &TransactionManager,
    table: &DataTable,
) -> ExportStats {
    match method {
        ExportMethod::PostgresWire => postgres::export(manager, table),
        ExportMethod::Vectorized => vectorized::export(manager, table),
        ExportMethod::Flight => flight::export(manager, table),
        ExportMethod::Rdma => rdma::export(manager, table),
    }
}
