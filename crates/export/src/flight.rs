//! Arrow-Flight-style zero-copy export (paper §5 "Improved Wire Protocol").
//!
//! "Flight enables our DBMS to send a large amount of cold data to the
//! client in a zero-copy fashion." Frozen blocks' canonical Arrow buffers go
//! onto the wire verbatim (one memcpy into the frame, one out — no
//! per-value work); hot blocks are transactionally materialized first, which
//! is why Flight degrades toward the vectorized protocol as the hot
//! fraction grows (Fig. 15).

use crate::materialize::block_batch;
use crate::transport::{ExportStats, Loopback};
use mainline_arrowlite::ipc;
use mainline_storage::raw_block::Block;
use mainline_txn::{DataTable, TransactionManager};

/// Encode one block as an IPC frame. Returns the frame bytes, whether the
/// frozen in-place path was used (evicted blocks fault in first), and the
/// number of occupied rows delivered. Shared by the in-process export and
/// `mainline-server`'s DoGet streaming path — a frozen block's frame here is
/// byte-identical to its checkpoint cold segment.
pub fn encode_block(
    manager: &TransactionManager,
    table: &DataTable,
    block: &Block,
) -> (Vec<u8>, bool, u64) {
    let (batch, frozen) = block_batch(manager, table, block);
    // Count delivered rows the same way the other protocols do: rows with
    // at least one valid attribute (gap projections excluded).
    let rows = (0..batch.num_rows())
        .filter(|&r| batch.columns().iter().any(|c| c.is_valid(r)))
        .count() as u64;
    (ipc::encode_batch(&batch), frozen, rows)
}

/// Export a table as IPC-framed Arrow batches, one per block.
pub fn export(manager: &TransactionManager, table: &DataTable) -> ExportStats {
    let mut wire = Loopback::new();
    let mut stats = ExportStats::default();
    for block in table.blocks() {
        let (frame, frozen, rows) = encode_block(manager, table, &block);
        if frozen {
            stats.frozen_blocks += 1;
        } else {
            stats.hot_blocks += 1;
        }
        stats.rows += rows;
        wire.send_owned(frame);
    }
    stats.bytes_transferred = wire.bytes_sent();

    // Client: reconstruct batches by wrapping buffers (no per-value parse).
    let mut client_rows = 0u64;
    for frame in wire.drain() {
        let batch = ipc::decode_batch(&frame).expect("valid IPC frame");
        client_rows += (0..batch.num_rows())
            .filter(|&r| batch.columns().iter().any(|c| c.is_valid(r)))
            .count() as u64;
    }
    debug_assert_eq!(client_rows, stats.rows);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::{TypeId, Value};
    use mainline_storage::block_state::BlockStateMachine;
    use mainline_storage::ProjectedRow;
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<TransactionManager>, Arc<mainline_txn::DataTable>) {
        let m = Arc::new(TransactionManager::new());
        let t = mainline_txn::DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::new("payload", TypeId::Varchar),
            ]),
        )
        .unwrap();
        let txn = m.begin();
        for i in 0..n {
            t.insert(
                &txn,
                &ProjectedRow::from_values(
                    &[TypeId::BigInt, TypeId::Varchar],
                    &[Value::BigInt(i as i64), Value::string(&format!("flight-payload-{i:06}"))],
                ),
            );
        }
        m.commit(&txn);
        (m, t)
    }

    #[test]
    fn hot_export_works() {
        let (m, t) = setup(500);
        let stats = export(&m, &t);
        assert_eq!(stats.rows, 500);
        assert_eq!(stats.hot_blocks, 1);
    }

    #[test]
    fn frozen_export_counts_frozen_blocks() {
        let (m, t) = setup(500);
        let mut gc = mainline_gc::GarbageCollector::new(Arc::clone(&m));
        gc.run();
        gc.run();
        let block = t.blocks()[0].clone();
        let h = block.header();
        assert!(BlockStateMachine::begin_cooling(h));
        assert!(BlockStateMachine::begin_freezing(h));
        unsafe {
            let d = mainline_transform::gather::gather_block(&block);
            BlockStateMachine::finish_freezing(h);
            d.free();
        }
        let stats = export(&m, &t);
        assert_eq!(stats.rows, 500);
        assert_eq!(stats.frozen_blocks, 1);
        assert_eq!(stats.hot_blocks, 0);
    }
}
