//! In-process loopback transport with byte accounting.
//!
//! The Fig. 15 experiment measures protocol + serialization cost, not NIC
//! silicon; the loopback delivers framed messages from "server" to "client"
//! through memcpys and counts every byte, which is exactly the work a
//! kernel-bypass transport would do per frame.

/// Accounting for one export run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExportStats {
    /// Bytes that crossed the (simulated) wire.
    pub bytes_transferred: u64,
    /// Rows delivered to the client.
    pub rows: u64,
    /// Blocks served from the frozen, in-place path.
    pub frozen_blocks: u64,
    /// Blocks that had to be transactionally materialized first.
    pub hot_blocks: u64,
}

/// A unidirectional in-process message pipe.
#[derive(Default)]
pub struct Loopback {
    frames: Vec<Vec<u8>>,
    bytes: u64,
}

impl Loopback {
    /// Empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Server side: send one frame (copied, like a socket write would).
    pub fn send(&mut self, frame: &[u8]) {
        self.bytes += frame.len() as u64;
        self.frames.push(frame.to_vec());
    }

    /// Server side: send an owned frame (zero-copy hand-off — the Flight
    /// case where buffers land in the client's space without re-framing).
    pub fn send_owned(&mut self, frame: Vec<u8>) {
        self.bytes += frame.len() as u64;
        self.frames.push(frame);
    }

    /// Client side: drain all frames.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.frames)
    }

    /// Total bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_bytes_and_preserves_order() {
        let mut p = Loopback::new();
        p.send(b"hello");
        p.send_owned(vec![1, 2, 3]);
        assert_eq!(p.bytes_sent(), 8);
        assert_eq!(p.len(), 2);
        let frames = p.drain();
        assert_eq!(frames[0], b"hello");
        assert_eq!(frames[1], vec![1, 2, 3]);
        assert!(p.is_empty());
        assert_eq!(p.bytes_sent(), 8, "drain does not reset accounting");
    }
}
