//! Raw 1 MB storage blocks, aligned at 1 MB boundaries (paper §3.2, Fig. 5).
//!
//! Alignment lets a [`crate::tuple_slot::TupleSlot`] pack the block pointer
//! and the slot offset into a single 64-bit word: the low 20 bits of any
//! block address are zero.
//!
//! The **block header** lives at the start of the block itself so the
//! transaction hot path never consults a side table:
//!
//! ```text
//! offset  0: u32  insert_head   (atomic) — next never-used slot
//! offset  4: u32  state word    (atomic) — packed residency latch:
//!                 bits 0–2  state (Hot/Cooling/Freezing/Frozen/Evicted/Faulting)
//!                 bit  3    clock reference bit (second-chance eviction)
//!                 bits 4–31 residency version (bumped on evict / fault-in)
//! offset  8: u32  reader_count  (atomic) — in-place Arrow readers (Fig. 7)
//! offset 12: u32  writer_count  (atomic) — in-flight in-place writers
//! offset 16: u64  layout pointer — *const BlockLayout owned by the table
//! offset 24: allocation bitmap, then per-column [null bitmap, data]
//! ```
//!
//! The state word is the `PageState`-style one-atomic-word latch: ordinary
//! state transitions (Hot ↔ Cooling ↔ Freezing ↔ Frozen) preserve the
//! version, while residency transitions (evict, fault-in) bump it — an
//! optimistic reader captures the word, reads block memory without pinning,
//! and re-validates the version afterwards; a version change means the bytes
//! it read may have been released mid-read and the copy must be retried.

use crate::layout::BlockLayout;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide freeze-stamp counter (see [`Block::stamp_freeze`]). Starting
/// at 1 keeps 0 free as the "never frozen" sentinel.
static NEXT_FREEZE_STAMP: AtomicU64 = AtomicU64::new(1);

/// The process's freeze-stamp era, drawn lazily on first use (see
/// [`freeze_era`]) or adopted from a restored checkpoint manifest before
/// first use (see [`adopt_freeze_era`]).
static FREEZE_ERA: std::sync::OnceLock<u64> = std::sync::OnceLock::new();

/// A quasi-unique identifier of this *process's* freeze-stamp namespace.
///
/// Stamps are unique within one process but restart the counter at 1, and
/// block base addresses are raw allocations that can recur across runs — so
/// `(base, stamp)` alone could collide between a checkpoint manifest written
/// by a previous process and blocks frozen by this one, and an incremental
/// checkpoint would silently reuse a stale frame for different content. The
/// era (wall-clock nanos mixed with ASLR address entropy, drawn once per
/// process) is recorded in every manifest; the writer reuses frames only
/// from manifests of its own era, so cross-process diffs conservatively
/// rewrite everything.
pub fn freeze_era() -> u64 {
    *FREEZE_ERA.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let aslr = &NEXT_FREEZE_STAMP as *const _ as u64;
        // splitmix64 finalizer over the combined entropy; never 0 (the
        // "unknown era" sentinel in old/hand-built manifests).
        let mut z = nanos ^ aslr.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)).max(1)
    })
}

/// Adopt `era` as this process's freeze-stamp era. Returns `true` if the
/// process era now equals `era` — either because this call installed it
/// (restart path, called before anything froze a block) or because it was
/// already adopted earlier (e.g. a second database restored from the same
/// root).
///
/// Restart calls this with the restored manifest's era, together with
/// [`advance_freeze_stamps_past`] and [`Block::adopt_freeze_stamp`], so
/// restored blocks keep their on-disk identities and the first post-restart
/// checkpoint diffs incrementally instead of rewriting every frame. If the
/// process already drew (or adopted) a different era, adoption fails and the
/// caller must fall back to fresh stamps — conservative and correct: the
/// next checkpoint rewrites everything, exactly the pre-adoption behavior.
pub fn adopt_freeze_era(era: u64) -> bool {
    if era == 0 {
        return false;
    }
    FREEZE_ERA.set(era).is_ok() || *FREEZE_ERA.get().unwrap() == era
}

/// Advance the process-wide freeze-stamp counter past `stamp`, so stamps
/// drawn after a restart never collide with stamps adopted from the restored
/// checkpoint image (the two live in the same era after
/// [`adopt_freeze_era`]).
pub fn advance_freeze_stamps_past(stamp: u64) {
    NEXT_FREEZE_STAMP.fetch_max(stamp.saturating_add(1), Ordering::Relaxed);
}

/// Block size and alignment: 1 MB.
pub const BLOCK_SIZE: usize = 1 << 20;

/// Number of low-order zero bits in any block address.
pub const BLOCK_ALIGN_BITS: u32 = 20;

/// Bytes reserved for the fixed block header.
pub const HEADER_SIZE: usize = 24;

/// Byte offsets of the header fields.
mod header {
    pub const INSERT_HEAD: usize = 0;
    pub const STATE: usize = 4;
    pub const READER_COUNT: usize = 8;
    pub const WRITER_COUNT: usize = 12;
    pub const LAYOUT_PTR: usize = 16;
}

/// Mask of the state bits inside the packed state word.
pub const STATE_MASK: u32 = 0b111;

/// The clock/second-chance reference bit inside the packed state word. Set
/// on frozen-block access, cleared (and tested) by the eviction clock hand.
pub const REF_BIT: u32 = 1 << 3;

/// Bit position of the residency version inside the packed state word.
pub const VERSION_SHIFT: u32 = 4;

/// State bits of a packed state word.
#[inline]
pub fn word_state(word: u32) -> u32 {
    word & STATE_MASK
}

/// Residency version of a packed state word (28 bits, wrapping).
#[inline]
pub fn word_version(word: u32) -> u32 {
    word >> VERSION_SHIFT
}

/// The same word with its state bits replaced (version and reference bit
/// preserved) — ordinary lifecycle transitions.
#[inline]
pub fn word_with_state(word: u32, state: u32) -> u32 {
    (word & !STATE_MASK) | state
}

/// A word with the version bumped, the reference bit cleared, and the given
/// state bits — residency transitions (evict, fault-in completion).
#[inline]
pub fn word_bumped(word: u32, state: u32) -> u32 {
    (word_version(word).wrapping_add(1) << VERSION_SHIFT) | state
}

/// An owning handle to one raw, 1 MB-aligned, zero-initialized block.
pub struct RawBlock {
    ptr: NonNull<u8>,
}

unsafe impl Send for RawBlock {}
unsafe impl Sync for RawBlock {}

impl RawBlock {
    /// Allocate a zeroed block and stamp the layout pointer into its header.
    ///
    /// The caller must keep `layout` alive for as long as the block exists;
    /// tables guarantee this by owning both (blocks never outlive the table).
    pub fn new(layout: &Arc<BlockLayout>) -> Self {
        let mem_layout = Layout::from_size_align(BLOCK_SIZE, BLOCK_SIZE).unwrap();
        let raw = unsafe { alloc_zeroed(mem_layout) };
        let ptr = NonNull::new(raw).expect("block allocation failed");
        debug_assert_eq!(raw as usize % BLOCK_SIZE, 0, "allocator must honour 1MB alignment");
        let block = RawBlock { ptr };
        unsafe {
            (raw.add(header::LAYOUT_PTR) as *mut u64).write(Arc::as_ptr(layout) as usize as u64);
        }
        block
    }

    /// Base pointer of the block.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Recover the layout from the header.
    ///
    /// # Safety
    /// The layout Arc stamped at construction must still be alive.
    #[inline]
    pub unsafe fn layout<'a>(&self) -> &'a BlockLayout {
        layout_of(self.ptr.as_ptr())
    }
}

impl Drop for RawBlock {
    fn drop(&mut self) {
        unsafe {
            dealloc(self.ptr.as_ptr(), Layout::from_size_align(BLOCK_SIZE, BLOCK_SIZE).unwrap())
        }
    }
}

/// Read the layout pointer out of a raw block address.
///
/// # Safety
/// `block` must be a live block created by [`RawBlock::new`] whose layout is
/// still alive.
#[inline]
pub unsafe fn layout_of<'a>(block: *const u8) -> &'a BlockLayout {
    let raw = (block.add(header::LAYOUT_PTR) as *const u64).read() as usize;
    &*(raw as *const BlockLayout)
}

/// Typed access to the atomic header fields of a block address.
#[derive(Clone, Copy)]
pub struct BlockHeader {
    base: *mut u8,
}

unsafe impl Send for BlockHeader {}

impl BlockHeader {
    /// Wrap a block base address.
    ///
    /// # Safety
    /// `base` must point at a live block for the lifetime of all uses.
    #[inline]
    pub unsafe fn new(base: *mut u8) -> Self {
        BlockHeader { base }
    }

    #[inline]
    fn atomic(&self, off: usize) -> &AtomicU32 {
        unsafe { &*(self.base.add(off) as *const AtomicU32) }
    }

    /// The insert head: index of the next never-allocated slot.
    #[inline]
    pub fn insert_head(&self) -> u32 {
        self.atomic(header::INSERT_HEAD).load(Ordering::Acquire)
    }

    /// Claim `n` fresh slots; returns the first claimed index (may exceed
    /// `num_slots`, in which case the caller must try another block).
    #[inline]
    pub fn claim_slots(&self, n: u32) -> u32 {
        self.atomic(header::INSERT_HEAD).fetch_add(n, Ordering::AcqRel)
    }

    /// Set the insert head (used by recovery and compaction bookkeeping).
    #[inline]
    pub fn set_insert_head(&self, v: u32) {
        self.atomic(header::INSERT_HEAD).store(v, Ordering::Release)
    }

    /// Raw state flag (see [`crate::block_state::BlockState`]): the state
    /// bits of the packed word. SeqCst: see [`Self::writer_count`].
    #[inline]
    pub fn state_raw(&self) -> u32 {
        word_state(self.state_word())
    }

    /// The full packed state word (state bits + reference bit + residency
    /// version).
    #[inline]
    pub fn state_word(&self) -> u32 {
        self.atomic(header::STATE).load(Ordering::SeqCst)
    }

    /// CAS the full packed state word.
    #[inline]
    pub fn cas_state_word(&self, from: u32, to: u32) -> bool {
        self.atomic(header::STATE)
            .compare_exchange(from, to, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Overwrite the entire packed state word (state bits + reference bit +
    /// residency version). Restore / model-checking use only — live
    /// transitions must go through the CAS helpers, which preserve the bits
    /// they do not own.
    #[inline]
    pub fn set_state_word(&self, w: u32) {
        self.atomic(header::STATE).store(w, Ordering::SeqCst);
    }

    /// Store the raw state flag, preserving the version and reference bit.
    #[inline]
    pub fn set_state_raw(&self, v: u32) {
        let _ = self
            .atomic(header::STATE)
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| Some(word_with_state(w, v)));
    }

    /// CAS on the state bits, preserving the version and reference bit.
    /// Retries internally if only the non-state bits changed underneath.
    #[inline]
    pub fn cas_state_raw(&self, from: u32, to: u32) -> bool {
        let a = self.atomic(header::STATE);
        let mut w = a.load(Ordering::SeqCst);
        loop {
            if word_state(w) != from {
                return false;
            }
            match a.compare_exchange(w, word_with_state(w, to), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(cur) => w = cur,
            }
        }
    }

    /// CAS on the state bits that also bumps the residency version and
    /// clears the reference bit — the evict / fault-in transitions.
    #[inline]
    pub fn cas_state_bump(&self, from: u32, to: u32) -> bool {
        let a = self.atomic(header::STATE);
        let mut w = a.load(Ordering::SeqCst);
        loop {
            if word_state(w) != from {
                return false;
            }
            match a.compare_exchange(w, word_bumped(w, to), Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(cur) => w = cur,
            }
        }
    }

    /// Set the clock reference bit (recent frozen-block access).
    #[inline]
    pub fn set_ref_bit(&self) {
        self.atomic(header::STATE).fetch_or(REF_BIT, Ordering::Relaxed);
    }

    /// Clear the clock reference bit and report whether it was set — the
    /// second-chance test of the eviction clock hand.
    #[inline]
    pub fn take_ref_bit(&self) -> bool {
        self.atomic(header::STATE).fetch_and(!REF_BIT, Ordering::Relaxed) & REF_BIT != 0
    }

    /// Number of in-place readers currently in the block.
    #[inline]
    pub fn reader_count(&self) -> u32 {
        self.atomic(header::READER_COUNT).load(Ordering::Acquire)
    }

    /// Register an in-place reader.
    #[inline]
    pub fn inc_readers(&self) {
        self.atomic(header::READER_COUNT).fetch_add(1, Ordering::AcqRel);
    }

    /// Deregister an in-place reader.
    #[inline]
    pub fn dec_readers(&self) {
        self.atomic(header::READER_COUNT).fetch_sub(1, Ordering::AcqRel);
    }

    /// Number of writers currently mid-operation in the block.
    ///
    /// SeqCst pairs with the freeze path's state CAS: a writer that passed
    /// its post-increment state re-check is guaranteed visible to a freeze
    /// that follows, closing the Fig. 9 check-and-miss window even for
    /// blocks the compaction transaction never wrote to.
    #[inline]
    pub fn writer_count(&self) -> u32 {
        self.atomic(header::WRITER_COUNT).load(Ordering::SeqCst)
    }

    /// Register an in-flight writer.
    #[inline]
    pub fn inc_writers(&self) {
        self.atomic(header::WRITER_COUNT).fetch_add(1, Ordering::SeqCst);
    }

    /// Deregister an in-flight writer.
    #[inline]
    pub fn dec_writers(&self) {
        self.atomic(header::WRITER_COUNT).fetch_sub(1, Ordering::SeqCst);
    }
}

/// A block plus its side state: the owning handle used by tables.
///
/// The raw memory holds everything transactions touch; `arrow` holds the
/// canonical Arrow buffers installed by the gathering phase (§4.3), which
/// must live outside the 1 MB budget because varlen values have unbounded
/// total size.
pub struct Block {
    raw: RawBlock,
    layout: Arc<BlockLayout>,
    /// Canonical Arrow varlen storage per column, installed when frozen.
    pub arrow: crate::arrow_side::ArrowSide,
    /// Identity of the block's current frozen content: a process-unique
    /// stamp drawn on every freeze (0 = never frozen). A frozen block's
    /// bytes are immutable until a writer thaws it, and re-freezing draws a
    /// fresh stamp, so `(base address, stamp)` names one immutable content
    /// version — which is what lets incremental checkpoints skip blocks the
    /// previous checkpoint already captured. Process-wide uniqueness (one
    /// global counter, never per block) also makes the pair collision-free
    /// when an address is recycled by a later allocation.
    freeze_stamp: AtomicU64,
    /// Where this block's frozen bytes live in the checkpoint chain, if a
    /// checkpoint has captured them (see [`crate::residency`]). A block is
    /// evictable only while the recorded stamp matches [`Self::freeze_stamp`]
    /// — a thaw + refreeze makes the location stale until the next
    /// checkpoint records a fresh one.
    cold_location: parking_lot::Mutex<Option<crate::residency::ColdLocation>>,
    /// Bytes charged to the memory accountant for this block's frozen
    /// content (0 = not charged). Set at freeze, kept across evict/fault
    /// (the charge just moves between the resident and evicted gauges), and
    /// taken exactly once at thaw or table drop.
    charged_bytes: AtomicU64,
}

impl Block {
    /// Allocate a block for the given layout.
    pub fn new(layout: Arc<BlockLayout>) -> Arc<Block> {
        let raw = RawBlock::new(&layout);
        Arc::new(Block {
            raw,
            layout,
            arrow: crate::arrow_side::ArrowSide::new(),
            freeze_stamp: AtomicU64::new(0),
            cold_location: parking_lot::Mutex::new(None),
            charged_bytes: AtomicU64::new(0),
        })
    }

    /// The stamp of the current frozen content (0 if never frozen, stale if
    /// the block has been thawed since). Read it only while holding the
    /// block in a state that pins the content — e.g. under
    /// [`reader_acquire`](crate::block_state::BlockStateMachine::reader_acquire).
    #[inline]
    pub fn freeze_stamp(&self) -> u64 {
        self.freeze_stamp.load(Ordering::Acquire)
    }

    /// Draw a fresh process-unique stamp for this block's new frozen
    /// content. The freezer calls this after gathering, *before* publishing
    /// the `Frozen` state, so any reader that observes `Frozen` also
    /// observes the matching stamp.
    pub fn stamp_freeze(&self) -> u64 {
        let stamp = NEXT_FREEZE_STAMP.fetch_add(1, Ordering::Relaxed);
        self.freeze_stamp.store(stamp, Ordering::Release);
        stamp
    }

    /// Adopt a stamp restored from a checkpoint image (restart path, after a
    /// successful [`adopt_freeze_era`]): the block keeps its on-disk frozen
    /// identity, and the global counter is advanced past it so later fresh
    /// stamps cannot collide.
    pub fn adopt_freeze_stamp(&self, stamp: u64) {
        advance_freeze_stamps_past(stamp);
        self.freeze_stamp.store(stamp, Ordering::Release);
    }

    /// Where this block's frozen bytes live in the checkpoint chain, if
    /// recorded (see [`crate::residency::ColdLocation`]).
    pub fn cold_location(&self) -> Option<crate::residency::ColdLocation> {
        self.cold_location.lock().clone()
    }

    /// Record the checkpoint-chain location of this block's current frozen
    /// content. The caller must have captured `loc.stamp` while the content
    /// was pinned (reader count or exclusive state).
    pub fn set_cold_location(&self, loc: crate::residency::ColdLocation) {
        *self.cold_location.lock() = Some(loc);
    }

    /// Conditionally repoint the recorded chain location at a rewritten copy
    /// of the *same* frozen content — the chain compactor's half of the
    /// retarget protocol. The swap happens only while the currently recorded
    /// location still carries `stamp` (the content identity the compactor
    /// rewrote); a block that was thawed, refrozen, or re-checkpointed since
    /// the compactor planned keeps whatever newer location it has. Returns
    /// whether the location was replaced.
    ///
    /// The stamp guard means the replacement is an identity-preserving move:
    /// `new.stamp` must equal `stamp`, so evictability
    /// (`location stamp == live freeze stamp`) is unchanged by the swap, and
    /// a concurrent [`fault_in`]-style reader that captured the *old*
    /// location simply re-reads after its file disappears (the compactor
    /// retargets strictly before it prunes).
    ///
    /// [`fault_in`]: crate::block_state::BlockStateMachine::begin_fault
    pub fn retarget_cold_location(&self, stamp: u64, new: crate::residency::ColdLocation) -> bool {
        debug_assert_eq!(new.stamp, stamp, "retarget must preserve content identity");
        let mut slot = self.cold_location.lock();
        match slot.as_ref() {
            Some(cur) if stamp != 0 && cur.stamp == stamp => {
                *slot = Some(new);
                true
            }
            _ => false,
        }
    }

    /// Bytes currently charged to the memory accountant for this block.
    #[inline]
    pub fn charged_bytes(&self) -> u64 {
        self.charged_bytes.load(Ordering::Acquire)
    }

    /// Record the accountant charge (freeze path).
    #[inline]
    pub fn set_charged_bytes(&self, bytes: u64) {
        self.charged_bytes.store(bytes, Ordering::Release);
    }

    /// Take the accountant charge, zeroing it — idempotent, so racing
    /// thaw/drop paths debit the accountant exactly once.
    #[inline]
    pub fn take_charged_bytes(&self) -> u64 {
        self.charged_bytes.swap(0, Ordering::AcqRel)
    }

    /// Base address.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.raw.as_ptr()
    }

    /// The table layout (shared).
    #[inline]
    pub fn layout(&self) -> &Arc<BlockLayout> {
        &self.layout
    }

    /// Header accessor.
    #[inline]
    pub fn header(&self) -> BlockHeader {
        unsafe { BlockHeader::new(self.raw.as_ptr()) }
    }

    /// Measured byte footprint of this block's live contents: the
    /// fixed-size region reachable through the insert head (see
    /// [`BlockLayout::bytes_for_slots`](crate::layout::BlockLayout::bytes_for_slots))
    /// plus every out-of-line varlen buffer held by an allocated,
    /// non-NULL slot.
    ///
    /// The figure is a snapshot: concurrent writers may race the scan, so
    /// treat it as an estimate. Only the 16-byte varlen *entry* is read —
    /// never the buffer it points to — and each length is clamped to
    /// [`BLOCK_SIZE`] so a torn entry read cannot produce an absurd value.
    /// The transformation pipeline uses this to charge the pending-bytes
    /// backpressure gauge with real bytes instead of a flat 1 MB per block.
    pub fn live_bytes(&self) -> usize {
        let slots = self.header().insert_head().min(self.layout.num_slots());
        let mut bytes = self.layout.bytes_for_slots(slots);
        let base = self.as_ptr();
        for col in self.layout.varlen_cols() {
            for slot in 0..slots {
                unsafe {
                    if !crate::access::is_allocated(base, &self.layout, slot)
                        || crate::access::is_null(base, &self.layout, slot, col)
                    {
                        continue;
                    }
                    let e = crate::access::read_varlen(base, &self.layout, slot, col);
                    if !e.is_inlined() {
                        bytes += e.len().min(BLOCK_SIZE);
                    }
                }
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::TypeId;

    fn layout() -> Arc<BlockLayout> {
        Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![
                ColumnDef::new("a", TypeId::BigInt),
                ColumnDef::new("b", TypeId::Varchar),
            ]))
            .unwrap(),
        )
    }

    #[test]
    fn alignment_invariant() {
        let l = layout();
        for _ in 0..4 {
            let b = RawBlock::new(&l);
            assert_eq!(b.as_ptr() as usize % BLOCK_SIZE, 0);
        }
    }

    #[test]
    fn zero_initialized() {
        let l = layout();
        let b = RawBlock::new(&l);
        let bytes = unsafe { std::slice::from_raw_parts(b.as_ptr().add(HEADER_SIZE), 4096) };
        assert!(bytes.iter().all(|&x| x == 0));
    }

    #[test]
    fn layout_pointer_roundtrip() {
        let l = layout();
        let b = RawBlock::new(&l);
        let got = unsafe { b.layout() };
        assert_eq!(got.num_slots(), l.num_slots());
        let via_fn = unsafe { layout_of(b.as_ptr()) };
        assert_eq!(via_fn.num_cols(), l.num_cols());
    }

    #[test]
    fn header_atomics() {
        let l = layout();
        let b = RawBlock::new(&l);
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        assert_eq!(h.insert_head(), 0);
        assert_eq!(h.claim_slots(3), 0);
        assert_eq!(h.claim_slots(1), 3);
        assert_eq!(h.insert_head(), 4);
        h.set_insert_head(10);
        assert_eq!(h.insert_head(), 10);

        assert_eq!(h.state_raw(), 0);
        assert!(h.cas_state_raw(0, 2));
        assert!(!h.cas_state_raw(0, 3));
        h.set_state_raw(1);
        assert_eq!(h.state_raw(), 1);

        assert_eq!(h.reader_count(), 0);
        h.inc_readers();
        h.inc_readers();
        assert_eq!(h.reader_count(), 2);
        h.dec_readers();
        assert_eq!(h.reader_count(), 1);
    }

    #[test]
    fn live_bytes_tracks_occupancy() {
        use crate::access;
        use crate::VarlenEntry;
        let b = Block::new(layout());
        // Empty block: just the header.
        assert_eq!(b.live_bytes(), HEADER_SIZE);
        let h = b.header();
        let l = b.layout().clone();
        // Claim 100 slots of fixed data: footprint is the slot prefix.
        h.claim_slots(100);
        let fixed_only = b.live_bytes();
        assert_eq!(fixed_only, l.bytes_for_slots(100));
        // An allocated out-of-line varlen adds its buffer; an inlined or
        // unallocated one does not.
        unsafe {
            access::set_allocated(b.as_ptr(), &l, 0);
            access::write_varlen(b.as_ptr(), &l, 0, 2, VarlenEntry::from_bytes(b"tiny"));
            assert_eq!(b.live_bytes(), fixed_only, "inlined varlen adds nothing");
            let long = vec![b'x'; 1000];
            let e = VarlenEntry::from_bytes(&long);
            access::write_varlen(b.as_ptr(), &l, 0, 2, e);
            assert_eq!(b.live_bytes(), fixed_only + 1000);
            // Same entry in an *unallocated* slot is not charged.
            access::write_varlen(b.as_ptr(), &l, 1, 2, e);
            assert_eq!(b.live_bytes(), fixed_only + 1000);
            e.free_buffer();
        }
    }

    #[test]
    fn concurrent_slot_claims_are_disjoint() {
        use std::collections::HashSet;
        let l = layout();
        let b = Arc::new(RawBlock::new(&l));
        let mut handles = vec![];
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let h = unsafe { BlockHeader::new(b.as_ptr()) };
                (0..1000).map(|_| h.claim_slots(1)).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for s in h.join().unwrap() {
                assert!(seen.insert(s));
            }
        }
        assert_eq!(seen.len(), 8000);
    }
}
