//! Tuple-access strategy: raw readers/writers over `(block, layout, slot)`.
//!
//! All data inside a block is reached through these functions. Attribute
//! addresses are computed in constant time from the pre-calculated layout
//! (paper §3.2). Every attribute and bitmap is 8-byte aligned, which is what
//! makes the gathering phase's concurrent in-place pointer rewrites safe
//! ("a write to any aligned 8-byte address is atomic on a modern
//! architecture", §4.3).

use crate::layout::BlockLayout;
use crate::varlen::VarlenEntry;
use mainline_common::bitmap::atomic as abit;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pointer to the attribute of column `col` in slot `slot`.
///
/// # Safety
/// `block` must be a live block using `layout`; `slot < layout.num_slots()`;
/// `col < layout.num_cols()`.
#[inline]
pub unsafe fn attr_ptr(block: *mut u8, layout: &BlockLayout, slot: u32, col: u16) -> *mut u8 {
    debug_assert!(slot < layout.num_slots());
    block.add(layout.column_offset(col) as usize + slot as usize * layout.attr_size(col) as usize)
}

/// The version-pointer cell of a slot, viewed as an `AtomicU64` (§3.1: the
/// version chain head lives in a hidden column).
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn version_ptr(block: *mut u8, layout: &BlockLayout, slot: u32) -> &'static AtomicU64 {
    &*(attr_ptr(block, layout, slot, crate::layout::VERSION_COL) as *const AtomicU64)
}

/// Read an attribute's raw image (up to 16 bytes) into `out`.
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn read_attr(
    block: *mut u8,
    layout: &BlockLayout,
    slot: u32,
    col: u16,
    out: &mut [u8; 16],
) {
    let p = attr_ptr(block, layout, slot, col);
    let n = layout.attr_size(col) as usize;
    std::ptr::copy_nonoverlapping(p, out.as_mut_ptr(), n);
}

/// Write an attribute's raw image from `img`.
///
/// # Safety
/// Same contract as [`attr_ptr`]. Concurrency safety comes from the MVCC
/// protocol: only the version-chain owner writes a tuple in place.
#[inline]
pub unsafe fn write_attr(
    block: *mut u8,
    layout: &BlockLayout,
    slot: u32,
    col: u16,
    img: &[u8; 16],
) {
    let p = attr_ptr(block, layout, slot, col);
    let n = layout.attr_size(col) as usize;
    std::ptr::copy_nonoverlapping(img.as_ptr(), p, n);
}

/// Read a varlen entry by value.
///
/// # Safety
/// Same contract as [`attr_ptr`]; `col` must be a varlen column.
#[inline]
pub unsafe fn read_varlen(
    block: *mut u8,
    layout: &BlockLayout,
    slot: u32,
    col: u16,
) -> VarlenEntry {
    debug_assert!(layout.is_varlen(col));
    (attr_ptr(block, layout, slot, col) as *const VarlenEntry).read()
}

/// Overwrite a varlen entry.
///
/// # Safety
/// Same contract as [`read_varlen`].
#[inline]
pub unsafe fn write_varlen(
    block: *mut u8,
    layout: &BlockLayout,
    slot: u32,
    col: u16,
    e: VarlenEntry,
) {
    (attr_ptr(block, layout, slot, col) as *mut VarlenEntry).write(e);
}

/// NULL bit of `(slot, col)`: true = NULL.
///
/// Stored inverted relative to Arrow (Arrow bitmaps mark *valid* entries);
/// the block-to-Arrow projection flips it. A zeroed block therefore starts
/// with every attribute non-NULL, matching "insert fills all attributes".
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn is_null(block: *mut u8, layout: &BlockLayout, slot: u32, col: u16) -> bool {
    abit::get(block.add(layout.bitmap_offset(col) as usize), slot as usize)
}

/// Set/clear the NULL bit.
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn set_null(block: *mut u8, layout: &BlockLayout, slot: u32, col: u16, null: bool) {
    let base = block.add(layout.bitmap_offset(col) as usize);
    if null {
        abit::fetch_set(base, slot as usize);
    } else {
        abit::fetch_clear(base, slot as usize);
    }
}

/// Allocation bit of a slot: true = slot holds a (latest-version) tuple.
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn is_allocated(block: *mut u8, layout: &BlockLayout, slot: u32) -> bool {
    abit::get(block.add(layout.alloc_bitmap_offset() as usize), slot as usize)
}

/// Atomically set the allocation bit; returns the previous value.
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn set_allocated(block: *mut u8, layout: &BlockLayout, slot: u32) -> bool {
    abit::fetch_set(block.add(layout.alloc_bitmap_offset() as usize), slot as usize)
}

/// Atomically clear the allocation bit; returns the previous value.
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn clear_allocated(block: *mut u8, layout: &BlockLayout, slot: u32) -> bool {
    abit::fetch_clear(block.add(layout.alloc_bitmap_offset() as usize), slot as usize)
}

/// Load the version-chain head with acquire ordering.
///
/// # Safety
/// Same contract as [`attr_ptr`].
#[inline]
pub unsafe fn load_version(block: *mut u8, layout: &BlockLayout, slot: u32) -> u64 {
    version_ptr(block, layout, slot).load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw_block::RawBlock;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::TypeId;
    use std::sync::Arc;

    fn setup() -> (Arc<BlockLayout>, RawBlock) {
        let l = Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![
                ColumnDef::new("a", TypeId::BigInt),
                ColumnDef::nullable("v", TypeId::Varchar),
                ColumnDef::new("c", TypeId::Integer),
            ]))
            .unwrap(),
        );
        let b = RawBlock::new(&l);
        (l, b)
    }

    #[test]
    fn attr_addresses_disjoint_and_aligned() {
        let (l, b) = setup();
        unsafe {
            let mut seen = std::collections::HashSet::new();
            for slot in [0u32, 1, 2, l.num_slots() - 1] {
                for col in 0..l.num_cols() as u16 {
                    let p = attr_ptr(b.as_ptr(), &l, slot, col) as usize;
                    assert_eq!(p % (l.attr_size(col).min(8) as usize), 0);
                    assert!(seen.insert(p), "aliased attribute address");
                    assert!(
                        p + l.attr_size(col) as usize
                            <= b.as_ptr() as usize + crate::raw_block::BLOCK_SIZE
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_attr_roundtrip() {
        let (l, b) = setup();
        unsafe {
            let mut img = [0u8; 16];
            img[..8].copy_from_slice(&0x1122334455667788u64.to_le_bytes());
            write_attr(b.as_ptr(), &l, 5, 1, &img);
            let mut out = [0u8; 16];
            read_attr(b.as_ptr(), &l, 5, 1, &mut out);
            assert_eq!(out[..8], img[..8]);
            // Neighbouring slots untouched.
            read_attr(b.as_ptr(), &l, 4, 1, &mut out);
            assert_eq!(out[..8], [0u8; 8]);
            read_attr(b.as_ptr(), &l, 6, 1, &mut out);
            assert_eq!(out[..8], [0u8; 8]);
        }
    }

    #[test]
    fn varlen_attr_roundtrip() {
        let (l, b) = setup();
        unsafe {
            let e = VarlenEntry::from_bytes(b"hello arrow storage!");
            write_varlen(b.as_ptr(), &l, 7, 2, e);
            let got = read_varlen(b.as_ptr(), &l, 7, 2);
            assert!(got.bits_eq(&e));
            assert_eq!(got.as_slice(), b"hello arrow storage!");
            e.free_buffer();
        }
    }

    #[test]
    fn null_bits() {
        let (l, b) = setup();
        unsafe {
            assert!(!is_null(b.as_ptr(), &l, 3, 2));
            set_null(b.as_ptr(), &l, 3, 2, true);
            assert!(is_null(b.as_ptr(), &l, 3, 2));
            assert!(!is_null(b.as_ptr(), &l, 2, 2));
            assert!(!is_null(b.as_ptr(), &l, 4, 2));
            set_null(b.as_ptr(), &l, 3, 2, false);
            assert!(!is_null(b.as_ptr(), &l, 3, 2));
        }
    }

    #[test]
    fn allocation_bits() {
        let (l, b) = setup();
        unsafe {
            assert!(!is_allocated(b.as_ptr(), &l, 0));
            assert!(!set_allocated(b.as_ptr(), &l, 0));
            assert!(is_allocated(b.as_ptr(), &l, 0));
            assert!(set_allocated(b.as_ptr(), &l, 0)); // idempotent, reports prior
            assert!(clear_allocated(b.as_ptr(), &l, 0));
            assert!(!is_allocated(b.as_ptr(), &l, 0));
        }
    }

    #[test]
    fn version_pointer_atomic() {
        let (l, b) = setup();
        unsafe {
            let v = version_ptr(b.as_ptr(), &l, 9);
            assert_eq!(v.load(Ordering::Relaxed), 0);
            v.store(0xABCD, Ordering::Release);
            assert_eq!(load_version(b.as_ptr(), &l, 9), 0xABCD);
            // Distinct per slot.
            assert_eq!(load_version(b.as_ptr(), &l, 8), 0);
        }
    }
}
