//! Projected rows: materialized partial tuples.
//!
//! A `ProjectedRow` names a subset of a table's storage columns and carries a
//! raw attribute image (≤ 16 bytes) plus a NULL flag for each. It is used as
//!
//! * the **input** of inserts and updates (the "delta" a transaction wants to
//!   apply),
//! * the **output** of `select` (the materialized version visible to the
//!   reader, §3.1 "early materialization"),
//! * the **before-image payload** of undo records and the after-image of
//!   redo records (copied bit-wise in and out of buffer segments).
//!
//! Varlen attributes are represented by their 16-byte `VarlenEntry` image;
//! ownership of out-of-line buffers is tracked by the transaction layer.

use crate::layout::BlockLayout;
use crate::varlen::VarlenEntry;
use mainline_common::value::{TypeId, Value};

/// One attribute image within a projected row.
#[derive(Clone, Copy)]
pub struct AttrImage {
    /// Storage column id (1-based; 0 is the hidden version column).
    pub col: u16,
    /// NULL flag.
    pub null: bool,
    /// Raw attribute bytes (first `attr_size` bytes are meaningful).
    pub image: [u8; 16],
}

impl AttrImage {
    /// Interpret the image as a varlen entry.
    #[inline]
    pub fn as_varlen(&self) -> VarlenEntry {
        unsafe { std::mem::transmute::<[u8; 16], VarlenEntry>(self.image) }
    }

    /// Build an image from a varlen entry.
    #[inline]
    pub fn from_varlen(col: u16, null: bool, e: VarlenEntry) -> Self {
        AttrImage { col, null, image: unsafe { std::mem::transmute::<VarlenEntry, [u8; 16]>(e) } }
    }
}

impl std::fmt::Debug for AttrImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AttrImage(col={}, null={})", self.col, self.null)
    }
}

/// A partial row over a table's storage columns.
#[derive(Debug, Clone, Default)]
pub struct ProjectedRow {
    attrs: Vec<AttrImage>,
}

impl ProjectedRow {
    /// Empty projection.
    pub fn new() -> Self {
        ProjectedRow { attrs: Vec::new() }
    }

    /// Projection pre-sized for `n` columns.
    pub fn with_capacity(n: usize) -> Self {
        ProjectedRow { attrs: Vec::with_capacity(n) }
    }

    /// Attribute images in insertion order.
    pub fn attrs(&self) -> &[AttrImage] {
        &self.attrs
    }

    /// Mutable access (used by select to materialize in place).
    pub fn attrs_mut(&mut self) -> &mut [AttrImage] {
        &mut self.attrs
    }

    /// Number of projected columns.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when no columns are projected.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Find the position of storage column `col`.
    pub fn find(&self, col: u16) -> Option<usize> {
        self.attrs.iter().position(|a| a.col == col)
    }

    /// Append a raw image.
    pub fn push_raw(&mut self, col: u16, null: bool, image: [u8; 16]) {
        debug_assert!(self.find(col).is_none(), "duplicate column {col}");
        self.attrs.push(AttrImage { col, null, image });
    }

    /// Append a NULL attribute.
    pub fn push_null(&mut self, col: u16) {
        self.push_raw(col, true, [0u8; 16]);
    }

    /// Append a fixed-width attribute from a logical value.
    ///
    /// Panics if the value is varlen (use [`Self::push_varlen`]).
    pub fn push_fixed(&mut self, col: u16, v: &Value) {
        let mut image = [0u8; 16];
        v.encode_fixed(&mut image);
        self.push_raw(col, false, image);
    }

    /// Append a varlen attribute image.
    pub fn push_varlen(&mut self, col: u16, e: VarlenEntry) {
        self.attrs.push(AttrImage::from_varlen(col, false, e));
    }

    /// Build a full-row projection from logical values (insert path).
    ///
    /// `types[i]` describes user column `i` (storage column `i + 1`). Varlen
    /// values allocate owning entries — ownership passes to the caller (the
    /// transaction layer transfers it into the table on insert).
    pub fn from_values(types: &[TypeId], values: &[Value]) -> Self {
        assert_eq!(types.len(), values.len());
        let mut row = ProjectedRow::with_capacity(values.len());
        for (i, (ty, v)) in types.iter().zip(values).enumerate() {
            let col = (i + 1) as u16;
            assert!(v.compatible_with(*ty), "column {col}: {v:?} vs {ty:?}");
            match v {
                Value::Null => row.push_null(col),
                Value::Varchar(bytes) => row.push_varlen(col, VarlenEntry::from_bytes(bytes)),
                other => row.push_fixed(col, other),
            }
        }
        row
    }

    /// Decode one attribute back into a logical value.
    ///
    /// # Safety
    /// For varlen attributes, the entry's buffer must still be alive.
    pub unsafe fn value_at(&self, idx: usize, layout: &BlockLayout, ty: TypeId) -> Value {
        let a = &self.attrs[idx];
        if a.null {
            return Value::Null;
        }
        if layout.is_varlen(a.col) {
            Value::Varchar(a.as_varlen().to_vec())
        } else {
            Value::decode_fixed(ty, &a.image[..layout.attr_size(a.col) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};

    fn layout() -> BlockLayout {
        BlockLayout::from_schema(&Schema::new(vec![
            ColumnDef::new("a", TypeId::BigInt),
            ColumnDef::nullable("v", TypeId::Varchar),
            ColumnDef::new("c", TypeId::Integer),
        ]))
        .unwrap()
    }

    #[test]
    fn from_values_roundtrip() {
        let l = layout();
        let types = [TypeId::BigInt, TypeId::Varchar, TypeId::Integer];
        let values =
            vec![Value::BigInt(42), Value::string("a rather long string here"), Value::Integer(-7)];
        let row = ProjectedRow::from_values(&types, &values);
        assert_eq!(row.len(), 3);
        unsafe {
            assert_eq!(row.value_at(0, &l, TypeId::BigInt), values[0]);
            assert_eq!(row.value_at(1, &l, TypeId::Varchar), values[1]);
            assert_eq!(row.value_at(2, &l, TypeId::Integer), values[2]);
            // Clean up the owning entry.
            row.attrs()[1].as_varlen().free_buffer();
        }
    }

    #[test]
    fn null_attrs() {
        let l = layout();
        let types = [TypeId::BigInt, TypeId::Varchar, TypeId::Integer];
        let values = vec![Value::BigInt(1), Value::Null, Value::Integer(2)];
        let row = ProjectedRow::from_values(&types, &values);
        assert!(row.attrs()[1].null);
        unsafe {
            assert_eq!(row.value_at(1, &l, TypeId::Varchar), Value::Null);
        }
    }

    #[test]
    fn find_by_column() {
        let types = [TypeId::BigInt, TypeId::Varchar, TypeId::Integer];
        let values = vec![Value::BigInt(1), Value::Null, Value::Integer(2)];
        let row = ProjectedRow::from_values(&types, &values);
        assert_eq!(row.find(1), Some(0));
        assert_eq!(row.find(3), Some(2));
        assert_eq!(row.find(0), None);
        assert_eq!(row.find(9), None);
    }

    #[test]
    fn varlen_image_transmute_roundtrip() {
        let e = VarlenEntry::from_bytes(b"short");
        let img = AttrImage::from_varlen(4, false, e);
        assert_eq!(img.col, 4);
        let back = img.as_varlen();
        assert!(back.bits_eq(&e));
        assert_eq!(unsafe { back.as_slice() }, b"short");
    }

    #[test]
    #[should_panic]
    fn type_mismatch_rejected() {
        ProjectedRow::from_values(&[TypeId::BigInt], &[Value::Integer(1)]);
    }
}
