//! Per-block canonical Arrow side storage (paper §4.3 "Gathering").
//!
//! The gathering phase moves a block's variable-length values into one
//! contiguous buffer per column (or a dictionary), then rewrites the block's
//! `VarlenEntry`s to point into it. Those buffers cannot live inside the
//! 1 MB block (varlen payload is unbounded), so each block carries this side
//! structure.
//!
//! Lifetime rule: a gathered buffer may still be referenced by entries copied
//! into concurrent readers even after the block reverts to Hot and is later
//! re-gathered. Replaced buffers are therefore handed to the GC's deferred
//! action queue instead of being dropped inline (§4.4 "Memory Management").

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Canonical storage for one varlen column of a frozen block.
#[derive(Debug)]
pub enum GatheredColumn {
    /// Arrow varbinary: `offsets[i]..offsets[i+1]` into `values`.
    Gathered {
        /// n+1 offsets (slot-indexed; gaps have zero length).
        offsets: Vec<i32>,
        /// Contiguous value bytes. Boxed slice: the address is stable, which
        /// is what block entries point into.
        values: Box<[u8]>,
        /// Arrow metadata computed during the gather pass.
        null_count: usize,
    },
    /// Dictionary compression (§4.4): per-slot codes into a sorted dict.
    Dictionary {
        /// Per-slot dictionary codes (-1 for NULL/gap).
        codes: Vec<i32>,
        /// Dictionary word offsets (k+1).
        dict_offsets: Vec<i32>,
        /// Dictionary word bytes (stable address).
        dict_values: Box<[u8]>,
        /// Arrow metadata computed during the gather pass.
        null_count: usize,
    },
}

impl GatheredColumn {
    /// Total bytes held by this gathered column.
    pub fn byte_size(&self) -> usize {
        match self {
            GatheredColumn::Gathered { offsets, values, .. } => offsets.len() * 4 + values.len(),
            GatheredColumn::Dictionary { codes, dict_offsets, dict_values, .. } => {
                codes.len() * 4 + dict_offsets.len() * 4 + dict_values.len()
            }
        }
    }

    /// NULL count metadata.
    pub fn null_count(&self) -> usize {
        match self {
            GatheredColumn::Gathered { null_count, .. } => *null_count,
            GatheredColumn::Dictionary { null_count, .. } => *null_count,
        }
    }
}

/// The per-block map from varlen storage column id to its canonical buffers.
#[derive(Default)]
pub struct ArrowSide {
    cols: Mutex<HashMap<u16, Arc<GatheredColumn>>>,
}

impl ArrowSide {
    /// Empty side storage.
    pub fn new() -> Self {
        ArrowSide { cols: Mutex::new(HashMap::new()) }
    }

    /// Install the gathered buffers for `col`, returning the replaced ones
    /// (the caller must defer-drop them through the GC).
    #[must_use = "replaced buffers must be defer-dropped via the GC"]
    pub fn install(&self, col: u16, data: Arc<GatheredColumn>) -> Option<Arc<GatheredColumn>> {
        self.cols.lock().insert(col, data)
    }

    /// Current buffers for `col`, if the block has been gathered.
    pub fn get(&self, col: u16) -> Option<Arc<GatheredColumn>> {
        self.cols.lock().get(&col).cloned()
    }

    /// Remove all gathered columns (table drop path); returns them for
    /// deferred dropping.
    #[must_use = "removed buffers must be defer-dropped via the GC"]
    pub fn take_all(&self) -> Vec<Arc<GatheredColumn>> {
        self.cols.lock().drain().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GatheredColumn {
        GatheredColumn::Gathered {
            offsets: vec![0, 3, 3, 7],
            values: b"JOEMARK".to_vec().into_boxed_slice(),
            null_count: 1,
        }
    }

    #[test]
    fn install_and_get() {
        let side = ArrowSide::new();
        assert!(side.get(2).is_none());
        assert!(side.install(2, Arc::new(sample())).is_none());
        let got = side.get(2).unwrap();
        assert_eq!(got.null_count(), 1);
        assert_eq!(got.byte_size(), 4 * 4 + 7);
    }

    #[test]
    fn reinstall_returns_old() {
        let side = ArrowSide::new();
        let first = Arc::new(sample());
        assert!(side.install(2, Arc::clone(&first)).is_none());
        let old = side.install(2, Arc::new(sample())).unwrap();
        assert!(Arc::ptr_eq(&old, &first));
    }

    #[test]
    fn take_all_clears() {
        let side = ArrowSide::new();
        let _ = side.install(1, Arc::new(sample()));
        let _ = side.install(2, Arc::new(sample()));
        let all = side.take_all();
        assert_eq!(all.len(), 2);
        assert!(side.get(1).is_none());
    }

    #[test]
    fn dictionary_sizes() {
        let d = GatheredColumn::Dictionary {
            codes: vec![0, 1, -1],
            dict_offsets: vec![0, 1, 2],
            dict_values: b"ab".to_vec().into_boxed_slice(),
            null_count: 1,
        };
        assert_eq!(d.byte_size(), 3 * 4 + 3 * 4 + 2);
        assert_eq!(d.null_count(), 1);
    }
}
