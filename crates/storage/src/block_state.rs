//! The block state machine (paper §4.1–§4.3, Figs. 7–9) plus the residency
//! arms of the cold-block buffer manager.
//!
//! ```text
//!        update                     compaction committed
//!  Hot ◄────────── Cooling ◄──────────────────────────── Hot
//!   │                 │ gather pass: no live versions,
//!   │                 ▼ CAS cooling → freezing
//!   │             Freezing  (exclusive: wait out readers)
//!   │                 │ gather complete
//!   ▼                 ▼
//!  ...             Frozen  ──update──► Hot (writer spins out readers)
//!                   │  ▲
//!     clock evictor │  │ fault-in complete (version bump)
//!     (version bump)▼  │
//!                Faulting ◄──fault── Evicted
//!            (exclusive: eviction teardown, or rebuild from the
//!             checkpoint chain; teardown publishes Evicted when done)
//! ```
//!
//! * **Hot** — relaxed format; transactions read through the version chain.
//! * **Cooling** — transformation intends to lock; user transactions may
//!   *preempt* by CASing back to Hot (Fig. 9's resolution).
//! * **Freezing** — exclusive lock held by the transformation thread.
//! * **Frozen** — full Arrow; readers take the reader counter like a shared
//!   lock and read in place, or read optimistically and validate the
//!   residency version afterwards.
//! * **Evicted** — frozen content released from memory; the bytes live only
//!   in the block's recorded checkpoint frame. Any access must fault them
//!   back first.
//! * **Faulting** — the exclusive residency-transition state: one thread is
//!   either rebuilding the block from its checkpoint frame (fault-in) or
//!   tearing its memory down (eviction claim, before `Evicted` is
//!   published). Readers, writers, and other faulters wait it out, like
//!   Freezing.

use crate::raw_block::{word_state, word_version, BlockHeader};

/// Block temperature / lock / residency state (the low bits of the packed
/// header state word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum BlockState {
    /// Relaxed format, freely writable.
    Hot = 0,
    /// Transformation pending; preemptible by writers.
    Cooling = 1,
    /// Exclusively locked by the transformation thread.
    Freezing = 2,
    /// Canonical Arrow; in-place readable.
    Frozen = 3,
    /// Frozen content released from memory; fault it back before access.
    Evicted = 4,
    /// Exclusively locked by a fault-in rebuilding the frozen content.
    Faulting = 5,
}

impl BlockState {
    /// Decode the raw header value.
    #[inline]
    pub fn from_raw(v: u32) -> BlockState {
        match v {
            0 => BlockState::Hot,
            1 => BlockState::Cooling,
            2 => BlockState::Freezing,
            3 => BlockState::Frozen,
            4 => BlockState::Evicted,
            5 => BlockState::Faulting,
            _ => unreachable!("corrupt block state {v}"),
        }
    }
}

/// State-machine operations over a block header.
pub struct BlockStateMachine;

impl BlockStateMachine {
    /// Current state.
    #[inline]
    pub fn state(h: BlockHeader) -> BlockState {
        BlockState::from_raw(h.state_raw())
    }

    /// Writer entry protocol (Fig. 7 step 1): ensure the block is Hot before
    /// an in-place modification, and register the writer so the freeze path
    /// can detect in-flight modifications (the Fig. 9 race also exists for
    /// blocks the compaction transaction never touched — the version-column
    /// argument alone cannot cover those, so we pair it with a writer count).
    ///
    /// * Hot → register and proceed (re-validating after the increment).
    /// * Cooling → preempt: CAS back to Hot (retry on failure).
    /// * Frozen → CAS to Hot, then spin until lingering in-place readers
    ///   drain ("it then spins on the counter and waits for lingering
    ///   readers to leave the block").
    /// * Freezing → wait for the transformation thread's short critical
    ///   section to finish, then retry.
    ///
    /// The returned guard deregisters the writer on drop; hold it across all
    /// in-place stores of the operation.
    ///
    /// An **Evicted** block cannot be thawed here — its bytes are on disk
    /// and this layer has no way to fetch them — so this function spins
    /// until some other thread faults the content back in. Callers that can
    /// trigger a fault themselves (the transaction layer) must use
    /// [`Self::writer_acquire_resident`] instead and fault on `Err`.
    pub fn writer_acquire(h: BlockHeader) -> WriterGuard {
        loop {
            match Self::writer_acquire_resident(h) {
                Ok(g) => return g,
                Err(AcquireBlocked::Evicted) => std::hint::spin_loop(),
            }
        }
    }

    /// [`Self::writer_acquire`] that hands an Evicted block back to the
    /// caller instead of spinning: the caller faults the content in (see
    /// `mainline-checkpoint`'s fault path) and retries. All resident states
    /// are handled internally, including waiting out a concurrent fault-in.
    pub fn writer_acquire_resident(h: BlockHeader) -> Result<WriterGuard, AcquireBlocked> {
        loop {
            match Self::state(h) {
                BlockState::Hot => {
                    h.inc_writers();
                    // Re-validate under SeqCst: if a freeze slipped in
                    // between the check and the increment, back out.
                    if Self::state(h) == BlockState::Hot {
                        return Ok(WriterGuard { h });
                    }
                    h.dec_writers();
                }
                BlockState::Cooling => {
                    let _ = h.cas_state_raw(BlockState::Cooling as u32, BlockState::Hot as u32);
                }
                BlockState::Frozen => {
                    if h.cas_state_raw(BlockState::Frozen as u32, BlockState::Hot as u32) {
                        while h.reader_count() > 0 {
                            std::hint::spin_loop();
                        }
                    }
                }
                BlockState::Freezing | BlockState::Faulting => {
                    std::hint::spin_loop();
                }
                BlockState::Evicted => return Err(AcquireBlocked::Evicted),
            }
        }
    }

    /// In-place reader entry: returns `true` and registers the reader if the
    /// block is Frozen (or Cooling — the gather pass has not started, data is
    /// still canonical-compatible only when Frozen, so we restrict to Frozen).
    /// The reader must call [`Self::reader_release`] when done.
    pub fn reader_acquire(h: BlockHeader) -> bool {
        loop {
            if Self::state(h) != BlockState::Frozen {
                return false;
            }
            h.inc_readers();
            // Re-validate: a writer (or the evictor) may have flipped the
            // state between the check and the increment; it would then be
            // spinning on us.
            if Self::state(h) == BlockState::Frozen {
                // Recent-access mark for the second-chance eviction clock.
                h.set_ref_bit();
                return true;
            }
            h.dec_readers();
        }
    }

    /// Release an in-place read.
    #[inline]
    pub fn reader_release(h: BlockHeader) {
        h.dec_readers();
    }

    /// Transformation: announce intent to freeze (compaction done).
    /// Hot → Cooling. Returns false if the block is not Hot.
    pub fn begin_cooling(h: BlockHeader) -> bool {
        h.cas_state_raw(BlockState::Hot as u32, BlockState::Cooling as u32)
    }

    /// Transformation: take the exclusive lock. Cooling → Freezing. Fails if
    /// a user transaction preempted the cooling state (Fig. 9), or if a
    /// writer is still mid-operation (in which case the state reverts to Hot
    /// and the block must cool again).
    pub fn begin_freezing(h: BlockHeader) -> bool {
        if !h.cas_state_raw(BlockState::Cooling as u32, BlockState::Freezing as u32) {
            return false;
        }
        if h.writer_count() > 0 {
            // An in-flight writer passed its re-check before our CAS; its
            // store may land at any moment. Abort the freeze.
            h.set_state_raw(BlockState::Hot as u32);
            return false;
        }
        true
    }

    /// Transformation: publish the canonical block. Freezing → Frozen.
    pub fn finish_freezing(h: BlockHeader) {
        Self::assert_freeze_invariant(h);
        let ok = h.cas_state_raw(BlockState::Freezing as u32, BlockState::Frozen as u32);
        debug_assert!(ok, "finish_freezing from non-freezing state");
    }

    /// Debug assertion of the Fig. 9 correctness invariant, independent of
    /// which transformation worker owns the block: a freeze may only complete
    /// while the block is exclusively held in `Freezing` — the cooling flag
    /// was set before the compaction transaction committed, so any
    /// transaction that could race the freeze either preempted the cooling
    /// state (the freeze never started) or left a live version that kept
    /// `begin_freezing`'s caller from getting here.
    ///
    /// Note the writer count is deliberately *not* asserted here: a writer
    /// that loaded `Hot` before the block cooled may register at any moment,
    /// observe non-`Hot` at its re-validation, and back out without storing
    /// — a transiently nonzero count during `Freezing` (or right after
    /// `Frozen` is published) is legal. The dangerous writers — those that
    /// passed re-validation *before* the freeze took the lock — are exactly
    /// the ones [`Self::begin_freezing`]'s writer-count check aborts on.
    #[inline]
    pub fn assert_freeze_invariant(h: BlockHeader) {
        debug_assert_eq!(
            h.state_raw(),
            BlockState::Freezing as u32,
            "Fig. 9 invariant: freeze completing outside the Freezing state"
        );
    }

    // --- residency transitions (cold-block buffer manager) -------------

    /// Evictor: claim a Frozen block for eviction. Frozen → **Faulting**
    /// (the shared "exclusive residency transition" state) with a
    /// residency-version bump, so optimistic readers that started before the
    /// claim fail their validation. On success the caller must still spin
    /// out pinned readers (`reader_count() > 0`) before releasing the
    /// block's memory — exactly the drain a thawing writer performs — and
    /// then publish [`Self::finish_evict`].
    ///
    /// The claim deliberately does **not** go straight to `Evicted`: a
    /// concurrent fault-in treats `Evicted` as an invitation to
    /// [`Self::begin_fault`] and rebuild, which would race the evictor's
    /// own teardown (reader drain, version scan, body release). `Faulting`
    /// is exclusive against readers, writers, *and* faulters, so the block
    /// only becomes faultable once the memory is actually gone.
    ///
    /// Fails if the block is not Frozen (a writer thawed it first, or it is
    /// already evicted) — the clock hand just moves on.
    pub fn begin_evict(h: BlockHeader) -> bool {
        h.cas_state_bump(BlockState::Frozen as u32, BlockState::Faulting as u32)
    }

    /// Evictor: abandon a claimed eviction before releasing any memory.
    /// Faulting → Frozen, *without* a version bump (`begin_evict` already
    /// bumped; the content never changed, so optimistic readers that lose
    /// their validation to the spurious bump simply retry). Used when the
    /// post-claim version-column scan finds live MVCC versions — the block
    /// must stay resident so the GC can prune them through block memory.
    pub fn abort_evict(h: BlockHeader) {
        let ok = h.cas_state_raw(BlockState::Faulting as u32, BlockState::Frozen as u32);
        debug_assert!(ok, "abort_evict from non-faulting state");
    }

    /// Evictor: publish a completed eviction. Faulting → Evicted, no
    /// further bump (`begin_evict` already invalidated every optimistic
    /// reader, and no new read could begin under `Faulting`). Only now may
    /// a fault-in claim the block.
    pub fn finish_evict(h: BlockHeader) {
        let ok = h.cas_state_raw(BlockState::Faulting as u32, BlockState::Evicted as u32);
        debug_assert!(ok, "finish_evict from non-faulting state");
    }

    /// Faulter: claim an Evicted block for an exclusive rebuild.
    /// Evicted → Faulting (no version bump — the memory stays invalid).
    /// Fails if another thread won the claim or the block is not evicted;
    /// the caller then waits for the state to leave Faulting and retries
    /// its access.
    pub fn begin_fault(h: BlockHeader) -> bool {
        h.cas_state_raw(BlockState::Evicted as u32, BlockState::Faulting as u32)
    }

    /// Faulter: publish the rebuilt content. Faulting → Frozen with a
    /// version bump (the bytes changed from released to resident).
    pub fn finish_fault(h: BlockHeader) {
        let ok = h.cas_state_bump(BlockState::Faulting as u32, BlockState::Frozen as u32);
        debug_assert!(ok, "finish_fault from non-faulting state");
    }

    /// Faulter: abandon a failed rebuild (I/O error). Faulting → Evicted;
    /// the block stays faultable and the error propagates to the access
    /// that triggered the fault.
    pub fn abort_fault(h: BlockHeader) {
        let ok = h.cas_state_raw(BlockState::Faulting as u32, BlockState::Evicted as u32);
        debug_assert!(ok, "abort_fault from non-faulting state");
    }

    // --- optimistic residency validation (PageState pattern) ------------

    /// Begin an optimistic in-place read: returns the current residency
    /// version if the block's memory is resident (any state but
    /// Evicted/Faulting), `None` otherwise (the caller must fault first).
    ///
    /// The reader copies what it needs out of block memory **without
    /// pinning**, then calls [`Self::optimistic_read_validate`]; on `false`
    /// the copy may contain released (zero-filled) bytes and must be
    /// retried. Dereferencing gathered varlen pointers copied this way is
    /// only safe under an open transaction — the evictor defers the buffer
    /// drop through the GC's epoch queue, which an open transaction pins.
    #[inline]
    pub fn optimistic_read_begin(h: BlockHeader) -> Option<u32> {
        let w = h.state_word();
        match word_state(w) {
            s if s == BlockState::Evicted as u32 || s == BlockState::Faulting as u32 => None,
            _ => Some(word_version(w)),
        }
    }

    /// Validate an optimistic read begun at `version`: true iff no residency
    /// transition (evict or fault-in) happened in between. Lifecycle
    /// transitions (Hot ↔ Cooling ↔ Freezing ↔ Frozen) and reference-bit
    /// traffic do not invalidate — MVCC already orders those against
    /// readers.
    #[inline]
    pub fn optimistic_read_validate(h: BlockHeader, version: u32) -> bool {
        word_version(h.state_word()) == version
    }
}

/// Why [`BlockStateMachine::writer_acquire_resident`] could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireBlocked {
    /// The block is evicted; fault its content in, then retry.
    Evicted,
}

/// RAII registration of an in-flight writer (see
/// [`BlockStateMachine::writer_acquire`]).
pub struct WriterGuard {
    h: BlockHeader,
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        self.h.dec_writers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BlockLayout;
    use crate::raw_block::RawBlock;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::TypeId;
    use std::sync::Arc;

    fn block() -> (Arc<BlockLayout>, RawBlock) {
        let l = Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![ColumnDef::new("a", TypeId::BigInt)]))
                .unwrap(),
        );
        let b = RawBlock::new(&l);
        (l, b)
    }

    #[test]
    fn initial_state_is_hot() {
        let (_l, b) = block();
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        assert_eq!(BlockStateMachine::state(h), BlockState::Hot);
    }

    #[test]
    fn full_transform_cycle() {
        let (_l, b) = block();
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        assert!(BlockStateMachine::begin_cooling(h));
        assert_eq!(BlockStateMachine::state(h), BlockState::Cooling);
        assert!(BlockStateMachine::begin_freezing(h));
        assert_eq!(BlockStateMachine::state(h), BlockState::Freezing);
        BlockStateMachine::finish_freezing(h);
        assert_eq!(BlockStateMachine::state(h), BlockState::Frozen);
    }

    #[test]
    fn writer_preempts_cooling() {
        let (_l, b) = block();
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        assert!(BlockStateMachine::begin_cooling(h));
        let _g = BlockStateMachine::writer_acquire(h);
        assert_eq!(BlockStateMachine::state(h), BlockState::Hot);
        // The transformation thread's freeze attempt now fails (Fig. 9 fix).
        assert!(!BlockStateMachine::begin_freezing(h));
    }

    #[test]
    fn writer_thaws_frozen_block() {
        let (_l, b) = block();
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        assert!(BlockStateMachine::begin_cooling(h));
        assert!(BlockStateMachine::begin_freezing(h));
        BlockStateMachine::finish_freezing(h);
        let _g = BlockStateMachine::writer_acquire(h);
        assert_eq!(BlockStateMachine::state(h), BlockState::Hot);
    }

    #[test]
    fn readers_only_enter_frozen() {
        let (_l, b) = block();
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        assert!(!BlockStateMachine::reader_acquire(h)); // hot
        BlockStateMachine::begin_cooling(h);
        assert!(!BlockStateMachine::reader_acquire(h)); // cooling
        BlockStateMachine::begin_freezing(h);
        assert!(!BlockStateMachine::reader_acquire(h)); // freezing
        BlockStateMachine::finish_freezing(h);
        assert!(BlockStateMachine::reader_acquire(h)); // frozen
        assert_eq!(h.reader_count(), 1);
        BlockStateMachine::reader_release(h);
        assert_eq!(h.reader_count(), 0);
    }

    #[test]
    fn writer_waits_for_readers() {
        let (_l, b) = block();
        let b = Arc::new(b);
        let h = unsafe { BlockHeader::new(b.as_ptr()) };
        BlockStateMachine::begin_cooling(h);
        BlockStateMachine::begin_freezing(h);
        BlockStateMachine::finish_freezing(h);
        assert!(BlockStateMachine::reader_acquire(h));

        let b2 = Arc::clone(&b);
        let writer = std::thread::spawn(move || {
            let h = unsafe { BlockHeader::new(b2.as_ptr()) };
            let _g = BlockStateMachine::writer_acquire(h);
            // By the time the writer proceeds, no readers may remain.
            assert_eq!(h.reader_count(), 0);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        BlockStateMachine::reader_release(h);
        writer.join().unwrap();
        assert_eq!(BlockStateMachine::state(h), BlockState::Hot);
    }

    #[test]
    fn concurrent_writers_and_transformer_no_deadlock() {
        let (_l, b) = block();
        let b = Arc::new(b);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = vec![];
        for _ in 0..4 {
            let b = Arc::clone(&b);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let h = unsafe { BlockHeader::new(b.as_ptr()) };
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // After acquire the state was Hot at some instant; the
                    // transformer may immediately flip it to Cooling again,
                    // which is exactly the race the cooling sentinel exists
                    // to detect (Fig. 9) — so no state assertion here.
                    let _g = BlockStateMachine::writer_acquire(h);
                }
            }));
        }
        {
            let b = Arc::clone(&b);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let h = unsafe { BlockHeader::new(b.as_ptr()) };
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if BlockStateMachine::begin_cooling(h) && BlockStateMachine::begin_freezing(h) {
                        BlockStateMachine::finish_freezing(h);
                    }
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
