//! `mainline-storage` — physical storage for the relaxed Arrow format.
//!
//! Implements the paper's §3.2 and §4.1:
//!
//! * [`raw_block`] — 1 MB blocks aligned at 1 MB boundaries, with the header
//!   (insert head, state flag, reader counter, layout pointer, allocation
//!   bitmap) embedded at the start of the block.
//! * [`layout`] — PAX-style per-table block layouts: slot counts, per-column
//!   sizes, and 8-byte-aligned column/bitmap offsets (Fig. 5 vicinity).
//! * [`tuple_slot`] — physiological tuple identifiers packing the block
//!   pointer and slot offset into one 64-bit word (Fig. 5).
//! * [`varlen`] — the 16-byte `VarlenEntry` of the relaxed format (Fig. 6):
//!   4-byte size (with an ownership bit), 4-byte prefix, 8-byte pointer, and
//!   ≤12-byte inlining.
//! * [`block_state`] — the Hot/Cooling/Freezing/Frozen/Evicted state machine
//!   and the reader counter that acts as a reader-writer lock for frozen
//!   blocks (Fig. 7), plus the packed version+state residency latch.
//! * [`residency`] — the cold-block buffer manager's storage half: the
//!   memory accountant, checkpoint-chain locations, and in-place eviction
//!   of frozen block bodies.
//! * [`projected_row`] — materialized partial rows used as transaction
//!   inputs/outputs and delta images.
//! * [`access`] — the tuple-access strategy: raw typed readers/writers over
//!   (block, layout, slot) triples.
//! * [`arrow_side`] — per-block canonical Arrow buffers installed by the
//!   gathering phase (offsets+values, or dictionary).

#![warn(missing_docs)]

pub mod access;
pub mod arrow_side;
pub mod block_state;
pub mod layout;
pub mod projected_row;
pub mod raw_block;
pub mod residency;
pub mod tuple_slot;
pub mod varlen;

pub use block_state::BlockState;
pub use layout::{BlockLayout, VERSION_COL};
pub use projected_row::ProjectedRow;
pub use raw_block::{Block, RawBlock, BLOCK_SIZE};
pub use residency::{evict_block, ColdLocation, MemoryAccountant, MemoryStats};
pub use tuple_slot::TupleSlot;
pub use varlen::VarlenEntry;
