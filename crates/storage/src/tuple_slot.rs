//! Physiological tuple identifiers (paper §3.2, Fig. 5).
//!
//! Because blocks are 1 MB-aligned, a block pointer's low 20 bits are always
//! zero; the `TupleSlot` stores the slot offset there, packing both into one
//! 64-bit word. "There are enough bits because there can never be more tuples
//! than there are bytes in a block."

use crate::raw_block::{BLOCK_ALIGN_BITS, BLOCK_SIZE};

/// Mask selecting the offset bits.
const OFFSET_MASK: u64 = (1 << BLOCK_ALIGN_BITS) - 1;

/// A tuple identifier: physical block pointer + logical in-block offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleSlot(u64);

impl TupleSlot {
    /// The all-zero slot, used as "no tuple".
    pub const NULL: TupleSlot = TupleSlot(0);

    /// Pack a block base pointer and a slot offset.
    #[inline]
    pub fn new(block: *const u8, offset: u32) -> Self {
        debug_assert_eq!(block as usize % BLOCK_SIZE, 0, "unaligned block pointer");
        debug_assert!((offset as u64) <= OFFSET_MASK);
        TupleSlot(block as u64 | offset as u64)
    }

    /// The base pointer of the containing block.
    #[inline]
    pub fn block(self) -> *mut u8 {
        (self.0 & !OFFSET_MASK) as *mut u8
    }

    /// The slot offset within the block.
    #[inline]
    pub fn offset(self) -> u32 {
        (self.0 & OFFSET_MASK) as u32
    }

    /// Raw packed representation (used by indexes and the WAL).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from the packed representation.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        TupleSlot(raw)
    }

    /// True for the sentinel null slot.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Debug for TupleSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TupleSlot({:p}+{})", self.block(), self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let fake_block = (42usize << BLOCK_ALIGN_BITS) as *const u8;
        let s = TupleSlot::new(fake_block, 0x1234);
        assert_eq!(s.block() as usize, fake_block as usize);
        assert_eq!(s.offset(), 0x1234);
    }

    #[test]
    fn fig5_example() {
        // Fig. 5: block 0x000000010DB00000, offset 1.
        let block = 0x0000_0001_0DB0_0000usize as *const u8;
        let s = TupleSlot::new(block, 1);
        assert_eq!(s.raw(), 0x0000_0001_0DB0_0001);
        assert_eq!(s.block() as usize, 0x0000_0001_0DB0_0000);
        assert_eq!(s.offset(), 1);
    }

    #[test]
    fn max_offset() {
        let block = (1usize << BLOCK_ALIGN_BITS) as *const u8;
        let s = TupleSlot::new(block, (BLOCK_SIZE - 1) as u32);
        assert_eq!(s.offset(), (BLOCK_SIZE - 1) as u32);
        assert_eq!(s.block() as usize, 1 << BLOCK_ALIGN_BITS);
    }

    #[test]
    fn null_sentinel() {
        assert!(TupleSlot::NULL.is_null());
        let block = (7usize << BLOCK_ALIGN_BITS) as *const u8;
        assert!(!TupleSlot::new(block, 0).is_null());
        assert_eq!(TupleSlot::from_raw(TupleSlot::NULL.raw()), TupleSlot::NULL);
    }

    #[test]
    fn ordering_groups_by_block() {
        let b1 = (1usize << BLOCK_ALIGN_BITS) as *const u8;
        let b2 = (2usize << BLOCK_ALIGN_BITS) as *const u8;
        let s11 = TupleSlot::new(b1, 5);
        let s12 = TupleSlot::new(b1, 9);
        let s20 = TupleSlot::new(b2, 0);
        assert!(s11 < s12 && s12 < s20);
    }
}
