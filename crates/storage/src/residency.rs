//! Cold-block residency: the storage half of the buffer manager.
//!
//! Frozen blocks are immutable, canonical Arrow — and once a checkpoint has
//! captured one, its bytes have a durable on-disk home in the checkpoint
//! generation chain. That makes residency *optional*: under memory pressure
//! the eviction clock releases a frozen block's column memory
//! ([`evict_block`]) and an access faults it back from its recorded
//! [`ColdLocation`] (the fault path lives in `mainline-checkpoint`, which
//! can read the chain; this crate only provides the latch transitions and
//! the memory release).
//!
//! **In-place eviction.** Tuple slots and index entries embed raw block
//! addresses, so an evicted block keeps its 1 MB virtual allocation and its
//! first page (header + leading bitmap bytes) resident; only the body pages
//! are released (`madvise(MADV_DONTNEED)` on Unix, explicit zeroing
//! elsewhere) together with the gathered Arrow side buffers, which hold all
//! frozen varlen payload. Fault-in rebuilds the same bytes at the same
//! address, so nothing pointing at the block ever moves.
//!
//! **Accounting.** A [`MemoryAccountant`] tracks the bytes charged for
//! frozen content against a configurable budget
//! (`MAINLINE_MEMORY_BUDGET_BYTES` at the database layer). The transform
//! pipeline charges on freeze; thaw, eviction, fault-in, and table drop move
//! or release the charge. The eviction clock runs whenever the resident
//! gauge is over budget.

use crate::arrow_side::GatheredColumn;
use crate::block_state::BlockStateMachine;
use crate::raw_block::{Block, BLOCK_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes of the block kept resident across eviction: the first page holds
/// the header (insert head, packed state word, counters, layout pointer) and
/// the leading bitmap bytes, all of which must survive while the body is
/// released.
pub const RESIDENT_HEAD_BYTES: usize = 4096;

/// Where a frozen block's bytes live in the checkpoint generation chain:
/// `(generation dir, segment file, frame index)` plus the payload size and
/// the freeze stamp the frame captured. Recorded by the checkpoint writer
/// (and by restart's loader); a block is evictable only while `stamp` still
/// equals its live freeze stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdLocation {
    /// Checkpoint directory name under the root (e.g. `ckpt-…`).
    pub dir: String,
    /// Cold segment file inside that directory.
    pub file: String,
    /// Frame index within the file.
    pub index: u32,
    /// IPC payload bytes of the frame.
    pub bytes: u64,
    /// Freeze stamp of the captured content.
    pub stamp: u64,
}

/// Point-in-time snapshot of the accountant (see
/// `Database::memory_stats()` at the database layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Configured budget in bytes (`u64::MAX` = unlimited).
    pub budget_bytes: u64,
    /// Bytes currently charged for resident frozen content.
    pub resident_bytes: u64,
    /// Bytes currently evicted (on disk only).
    pub evicted_bytes: u64,
    /// Blocks evicted since startup.
    pub evictions: u64,
    /// Blocks faulted back in since startup.
    pub faults: u64,
}

/// The per-database memory accountant: frozen-content bytes vs. budget.
///
/// All updates are saturating — a racing thaw/refreeze pair can transiently
/// observe either order, and the gauges must never underflow.
#[derive(Debug)]
pub struct MemoryAccountant {
    budget: AtomicU64,
    resident: AtomicU64,
    evicted: AtomicU64,
    evictions: AtomicU64,
    faults: AtomicU64,
}

impl MemoryAccountant {
    /// New accountant; `None` = unlimited budget.
    pub fn new(budget: Option<u64>) -> Self {
        MemoryAccountant {
            budget: AtomicU64::new(budget.unwrap_or(u64::MAX)),
            resident: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        }
    }

    /// The configured budget (`u64::MAX` = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Bytes currently charged as resident frozen content.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether the resident gauge exceeds the budget — the eviction clock's
    /// trigger condition.
    pub fn over_budget(&self) -> bool {
        self.resident_bytes() > self.budget()
    }

    /// A block froze with `bytes` of content (charge enters the resident
    /// gauge).
    pub fn on_freeze(&self, bytes: u64) {
        self.resident.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A frozen block thawed back to Hot (charge leaves entirely — hot
    /// blocks are governed by the transform backpressure gauge instead).
    pub fn on_thaw(&self, bytes: u64) {
        saturating_sub(&self.resident, bytes);
    }

    /// A frozen block's memory was released (charge moves resident →
    /// evicted).
    pub fn on_evict(&self, bytes: u64) {
        saturating_sub(&self.resident, bytes);
        self.evicted.fetch_add(bytes, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        // Counters stay per-accountant (aliased into metrics snapshots by
        // the database layer); the trace event is the process-wide part.
        mainline_obs::record_event(mainline_obs::kind::EVICTION, bytes, 0);
    }

    /// An evicted block was faulted back in (charge moves evicted →
    /// resident).
    pub fn on_fault(&self, bytes: u64) {
        saturating_sub(&self.evicted, bytes);
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// A charged block was dropped with its table; `evicted` says which
    /// gauge held the charge.
    pub fn on_drop(&self, bytes: u64, evicted: bool) {
        saturating_sub(if evicted { &self.evicted } else { &self.resident }, bytes);
    }

    /// Snapshot for stats surfaces.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            budget_bytes: self.budget(),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            evicted_bytes: self.evicted.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
        }
    }
}

fn saturating_sub(gauge: &AtomicU64, bytes: u64) {
    let _ =
        gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
}

/// Release the body pages of a block, keeping the first
/// [`RESIDENT_HEAD_BYTES`] (header + leading bitmap bytes) resident.
///
/// On Unix this is `madvise(MADV_DONTNEED)` — the kernel reclaims the
/// physical pages and the next touch reads zeros. Elsewhere the body is
/// explicitly zeroed, which frees nothing but keeps the read-as-zero
/// semantics identical (and keeps the fault/validation protocol honest on
/// every platform).
///
/// # Safety
/// `base` must be the 1 MB-aligned base of a live block, and the caller must
/// hold the block in the exclusive `Evicted` state with all pinned readers
/// drained — concurrent *optimistic* readers are fine (they see zeros and
/// fail their version validation).
pub unsafe fn release_block_body(base: *mut u8) {
    let body = base.add(RESIDENT_HEAD_BYTES);
    let len = BLOCK_SIZE - RESIDENT_HEAD_BYTES;
    #[cfg(unix)]
    {
        const MADV_DONTNEED: core::ffi::c_int = 4;
        extern "C" {
            fn madvise(
                addr: *mut core::ffi::c_void,
                length: usize,
                advice: core::ffi::c_int,
            ) -> core::ffi::c_int;
        }
        if madvise(body.cast(), len, MADV_DONTNEED) == 0 {
            return;
        }
        // Fall through to zeroing if the kernel refused (e.g. locked
        // memory): semantics stay identical, only the reclaim is lost.
    }
    std::ptr::write_bytes(body, 0, len);
}

/// Evict one frozen block: claim it (Frozen → Faulting, version bump —
/// exclusive, so no concurrent fault-in can rebuild mid-teardown), drain
/// pinned readers, detach the gathered Arrow buffers, release the body
/// pages in place, and only then publish Evicted.
///
/// Returns the detached buffers on success — the **caller must defer-drop
/// them through the GC's epoch queue**, because optimistic readers that
/// began under an older residency version may still be copying out of them;
/// an open transaction pins the epoch until such readers finish. Returns
/// `None` (and does nothing) if the block is not evictable: not Frozen, not
/// yet captured by a checkpoint, captured under a stale freeze stamp, or
/// holding live MVCC versions the GC has yet to prune (the version column
/// must scan clean — the GC CASes version pointers through block memory, so
/// an evicted block must have *no versions to prune*; the claim is reverted
/// with [`BlockStateMachine::abort_evict`] and the clock hand moves on).
#[must_use = "detached buffers must be defer-dropped via the GC"]
pub fn evict_block(block: &Block) -> Option<Vec<Arc<GatheredColumn>>> {
    let loc = block.cold_location()?;
    if loc.stamp == 0 || loc.stamp != block.freeze_stamp() {
        return None; // thawed + refrozen since the checkpoint: frame is stale
    }
    let h = block.header();
    if !BlockStateMachine::begin_evict(h) {
        return None;
    }
    // A reader registered before our claim may still be mid-read; drain it
    // exactly like a thawing writer does. New readers fail (state is not
    // Frozen), so the count can only fall.
    while h.reader_count() > 0 {
        std::hint::spin_loop();
    }
    // With the block exclusively claimed, scan the version column. A frozen
    // block normally has none — freezing required a clean column — but a
    // writer may have thawed, updated, and refrozen concurrently with our
    // claim, or aborted leaving an undo record the GC still needs to unlink
    // through this memory. Any live version forbids the release.
    let layout = block.layout();
    let n = h.insert_head().min(layout.num_slots());
    for slot in 0..n {
        if unsafe { crate::access::load_version(block.as_ptr(), layout, slot) } != 0 {
            BlockStateMachine::abort_evict(h);
            return None;
        }
    }
    let buffers = block.arrow.take_all();
    unsafe { release_block_body(block.as_ptr()) };
    BlockStateMachine::finish_evict(h);
    Some(buffers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_state::{BlockState, BlockStateMachine};
    use crate::layout::BlockLayout;
    use crate::raw_block::HEADER_SIZE;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::TypeId;

    fn frozen_block() -> Arc<Block> {
        let layout = Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![ColumnDef::new("a", TypeId::BigInt)]))
                .unwrap(),
        );
        let b = Block::new(layout);
        let h = b.header();
        h.set_insert_head(4);
        BlockStateMachine::begin_cooling(h);
        BlockStateMachine::begin_freezing(h);
        b.stamp_freeze();
        BlockStateMachine::finish_freezing(h);
        b
    }

    fn location_for(b: &Block) -> ColdLocation {
        ColdLocation {
            dir: "ckpt-0".into(),
            file: "table-1.cold".into(),
            index: 0,
            bytes: 128,
            stamp: b.freeze_stamp(),
        }
    }

    #[test]
    fn accountant_gauges_move_and_saturate() {
        let acc = MemoryAccountant::new(Some(1000));
        assert!(!acc.over_budget());
        acc.on_freeze(600);
        acc.on_freeze(600);
        assert!(acc.over_budget());
        acc.on_evict(600);
        let s = acc.stats();
        assert_eq!((s.resident_bytes, s.evicted_bytes, s.evictions), (600, 600, 1));
        assert!(!acc.over_budget());
        acc.on_fault(600);
        let s = acc.stats();
        assert_eq!((s.resident_bytes, s.evicted_bytes, s.faults), (1200, 0, 1));
        // Saturation: a double-debit cannot underflow.
        acc.on_thaw(5000);
        assert_eq!(acc.stats().resident_bytes, 0);
        acc.on_drop(1, true);
        assert_eq!(acc.stats().evicted_bytes, 0);
    }

    #[test]
    fn evict_requires_fresh_location() {
        let b = frozen_block();
        // No location recorded: not evictable.
        assert!(evict_block(&b).is_none());
        // Stale stamp: not evictable.
        let mut loc = location_for(&b);
        loc.stamp = loc.stamp.wrapping_add(7);
        b.set_cold_location(loc);
        assert!(evict_block(&b).is_none());
        assert_eq!(BlockStateMachine::state(b.header()), BlockState::Frozen);
    }

    #[test]
    fn evict_releases_body_and_bumps_version() {
        let b = frozen_block();
        // Plant a recognizable byte in the body (past the resident head).
        unsafe { b.as_ptr().add(RESIDENT_HEAD_BYTES + 10).write(0xAB) };
        b.set_cold_location(location_for(&b));
        let h = b.header();
        let v0 = BlockStateMachine::optimistic_read_begin(h).unwrap();
        let bufs = evict_block(&b).expect("evictable");
        assert!(bufs.is_empty()); // no varlen columns were gathered
        assert_eq!(BlockStateMachine::state(h), BlockState::Evicted);
        // Version bumped: the pre-evict optimistic read must fail, and a new
        // one must refuse to start.
        assert!(!BlockStateMachine::optimistic_read_validate(h, v0));
        assert!(BlockStateMachine::optimistic_read_begin(h).is_none());
        // Body reads as zero; header survived.
        assert_eq!(unsafe { b.as_ptr().add(RESIDENT_HEAD_BYTES + 10).read() }, 0);
        assert_eq!(h.insert_head(), 4);
        // Second eviction is a no-op.
        assert!(evict_block(&b).is_none());
    }

    #[test]
    fn evict_aborts_on_live_versions() {
        // A nonzero version pointer means the GC still needs to prune
        // through this block's memory: the claim must be reverted and the
        // block must remain a readable, still-evictable Frozen block.
        let b = frozen_block();
        b.set_cold_location(location_for(&b));
        let h = b.header();
        unsafe {
            crate::access::version_ptr(b.as_ptr(), b.layout(), 2)
                .store(0xDEAD, std::sync::atomic::Ordering::Release)
        };
        assert!(evict_block(&b).is_none());
        assert_eq!(BlockStateMachine::state(h), BlockState::Frozen);
        // Once the column is clean again (GC pruned), eviction proceeds.
        unsafe {
            crate::access::version_ptr(b.as_ptr(), b.layout(), 2)
                .store(0, std::sync::atomic::Ordering::Release)
        };
        assert!(evict_block(&b).is_some());
        assert_eq!(BlockStateMachine::state(h), BlockState::Evicted);
    }

    #[test]
    fn fault_protocol_roundtrip() {
        let b = frozen_block();
        b.set_cold_location(location_for(&b));
        let h = b.header();
        let _ = evict_block(&b).unwrap();
        assert!(BlockStateMachine::begin_fault(h));
        assert!(!BlockStateMachine::begin_fault(h)); // exclusive
        assert_eq!(BlockStateMachine::state(h), BlockState::Faulting);
        // Readers and optimistic readers wait out the rebuild.
        assert!(!BlockStateMachine::reader_acquire(h));
        assert!(BlockStateMachine::optimistic_read_begin(h).is_none());
        BlockStateMachine::finish_fault(h);
        assert_eq!(BlockStateMachine::state(h), BlockState::Frozen);
        assert!(BlockStateMachine::reader_acquire(h));
        BlockStateMachine::reader_release(h);
    }

    #[test]
    fn abort_fault_returns_to_evicted() {
        let b = frozen_block();
        b.set_cold_location(location_for(&b));
        let _ = evict_block(&b).unwrap();
        let h = b.header();
        assert!(BlockStateMachine::begin_fault(h));
        BlockStateMachine::abort_fault(h);
        assert_eq!(BlockStateMachine::state(h), BlockState::Evicted);
        assert!(BlockStateMachine::begin_fault(h)); // still faultable
    }

    #[test]
    fn resident_head_preserves_leading_bitmap_bytes() {
        // Everything below RESIDENT_HEAD_BYTES must survive eviction; the
        // header plus the first bitmap bytes live there by construction.
        const { assert!(HEADER_SIZE < RESIDENT_HEAD_BYTES) }
        assert_eq!(RESIDENT_HEAD_BYTES % 4096, 0, "madvise needs page alignment");
    }
}
