//! The 16-byte `VarlenEntry` of the relaxed columnar format (paper Fig. 6).
//!
//! ```text
//! ┌──────────────┬──────────────┬────────────────────────────┐
//! │ size: u32    │ prefix: 4 B  │ pointer / inline suffix 8 B │
//! │ (top bit =   │ (first bytes │ (heap pointer, or bytes    │
//! │  ownership)  │  for filter) │  5..12 when inlined)       │
//! └──────────────┴──────────────┴────────────────────────────┘
//! ```
//!
//! * Values of ≤ 12 bytes are stored **entirely within the entry**, using
//!   the prefix and pointer fields as payload ("use the pointer field to
//!   write the suffix if the entire varlen fits within 12 bytes").
//! * Longer values keep a 4-byte prefix for fast filtering plus a pointer to
//!   an out-of-line buffer.
//! * One bit records **buffer ownership**: entries created by transactions
//!   own their heap buffer (it is freed when the superseding undo record is
//!   GC'd); entries rewritten by the gathering phase point into the block's
//!   canonical Arrow buffer and do not own it.
//!
//! Entries are plain-old-data: they are copied bitwise into undo records and
//! written back on rollback. All reclamation is coordinated by the GC, so the
//! entry itself has no `Drop`.

/// Maximum length that is stored inline (prefix 4 B + pointer field 8 B).
pub const INLINE_THRESHOLD: usize = 12;

/// Ownership bit in the size field.
const OWNED_BIT: u32 = 1 << 31;

/// A 16-byte relaxed-format varlen entry. POD; see module docs for layout.
#[derive(Clone, Copy)]
#[repr(C, align(8))]
pub struct VarlenEntry {
    size_and_flags: u32,
    prefix: [u8; 4],
    pointer: u64,
}

// The entry is POD; the pointed-to buffer's thread-safety is the engine's
// responsibility (coordinated through MVCC + GC).
unsafe impl Send for VarlenEntry {}
unsafe impl Sync for VarlenEntry {}

impl VarlenEntry {
    /// An entry for the empty string.
    pub fn empty() -> Self {
        VarlenEntry { size_and_flags: 0, prefix: [0; 4], pointer: 0 }
    }

    /// Create an entry holding `value`. Values over [`INLINE_THRESHOLD`]
    /// bytes are copied to a fresh heap buffer **owned by the entry**.
    pub fn from_bytes(value: &[u8]) -> Self {
        assert!(value.len() < (1usize << 31), "varlen too large");
        if value.len() <= INLINE_THRESHOLD {
            let mut e =
                VarlenEntry { size_and_flags: value.len() as u32, prefix: [0; 4], pointer: 0 };
            let n1 = value.len().min(4);
            e.prefix[..n1].copy_from_slice(&value[..n1]);
            if value.len() > 4 {
                // Write the suffix into the pointer field.
                let mut suffix = [0u8; 8];
                suffix[..value.len() - 4].copy_from_slice(&value[4..]);
                e.pointer = u64::from_le_bytes(suffix);
            }
            e
        } else {
            let boxed: Box<[u8]> = value.into();
            let ptr = Box::into_raw(boxed) as *mut u8;
            let mut e = VarlenEntry {
                size_and_flags: value.len() as u32 | OWNED_BIT,
                prefix: [0; 4],
                pointer: ptr as u64,
            };
            e.prefix.copy_from_slice(&value[..4]);
            e
        }
    }

    /// Create a non-owning entry pointing into an external (gathered Arrow)
    /// buffer. The caller guarantees `ptr[..len]` outlives all readers —
    /// the engine does this by keeping gathered buffers alive until a GC
    /// deferred action proves no reader can remain (§4.4).
    ///
    /// Values at or under the inline threshold are inlined instead (cheaper
    /// and removes the lifetime concern entirely).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads of `len` bytes, and the buffer must
    /// outlive every reader of the returned entry (see above).
    pub unsafe fn from_gathered(ptr: *const u8, len: usize) -> Self {
        if len <= INLINE_THRESHOLD {
            let slice = unsafe { std::slice::from_raw_parts(ptr, len) };
            return Self::from_bytes(slice);
        }
        let mut e = VarlenEntry {
            size_and_flags: len as u32, // not owned
            prefix: [0; 4],
            pointer: ptr as u64,
        };
        unsafe {
            std::ptr::copy_nonoverlapping(ptr, e.prefix.as_mut_ptr(), 4);
        }
        e
    }

    /// Logical length of the value in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        (self.size_and_flags & !OWNED_BIT) as usize
    }

    /// True for the empty value.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the value is stored entirely inside the entry.
    #[inline]
    pub fn is_inlined(&self) -> bool {
        self.len() <= INLINE_THRESHOLD
    }

    /// True when the entry owns its out-of-line buffer.
    #[inline]
    pub fn owns_buffer(&self) -> bool {
        self.size_and_flags & OWNED_BIT != 0
    }

    /// The 4-byte prefix (zero-padded), usable for fast filtering.
    #[inline]
    pub fn prefix(&self) -> [u8; 4] {
        self.prefix
    }

    /// View the value's bytes.
    ///
    /// # Safety
    /// For non-inlined entries the out-of-line buffer must still be alive
    /// (guaranteed by MVCC + GC while the entry is reachable).
    #[inline]
    pub unsafe fn as_slice(&self) -> &[u8] {
        let len = self.len();
        if len <= INLINE_THRESHOLD {
            // Inline: bytes 0..4 in prefix, 4.. in the pointer field. The
            // two fields are contiguous in this repr(C) struct.
            std::slice::from_raw_parts(self.prefix.as_ptr(), len)
        } else {
            std::slice::from_raw_parts(self.pointer as *const u8, len)
        }
    }

    /// Copy the value out.
    ///
    /// # Safety
    /// Same contract as [`Self::as_slice`].
    pub unsafe fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Raw out-of-line pointer (0 when inlined). For GC bookkeeping.
    #[inline]
    pub fn buffer_ptr(&self) -> *mut u8 {
        if self.is_inlined() {
            std::ptr::null_mut()
        } else {
            self.pointer as *mut u8
        }
    }

    /// Free the owned out-of-line buffer, if any.
    ///
    /// # Safety
    /// Must be called at most once per owned buffer, and only when no other
    /// entry/undo-record copy can still dereference it (the GC's deferred
    /// reclamation provides this guarantee).
    pub unsafe fn free_buffer(&self) {
        if self.owns_buffer() && !self.is_inlined() {
            let len = self.len();
            let ptr = self.pointer as *mut u8;
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
        }
    }

    /// Bitwise equality of the 16-byte entry (not deep value equality).
    pub fn bits_eq(&self, other: &VarlenEntry) -> bool {
        self.size_and_flags == other.size_and_flags
            && self.prefix == other.prefix
            && self.pointer == other.pointer
    }
}

impl std::fmt::Debug for VarlenEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VarlenEntry(len={}, inlined={}, owned={})",
            self.len(),
            self.is_inlined(),
            self.owns_buffer()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_16_bytes_and_8_aligned() {
        assert_eq!(std::mem::size_of::<VarlenEntry>(), 16);
        assert_eq!(std::mem::align_of::<VarlenEntry>(), 8);
    }

    #[test]
    fn inline_roundtrip_all_lengths() {
        for len in 0..=INLINE_THRESHOLD {
            let value: Vec<u8> = (0..len as u8).map(|b| b + 1).collect();
            let e = VarlenEntry::from_bytes(&value);
            assert!(e.is_inlined());
            assert!(!e.owns_buffer());
            assert_eq!(e.len(), len);
            assert_eq!(unsafe { e.as_slice() }, &value[..]);
            assert!(e.buffer_ptr().is_null());
        }
    }

    #[test]
    fn fig6_example_inline() {
        // Fig. 6: "Database4all" (12 chars) fits entirely within the entry.
        let e = VarlenEntry::from_bytes(b"Database4all");
        assert!(e.is_inlined());
        assert_eq!(&e.prefix(), b"Data");
        assert_eq!(unsafe { e.as_slice() }, b"Database4all");
    }

    #[test]
    fn fig6_example_outline() {
        // Fig. 6: "Transactions on Arrow" (21 bytes) goes out of line with
        // prefix "Tran".
        let e = VarlenEntry::from_bytes(b"Transactions on Arrow");
        assert!(!e.is_inlined());
        assert!(e.owns_buffer());
        assert_eq!(e.len(), 21);
        assert_eq!(&e.prefix(), b"Tran");
        assert_eq!(unsafe { e.as_slice() }, b"Transactions on Arrow");
        unsafe { e.free_buffer() };
    }

    #[test]
    fn gathered_entries_do_not_own() {
        let backing = b"hello world, this is gathered".to_vec();
        let e = unsafe { VarlenEntry::from_gathered(backing.as_ptr(), backing.len()) };
        assert!(!e.owns_buffer());
        assert!(!e.is_inlined());
        assert_eq!(unsafe { e.as_slice() }, &backing[..]);
        // free_buffer on a non-owned entry is a no-op.
        unsafe { e.free_buffer() };
        assert_eq!(unsafe { e.as_slice() }, &backing[..]);
    }

    #[test]
    fn gathered_short_values_inline() {
        let backing = b"short".to_vec();
        let e = unsafe { VarlenEntry::from_gathered(backing.as_ptr(), backing.len()) };
        assert!(e.is_inlined());
        drop(backing); // inlined: no dangling reference
        assert_eq!(unsafe { e.as_slice() }, b"short");
    }

    #[test]
    fn empty_entry() {
        let e = VarlenEntry::empty();
        assert!(e.is_empty());
        assert!(e.is_inlined());
        assert_eq!(unsafe { e.as_slice() }, b"");
    }

    #[test]
    fn pod_copy_semantics() {
        let e = VarlenEntry::from_bytes(b"a longer-than-twelve value");
        let copy = e;
        assert!(copy.bits_eq(&e));
        assert_eq!(unsafe { copy.as_slice() }, unsafe { e.as_slice() });
        unsafe { e.free_buffer() };
    }

    #[test]
    fn prefix_padding_for_short_values() {
        let e = VarlenEntry::from_bytes(b"ab");
        assert_eq!(e.prefix(), [b'a', b'b', 0, 0]);
    }
}
