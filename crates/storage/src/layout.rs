//! Block layouts: the physical arrangement of a table's attributes inside a
//! 1 MB block (paper §3.2).
//!
//! "Every block has a layout object that consists of (1) the number of slots
//! within a block, (2) a list of attribute sizes, and (3) the location offset
//! for each column from the head of the block. Each column and its bitmap
//! are aligned at 8-byte boundaries. The system calculates layout once for a
//! table when the application creates it."
//!
//! Column 0 of every layout is the hidden **version pointer column** (§3.1):
//! 8 bytes per slot holding the head of the tuple's version chain, invisible
//! to Arrow readers. User columns are numbered from 1.

use crate::raw_block::{BLOCK_SIZE, HEADER_SIZE};
use mainline_common::bitmap::bytes_for_bits_aligned;
use mainline_common::schema::Schema;

/// Storage index of the hidden version-pointer column.
pub const VERSION_COL: u16 = 0;

/// Number of reserved (hidden) leading columns.
pub const NUM_RESERVED_COLS: usize = 1;

/// Physical layout of one table's blocks. Immutable once computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    /// Per-column attribute sizes in bytes, including the version column.
    attr_sizes: Vec<u16>,
    /// Which columns hold varlen entries (parallel to `attr_sizes`).
    varlen: Vec<bool>,
    /// Tuple slots per block.
    num_slots: u32,
    /// Offset of the allocation bitmap from the block head.
    alloc_bitmap_offset: u32,
    /// Per-column null-bitmap offsets from the block head.
    bitmap_offsets: Vec<u32>,
    /// Per-column data offsets from the block head.
    column_offsets: Vec<u32>,
    /// Total bytes used (<= BLOCK_SIZE).
    used_bytes: u32,
}

impl BlockLayout {
    /// Compute the layout for a table schema.
    ///
    /// Returns an error if even a single tuple cannot fit in a block.
    pub fn from_schema(schema: &Schema) -> Result<BlockLayout, mainline_common::Error> {
        let mut attr_sizes: Vec<u16> = Vec::with_capacity(schema.len() + NUM_RESERVED_COLS);
        let mut varlen = Vec::with_capacity(schema.len() + NUM_RESERVED_COLS);
        attr_sizes.push(8); // version pointer column
        varlen.push(false);
        for c in schema.columns() {
            attr_sizes.push(c.ty.attr_size());
            varlen.push(c.ty.is_varlen());
        }
        Self::from_attr_sizes(attr_sizes, varlen)
    }

    /// Compute a layout from raw attribute sizes (first entry must be the
    /// 8-byte version column). Exposed for synthetic-workload layouts
    /// (e.g. Fig. 11's simulated row-store with one wide column).
    pub fn from_attr_sizes(
        attr_sizes: Vec<u16>,
        varlen: Vec<bool>,
    ) -> Result<BlockLayout, mainline_common::Error> {
        assert_eq!(attr_sizes.len(), varlen.len());
        assert_eq!(attr_sizes[0], 8, "column 0 must be the 8-byte version column");
        if attr_sizes.contains(&0) {
            return Err(mainline_common::Error::Layout("zero-size attribute".into()));
        }
        // Find the largest slot count that fits via binary search on the
        // monotone space function.
        let fits = |n: u32| Self::space_for(&attr_sizes, n) <= BLOCK_SIZE;
        if !fits(1) {
            return Err(mainline_common::Error::Layout(format!(
                "tuple too large for a {BLOCK_SIZE}-byte block"
            )));
        }
        let mut lo = 1u32; // fits
        let mut hi = BLOCK_SIZE as u32; // does not fit (conservative)
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let num_slots = lo;

        // Materialize offsets.
        let mut cursor = HEADER_SIZE as u32;
        let alloc_bitmap_offset = cursor;
        cursor += bytes_for_bits_aligned(num_slots as usize) as u32;
        let mut bitmap_offsets = Vec::with_capacity(attr_sizes.len());
        let mut column_offsets = Vec::with_capacity(attr_sizes.len());
        for &size in &attr_sizes {
            bitmap_offsets.push(cursor);
            cursor += bytes_for_bits_aligned(num_slots as usize) as u32;
            column_offsets.push(cursor);
            cursor += pad8(num_slots as usize * size as usize) as u32;
        }
        debug_assert!(cursor as usize <= BLOCK_SIZE);
        Ok(BlockLayout {
            attr_sizes,
            varlen,
            num_slots,
            alloc_bitmap_offset,
            bitmap_offsets,
            column_offsets,
            used_bytes: cursor,
        })
    }

    fn space_for(attr_sizes: &[u16], n: u32) -> usize {
        let n = n as usize;
        let mut total = HEADER_SIZE + bytes_for_bits_aligned(n); // alloc bitmap
        for &size in attr_sizes {
            total += bytes_for_bits_aligned(n); // null bitmap
            total += pad8(n * size as usize);
        }
        total
    }

    /// Slots per block.
    #[inline]
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// Number of columns including the version column.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.attr_sizes.len()
    }

    /// Number of user-visible columns.
    #[inline]
    pub fn num_user_cols(&self) -> usize {
        self.attr_sizes.len() - NUM_RESERVED_COLS
    }

    /// Size in bytes of column `col`'s attribute.
    #[inline]
    pub fn attr_size(&self, col: u16) -> u16 {
        self.attr_sizes[col as usize]
    }

    /// True if column `col` stores varlen entries.
    #[inline]
    pub fn is_varlen(&self, col: u16) -> bool {
        self.varlen[col as usize]
    }

    /// Storage ids of all user columns (1-based).
    pub fn user_cols(&self) -> impl Iterator<Item = u16> + '_ {
        NUM_RESERVED_COLS as u16..self.num_cols() as u16
    }

    /// Storage ids of the varlen user columns.
    pub fn varlen_cols(&self) -> impl Iterator<Item = u16> + '_ {
        self.user_cols().filter(|&c| self.is_varlen(c))
    }

    /// Offset of the allocation bitmap from the block head.
    #[inline]
    pub fn alloc_bitmap_offset(&self) -> u32 {
        self.alloc_bitmap_offset
    }

    /// Offset of column `col`'s null bitmap from the block head.
    #[inline]
    pub fn bitmap_offset(&self, col: u16) -> u32 {
        self.bitmap_offsets[col as usize]
    }

    /// Offset of column `col`'s data region from the block head.
    #[inline]
    pub fn column_offset(&self, col: u16) -> u32 {
        self.column_offsets[col as usize]
    }

    /// Bytes of the block actually used by this layout.
    #[inline]
    pub fn used_bytes(&self) -> u32 {
        self.used_bytes
    }

    /// Fixed-size footprint of the first `n` slots of a block using this
    /// layout: header, allocation bitmap, and every column's null bitmap +
    /// data region sized for `n` slots. `n` is clamped to
    /// [`num_slots`](Self::num_slots). This is the per-slot-prefix version
    /// of [`used_bytes`](Self::used_bytes), used by backpressure accounting
    /// to charge partially-filled blocks with what they actually occupy.
    pub fn bytes_for_slots(&self, n: u32) -> usize {
        Self::space_for(&self.attr_sizes, n.min(self.num_slots))
    }

    /// Sum of the per-tuple attribute sizes (excluding bitmaps).
    pub fn tuple_size(&self) -> usize {
        self.attr_sizes.iter().map(|&s| s as usize).sum()
    }
}

#[inline]
fn pad8(n: usize) -> usize {
    (n + 7) & !7
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::ColumnDef;
    use mainline_common::value::TypeId;

    fn schema_2col() -> Schema {
        // The §6.2 micro-benchmark table: 8-byte int + 12..24-byte varlen.
        Schema::new(vec![
            ColumnDef::new("fixed", TypeId::BigInt),
            ColumnDef::new("var", TypeId::Varchar),
        ])
    }

    #[test]
    fn paper_microbench_layout_holds_about_32k_tuples() {
        let l = BlockLayout::from_schema(&schema_2col()).unwrap();
        // Paper §6.2: "each block holds ~32K tuples" for this layout.
        assert!((30_000..34_000).contains(&l.num_slots()), "num_slots = {}", l.num_slots());
        assert!(l.used_bytes() as usize <= BLOCK_SIZE);
        // Adding one more slot must not fit.
        let bigger = BlockLayout::space_for(&[8, 8, 16], l.num_slots() + 1);
        assert!(bigger > BLOCK_SIZE);
    }

    #[test]
    fn offsets_are_8_aligned_and_disjoint() {
        let l = BlockLayout::from_schema(&schema_2col()).unwrap();
        assert_eq!(l.alloc_bitmap_offset() % 8, 0);
        let mut prev_end = l.alloc_bitmap_offset() as usize
            + mainline_common::bitmap::bytes_for_bits_aligned(l.num_slots() as usize);
        for c in 0..l.num_cols() as u16 {
            assert_eq!(l.bitmap_offset(c) % 8, 0);
            assert_eq!(l.column_offset(c) % 8, 0);
            assert!(l.bitmap_offset(c) as usize >= prev_end);
            assert!(l.column_offset(c) > l.bitmap_offset(c));
            prev_end =
                l.column_offset(c) as usize + l.num_slots() as usize * l.attr_size(c) as usize;
        }
        assert!(prev_end <= BLOCK_SIZE);
    }

    #[test]
    fn version_column_reserved() {
        let l = BlockLayout::from_schema(&schema_2col()).unwrap();
        assert_eq!(l.attr_size(VERSION_COL), 8);
        assert_eq!(l.num_cols(), 3);
        assert_eq!(l.num_user_cols(), 2);
        assert_eq!(l.user_cols().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(l.varlen_cols().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn wide_fixed_layout() {
        // 64 x 8-byte attributes (Fig. 11 extreme).
        let cols: Vec<ColumnDef> =
            (0..64).map(|i| ColumnDef::new(&format!("a{i}"), TypeId::BigInt)).collect();
        let l = BlockLayout::from_schema(&Schema::new(cols)).unwrap();
        // 65 * 8 bytes/tuple + bitmaps: ~2000 slots expected.
        assert!(l.num_slots() > 1500, "num_slots={}", l.num_slots());
        assert!(l.used_bytes() as usize <= BLOCK_SIZE);
    }

    #[test]
    fn simulated_row_store_layout() {
        // One 512-byte "row" column (Fig. 11 row-store simulation).
        let l = BlockLayout::from_attr_sizes(vec![8, 512], vec![false, false]).unwrap();
        assert!(l.num_slots() >= 1900, "num_slots={}", l.num_slots());
    }

    #[test]
    fn oversized_tuple_rejected() {
        let r =
            BlockLayout::from_attr_sizes(vec![8, (BLOCK_SIZE as u32) as u16], vec![false, false]);
        // u16 can't even express it; use many columns instead.
        drop(r);
        let sizes: Vec<u16> = std::iter::once(8).chain((0..40_000).map(|_| 32)).collect();
        let varlen = vec![false; sizes.len()];
        assert!(BlockLayout::from_attr_sizes(sizes, varlen).is_err());
    }

    #[test]
    fn bytes_for_slots_is_monotone_and_clamped() {
        let l = BlockLayout::from_schema(&schema_2col()).unwrap();
        assert_eq!(l.bytes_for_slots(0), HEADER_SIZE);
        let mut prev = 0;
        for n in [1u32, 2, 100, 1000, l.num_slots()] {
            let b = l.bytes_for_slots(n);
            assert!(b > prev, "footprint must grow with the slot prefix");
            prev = b;
        }
        // Full prefix matches the whole-layout figure and clamping holds.
        assert_eq!(l.bytes_for_slots(l.num_slots()), l.used_bytes() as usize);
        assert_eq!(l.bytes_for_slots(u32::MAX), l.used_bytes() as usize);
    }

    #[test]
    fn small_types_have_small_footprint() {
        let s = Schema::new(vec![
            ColumnDef::new("t", TypeId::TinyInt),
            ColumnDef::new("s", TypeId::SmallInt),
            ColumnDef::new("i", TypeId::Integer),
        ]);
        let l = BlockLayout::from_schema(&s).unwrap();
        assert_eq!(l.tuple_size(), 8 + 1 + 2 + 4);
        // ~1MB / (15 bytes + 4 bitmap bits) → north of 55K slots.
        assert!(l.num_slots() > 55_000);
    }
}
