//! Loom-style exhaustive interleaving check of the residency protocol —
//! the cold-block buffer manager's companion to `fig9_interleavings.rs`.
//!
//! An **evictor** (mirroring `evict_block` step by step: claim, pinned-reader
//! drain, version-column scan, body release, publish) races an **accessor**
//! (mirroring the transaction layer's `writer_acquire_resident` loop plus
//! the fault path: claim, repopulate, publish) and an **optimistic reader**
//! (mirroring the `select` wrapper: begin, copy without pinning, validate).
//! Each atomic operation is one step; the checker explores every reachable
//! interleaving by depth-first search over configurations, executing the
//! real `BlockHeader` / `BlockStateMachine` / `release_block_body`
//! primitives serially in the scheduled order.
//!
//! After every step it asserts the residency safety invariants:
//!
//! * a block in any resident state (Hot/Cooling/Freezing/Frozen) always has
//!   its body content present — eviction never exposes released memory
//!   behind a resident state;
//! * `Evicted` is only ever published *after* the body release — so a
//!   fault-in that claims the block can never race the evictor's teardown
//!   (this is why the eviction claim goes through the exclusive `Faulting`
//!   state rather than straight to `Evicted`);
//! * an optimistic read that passes its validation never observed released
//!   (zero-filled) bytes — the version bump at the eviction claim happens
//!   before the release, so any read overlapping it fails validation;
//! * the evictor only releases memory with the pinned-reader count drained
//!   to zero.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_storage::access;
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::layout::BlockLayout;
use mainline_storage::raw_block::{
    word_state, word_version, BlockHeader, RawBlock, REF_BIT, VERSION_SHIFT,
};
use mainline_storage::residency::{release_block_body, RESIDENT_HEAD_BYTES};
use std::collections::HashSet;
use std::sync::Arc;

/// Evictor program counter (the steps of `evict_block`; the cold location
/// is assumed recorded and fresh — the stamp check happens before the first
/// atomic step and is covered by the unit tests).
const E_CLAIM: u8 = 0; // CAS Frozen → Faulting (+ version bump)
const E_DRAIN: u8 = 1; // spin out pinned readers
const E_SCAN: u8 = 2; // version column clean? (abort_evict if not)
const E_RELEASE: u8 = 3; // release the body pages
const E_PUBLISH: u8 = 4; // finish_evict: publish Evicted
const E_DONE: u8 = 5;

const E_PENDING: u8 = 0;
const E_EVICTED: u8 = 1; // teardown completed
const E_LOST: u8 = 2; // claim failed (a writer thawed first)
const E_ABORTED: u8 = 3; // live MVCC versions: claim reverted

/// Accessor program counter (the transaction layer's
/// `writer_acquire_resident` loop + `ensure_resident`'s fault path + one
/// in-place store).
const A_READ: u8 = 0; // read state, dispatch on it
const A_INC: u8 = 1; // saw Hot: register writer
const A_RECHECK: u8 = 2; // re-validate state after the increment
const A_THAW_DRAIN: u8 = 3; // thawed Frozen → Hot: spin out pinned readers
const A_FAULT: u8 = 4; // saw Evicted: begin_fault
const A_POPULATE: u8 = 5; // rebuild the body from the checkpoint frame
const A_FINISH: u8 = 6; // finish_fault: publish Frozen
const A_WRITE: u8 = 7; // install a version (the in-place modification)
const A_RELEASE: u8 = 8; // deregister writer
const A_DONE: u8 = 9;

const A_PENDING: u8 = 0;
const A_WROTE: u8 = 1; // completed the update
const A_GAVE_UP: u8 = 2; // fault I/O error propagated to the caller

/// Optimistic reader program counter (the `select` wrapper).
const R_BEGIN: u8 = 0; // optimistic_read_begin (None = spin)
const R_COPY: u8 = 1; // copy out of block memory without pinning
const R_VALIDATE: u8 = 2; // optimistic_read_validate
const R_DONE: u8 = 3;

const R_PENDING: u8 = 0;
const R_OK: u8 = 1; // validation passed — the copy is trusted

/// Pinned-reader program counter: a reader that entered under Frozen before
/// the schedule starts and releases at an arbitrary point.
const P_RELEASE: u8 = 0;
const P_DONE: u8 = 1;

/// One explored configuration: the shared block words + every actor's PCs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Config {
    state: u32,
    version: u32,
    refbit: bool,
    readers: u32,
    writers: u32,
    /// Version column of slot 0 nonzero (a live MVCC version).
    mvcc: bool,
    /// Body content present (false after `release_block_body`).
    body: bool,
    epc: u8,
    eoutcome: u8,
    apc: u8,
    aoutcome: u8,
    /// Accessor faulted the block back in at least once.
    afaulted: bool,
    rpc: u8,
    routcome: u8,
    /// The residency version the reader's current attempt began at.
    rver: u32,
    /// What the reader's copy observed: body content present?
    rsaw: bool,
    /// At least one validation failed (the read overlapped a transition).
    rfailed: bool,
    ppc: u8,
    /// Fault-in I/O fails in this schedule (abort_fault path).
    fault_io_err: bool,
}

/// Byte probed/planted past the resident head: `release_block_body` zeroes
/// it, fault-in repopulation rewrites it.
const BODY_PROBE: usize = RESIDENT_HEAD_BYTES + 64;
const CONTENT: u8 = 0xC7;

struct Model {
    _block: RawBlock,
    _layout: Arc<BlockLayout>,
    h: BlockHeader,
    base: *mut u8,
    layout_ref: &'static BlockLayout,
}

impl Model {
    fn new() -> Model {
        let layout = Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![ColumnDef::new("a", TypeId::BigInt)]))
                .unwrap(),
        );
        let block = RawBlock::new(&layout);
        let base = block.as_ptr();
        let h = unsafe { BlockHeader::new(base) };
        let layout_ref: &'static BlockLayout = unsafe { block.layout() };
        Model { _block: block, _layout: layout, h, base, layout_ref }
    }

    fn mvcc(&self) -> bool {
        unsafe { access::load_version(self.base, self.layout_ref, 0) != 0 }
    }

    fn set_mvcc(&self, live: bool) {
        unsafe { access::version_ptr(self.base, self.layout_ref, 0) }
            .store(if live { 0xDEAD_BEEF } else { 0 }, std::sync::atomic::Ordering::SeqCst);
    }

    fn body(&self) -> bool {
        unsafe { self.base.add(BODY_PROBE).read() == CONTENT }
    }

    fn set_body(&self, resident: bool) {
        unsafe { self.base.add(BODY_PROBE).write(if resident { CONTENT } else { 0 }) }
    }

    /// Load `cfg`'s shared words onto the real block.
    fn restore(&self, cfg: Config) {
        let word =
            (cfg.version << VERSION_SHIFT) | if cfg.refbit { REF_BIT } else { 0 } | cfg.state;
        self.h.set_state_word(word);
        while self.h.reader_count() < cfg.readers {
            self.h.inc_readers();
        }
        while self.h.reader_count() > cfg.readers {
            self.h.dec_readers();
        }
        while self.h.writer_count() < cfg.writers {
            self.h.inc_writers();
        }
        while self.h.writer_count() > cfg.writers {
            self.h.dec_writers();
        }
        self.set_mvcc(cfg.mvcc);
        self.set_body(cfg.body);
    }

    /// Read the shared words back into a configuration.
    fn capture(&self, cfg: Config) -> Config {
        let w = self.h.state_word();
        Config {
            state: word_state(w),
            version: word_version(w),
            refbit: w & REF_BIT != 0,
            readers: self.h.reader_count(),
            writers: self.h.writer_count(),
            mvcc: self.mvcc(),
            body: self.body(),
            ..cfg
        }
    }

    /// Execute one evictor step from `cfg` (mirrors `evict_block`).
    fn evictor_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let h = self.h;
        let mut next = cfg;
        match cfg.epc {
            E_CLAIM => {
                if BlockStateMachine::begin_evict(h) {
                    next.epc = E_DRAIN;
                } else {
                    next.eoutcome = E_LOST;
                    next.epc = E_DONE;
                }
            }
            E_DRAIN => {
                if h.reader_count() == 0 {
                    next.epc = E_SCAN;
                }
                // else: spin — the pinned reader will release.
            }
            E_SCAN => {
                if self.mvcc() {
                    BlockStateMachine::abort_evict(h);
                    next.eoutcome = E_ABORTED;
                    next.epc = E_DONE;
                } else {
                    next.epc = E_RELEASE;
                }
            }
            E_RELEASE => {
                // The drain already completed: releasing under a pinned
                // reader would yank memory out from under an in-place read.
                assert_eq!(
                    h.reader_count(),
                    0,
                    "evictor released the body with a pinned reader in the block: {cfg:?}"
                );
                unsafe { release_block_body(self.base) };
                next.epc = E_PUBLISH;
            }
            E_PUBLISH => {
                BlockStateMachine::finish_evict(h);
                next.eoutcome = E_EVICTED;
                next.epc = E_DONE;
            }
            _ => unreachable!("stepping a finished evictor"),
        }
        self.capture(next)
    }

    /// Execute one accessor step from `cfg` (mirrors the transaction
    /// layer's `writer_acquire_resident` + `ensure_resident` + one store).
    fn accessor_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let h = self.h;
        let mut next = cfg;
        match cfg.apc {
            A_READ => match BlockStateMachine::state(h) {
                BlockState::Hot => next.apc = A_INC,
                BlockState::Frozen => {
                    // Thaw; then drain lingering in-place readers.
                    if h.cas_state_raw(BlockState::Frozen as u32, BlockState::Hot as u32) {
                        next.apc = A_THAW_DRAIN;
                    }
                }
                BlockState::Faulting => {
                    // Exclusive residency transition in flight (another
                    // fault-in — or the evictor's teardown): spin.
                }
                BlockState::Evicted => next.apc = A_FAULT,
                BlockState::Cooling | BlockState::Freezing => {
                    unreachable!("no transform worker in the residency model")
                }
            },
            A_INC => {
                h.inc_writers();
                next.apc = A_RECHECK;
            }
            A_RECHECK => {
                if BlockStateMachine::state(h) == BlockState::Hot {
                    next.apc = A_WRITE;
                } else {
                    h.dec_writers();
                    next.apc = A_READ;
                }
            }
            A_THAW_DRAIN => {
                if h.reader_count() == 0 {
                    next.apc = A_READ; // re-dispatch; the block is now Hot
                }
            }
            A_FAULT => {
                if BlockStateMachine::begin_fault(h) {
                    next.apc = A_POPULATE;
                } else {
                    next.apc = A_READ; // lost the claim: re-dispatch
                }
            }
            A_POPULATE => {
                if cfg.fault_io_err {
                    // The checkpoint frame read failed: revert the claim,
                    // propagate the error (the accessor gives up).
                    BlockStateMachine::abort_fault(h);
                    next.aoutcome = A_GAVE_UP;
                    next.apc = A_DONE;
                } else {
                    self.set_body(true);
                    next.apc = A_FINISH;
                }
            }
            A_FINISH => {
                BlockStateMachine::finish_fault(h);
                next.afaulted = true;
                next.apc = A_READ; // re-dispatch; Frozen → thaw path
            }
            A_WRITE => {
                self.set_mvcc(true);
                next.apc = A_RELEASE;
            }
            A_RELEASE => {
                h.dec_writers();
                next.aoutcome = A_WROTE;
                next.apc = A_DONE;
            }
            _ => unreachable!("stepping a finished accessor"),
        }
        self.capture(next)
    }

    /// Execute one optimistic-reader step from `cfg` (mirrors the `select`
    /// wrapper: copy without pinning, then validate the residency version).
    fn reader_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let h = self.h;
        let mut next = cfg;
        match cfg.rpc {
            R_BEGIN => {
                if let Some(v) = BlockStateMachine::optimistic_read_begin(h) {
                    next.rver = v;
                    next.rpc = R_COPY;
                }
                // else: Evicted/Faulting — wait for residency, retry.
            }
            R_COPY => {
                // The unpinned copy: released memory reads as zeros here,
                // never faults — exactly why validation must catch it.
                next.rsaw = self.body();
                next.rpc = R_VALIDATE;
            }
            R_VALIDATE => {
                if BlockStateMachine::optimistic_read_validate(h, cfg.rver) {
                    // Advisory second-chance mark, as the select wrapper
                    // does on a successful frozen read (no safety role).
                    if BlockStateMachine::state(h) == BlockState::Frozen {
                        h.set_ref_bit();
                    }
                    next.routcome = R_OK;
                    next.rpc = R_DONE;
                } else {
                    next.rfailed = true;
                    next.rpc = R_BEGIN;
                }
            }
            _ => unreachable!("stepping a finished reader"),
        }
        self.capture(next)
    }

    /// Execute the pinned reader's single step: release the shared lock it
    /// took (under Frozen) before the schedule started.
    fn pinned_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let mut next = cfg;
        match cfg.ppc {
            P_RELEASE => {
                BlockStateMachine::reader_release(self.h);
                next.ppc = P_DONE;
            }
            _ => unreachable!("stepping a finished pinned reader"),
        }
        self.capture(next)
    }
}

/// The residency safety invariants, checked on every reachable
/// configuration.
fn assert_invariant(cfg: Config, trail: &str) {
    let resident =
        cfg.state != BlockState::Evicted as u32 && cfg.state != BlockState::Faulting as u32;
    if resident {
        // Hot/Cooling/Freezing/Frozen must always have their memory: the
        // release happens strictly inside the exclusive Faulting window.
        assert!(cfg.body, "resident state without body content ({trail}): {cfg:?}");
    }
    if cfg.state == BlockState::Evicted as u32 {
        // Evicted is only published after the release — a fault-in claiming
        // the block can never overlap the evictor's teardown.
        assert!(!cfg.body, "Evicted published before the body release ({trail}): {cfg:?}");
    }
    if cfg.routcome == R_OK {
        // A validated optimistic read never trusted released bytes.
        assert!(cfg.rsaw, "optimistic read validated a copy of released memory ({trail}): {cfg:?}");
    }
}

/// Explore every interleaving from `initial`; returns the set of terminal
/// configurations (every actor done).
fn explore(initial: Config) -> HashSet<Config> {
    let model = Model::new();
    let mut visited: HashSet<Config> = HashSet::new();
    let mut terminals: HashSet<Config> = HashSet::new();
    let mut stack = vec![initial];
    assert_invariant(initial, "initial");
    while let Some(cfg) = stack.pop() {
        if !visited.insert(cfg) {
            continue;
        }
        if cfg.epc == E_DONE && cfg.apc == A_DONE && cfg.rpc == R_DONE && cfg.ppc == P_DONE {
            terminals.insert(cfg);
            continue;
        }
        if cfg.epc != E_DONE {
            let next = model.evictor_step(cfg);
            assert_invariant(next, "after evictor step");
            stack.push(next);
        }
        if cfg.apc != A_DONE {
            let next = model.accessor_step(cfg);
            assert_invariant(next, "after accessor step");
            stack.push(next);
        }
        if cfg.rpc != R_DONE {
            let next = model.reader_step(cfg);
            assert_invariant(next, "after reader step");
            stack.push(next);
        }
        if cfg.ppc != P_DONE {
            let next = model.pinned_step(cfg);
            assert_invariant(next, "after pinned-reader step");
            stack.push(next);
        }
    }
    assert!(!terminals.is_empty(), "model never terminated");
    terminals
}

/// A frozen, checkpoint-captured, version-clean block with every actor
/// parked at its start. Tests switch individual actors off by starting
/// their PC at the done state.
fn frozen_initial() -> Config {
    Config {
        state: BlockState::Frozen as u32,
        version: 0,
        refbit: false,
        readers: 0,
        writers: 0,
        mvcc: false,
        body: true,
        epc: E_CLAIM,
        eoutcome: E_PENDING,
        apc: A_READ,
        aoutcome: A_PENDING,
        afaulted: false,
        rpc: R_BEGIN,
        routcome: R_PENDING,
        rver: 0,
        rsaw: false,
        rfailed: false,
        ppc: P_DONE,
        fault_io_err: false,
    }
}

#[test]
fn evictor_vs_accessor_vs_optimistic_reader_all_interleavings() {
    let terminals = explore(frozen_initial());

    let eoutcomes: HashSet<u8> = terminals.iter().map(|t| t.eoutcome).collect();
    assert!(eoutcomes.contains(&E_EVICTED), "eviction never completed in any schedule");
    assert!(eoutcomes.contains(&E_LOST), "the accessor never thawed first in any schedule");
    assert!(
        terminals.iter().any(|t| t.afaulted),
        "the fault-in path was never exercised in any schedule"
    );
    assert!(
        terminals.iter().any(|t| t.rfailed),
        "no optimistic read was ever invalidated by a residency transition"
    );
    for t in &terminals {
        // The accessor always completes its write: the block ends Hot with
        // the version installed, regardless of how the eviction raced it.
        assert_eq!(t.aoutcome, A_WROTE, "accessor failed to write: {t:?}");
        assert_eq!(t.state, BlockState::Hot as u32, "terminal not Hot: {t:?}");
        assert!(t.mvcc && t.body, "write or body lost: {t:?}");
        assert_eq!((t.writers, t.readers), (0, 0), "latches leaked: {t:?}");
        // The reader terminated with a validated, content-backed copy.
        assert_eq!(t.routcome, R_OK, "reader never validated: {t:?}");
        // A completed eviction forces the accessor through the fault path.
        if t.eoutcome == E_EVICTED {
            assert!(t.afaulted, "evicted block written without a fault-in: {t:?}");
        }
    }
}

#[test]
fn evictor_drains_pinned_reader_before_releasing() {
    // A reader holds the Fig. 7 shared lock when the clock hand arrives.
    // Every schedule must complete the eviction (the version column is
    // clean, nobody thaws), and the E_RELEASE step itself asserts that the
    // release never happens before the pinned reader left.
    let initial = Config {
        readers: 1,
        ppc: P_RELEASE,
        apc: A_DONE,
        aoutcome: A_WROTE, // unused; accessor absent
        rpc: R_DONE,
        routcome: R_OK, // unused; reader absent (Evicted terminal would spin it forever)
        rsaw: true,
        ..frozen_initial()
    };
    let terminals = explore(initial);
    for t in &terminals {
        assert_eq!(t.eoutcome, E_EVICTED, "eviction did not complete: {t:?}");
        assert_eq!(t.state, BlockState::Evicted as u32, "terminal not Evicted: {t:?}");
        assert!(!t.body, "Evicted terminal with resident body: {t:?}");
        assert_eq!(t.readers, 0, "pinned reader leaked: {t:?}");
    }
}

#[test]
fn live_mvcc_versions_always_abort_the_eviction() {
    // The GC has not pruned slot 0's version chain: no schedule may release
    // the block's memory (the GC unlinks versions through it), and the
    // spurious claim bump must only ever cost the optimistic reader a
    // retry, never its correctness.
    let initial = Config { mvcc: true, apc: A_DONE, aoutcome: A_WROTE, ..frozen_initial() };
    let terminals = explore(initial);
    for t in &terminals {
        assert_eq!(t.eoutcome, E_ABORTED, "evicted a block with live versions: {t:?}");
        assert_eq!(t.state, BlockState::Frozen as u32, "terminal not Frozen: {t:?}");
        assert!(t.body, "body released despite the abort: {t:?}");
        assert_eq!(t.routcome, R_OK, "reader never validated: {t:?}");
    }
}

#[test]
fn failed_fault_in_reverts_to_evicted_without_corruption() {
    // Every checkpoint-frame read fails in this schedule (I/O error). The
    // accessor either wins the thaw race before the eviction (and writes),
    // or faults, fails, and propagates the error — in which case the block
    // must end Evicted (still faultable once the I/O heals), never a
    // resident state with released memory.
    let initial =
        Config { fault_io_err: true, rpc: R_DONE, routcome: R_OK, rsaw: true, ..frozen_initial() };
    let terminals = explore(initial);
    let aoutcomes: HashSet<u8> = terminals.iter().map(|t| t.aoutcome).collect();
    assert!(aoutcomes.contains(&A_WROTE), "the thaw-first schedule disappeared");
    assert!(aoutcomes.contains(&A_GAVE_UP), "the fault-error schedule disappeared");
    for t in &terminals {
        match t.aoutcome {
            A_WROTE => {
                assert_eq!(t.state, BlockState::Hot as u32, "wrote but not Hot: {t:?}");
                assert!(t.body, "wrote into released memory: {t:?}");
            }
            A_GAVE_UP => {
                assert_eq!(
                    t.state,
                    BlockState::Evicted as u32,
                    "failed fault left a non-faultable state: {t:?}"
                );
                assert!(!t.body, "failed fault left stale body bytes resident: {t:?}");
            }
            _ => panic!("accessor terminal without an outcome: {t:?}"),
        }
    }
}
