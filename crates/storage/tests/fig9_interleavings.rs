//! Loom-style exhaustive interleaving check of the Fig. 9 freeze protocol.
//!
//! The real crates.io `loom` is unavailable offline, so this is the shim
//! equivalent: a tiny explicit-state model checker. A **writer** thread
//! (mirroring `BlockStateMachine::writer_acquire` + an in-place update,
//! step by step) races a **freezer** thread (mirroring the transformation
//! worker's `try_freeze`). Each atomic operation is one step; the checker
//! explores *every* reachable interleaving by depth-first search over
//! configurations, executing the real `BlockHeader` / `BlockStateMachine`
//! primitives serially in the scheduled order.
//!
//! After every step it asserts the Fig. 9 correctness invariant, which must
//! hold per block regardless of which transformation worker owns it:
//! a block is never `Frozen` while a live version or a registered writer
//! exists — i.e. freezing only completes after the version column scans
//! clean and every racing writer either preempted the cooling state or was
//! caught by the writer count.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_storage::access;
use mainline_storage::block_state::{BlockState, BlockStateMachine};
use mainline_storage::layout::BlockLayout;
use mainline_storage::raw_block::{BlockHeader, RawBlock};
use std::collections::HashSet;
use std::sync::Arc;

/// Writer program counter (the steps of `writer_acquire` + one store).
const W_READ: u8 = 0; // read state, dispatch on it
const W_INC: u8 = 1; // saw Hot: register writer
const W_RECHECK: u8 = 2; // re-validate state after the increment
const W_WRITE: u8 = 3; // install a version (the in-place modification)
const W_RELEASE: u8 = 4; // deregister writer
const W_DONE: u8 = 5;

/// Freezer program counter (the steps of the worker's `try_freeze`).
const F_CHECK: u8 = 0; // still Cooling?
const F_SCAN: u8 = 1; // version column clean?
const F_BEGIN: u8 = 2; // CAS Cooling→Freezing + writer-count check
const F_RESCAN: u8 = 3; // re-scan under the exclusive lock
const F_FINISH: u8 = 4; // publish Frozen
const F_DONE: u8 = 5;

const OUTCOME_PENDING: u8 = 0;
const OUTCOME_FROZEN: u8 = 1;
const OUTCOME_PREEMPTED: u8 = 2;
const OUTCOME_NOT_YET: u8 = 3;

/// One explored configuration: the shared block words + both threads' PCs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Config {
    state: u32,
    writers: u32,
    version: u64,
    wpc: u8,
    wrote: bool,
    fpc: u8,
    outcome: u8,
}

struct Model {
    _block: RawBlock,
    _layout: Arc<BlockLayout>,
    h: BlockHeader,
    base: *mut u8,
    layout_ref: &'static BlockLayout,
}

impl Model {
    fn new() -> Model {
        let layout = Arc::new(
            BlockLayout::from_schema(&Schema::new(vec![ColumnDef::new("a", TypeId::BigInt)]))
                .unwrap(),
        );
        let block = RawBlock::new(&layout);
        let base = block.as_ptr();
        let h = unsafe { BlockHeader::new(base) };
        let layout_ref: &'static BlockLayout = unsafe { block.layout() };
        Model { _block: block, _layout: layout, h, base, layout_ref }
    }

    fn version(&self) -> u64 {
        unsafe { access::load_version(self.base, self.layout_ref, 0) }
    }

    fn set_version(&self, v: u64) {
        unsafe { access::version_ptr(self.base, self.layout_ref, 0) }
            .store(v, std::sync::atomic::Ordering::SeqCst);
    }

    /// Load `cfg`'s shared words onto the real block.
    fn restore(&self, cfg: Config) {
        self.h.set_state_raw(cfg.state);
        while self.h.writer_count() < cfg.writers {
            self.h.inc_writers();
        }
        while self.h.writer_count() > cfg.writers {
            self.h.dec_writers();
        }
        self.set_version(cfg.version);
    }

    /// Read the shared words back into a configuration.
    fn capture(&self, wpc: u8, wrote: bool, fpc: u8, outcome: u8) -> Config {
        Config {
            state: self.h.state_raw(),
            writers: self.h.writer_count(),
            version: self.version(),
            wpc,
            wrote,
            fpc,
            outcome,
        }
    }

    /// Execute one writer step from `cfg` (mirrors `writer_acquire`).
    fn writer_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let h = self.h;
        let (mut wpc, mut wrote) = (cfg.wpc, cfg.wrote);
        match cfg.wpc {
            W_READ => match BlockStateMachine::state(h) {
                BlockState::Hot => wpc = W_INC,
                BlockState::Cooling => {
                    // Preempt: CAS back to Hot, then re-read.
                    let _ = h.cas_state_raw(BlockState::Cooling as u32, BlockState::Hot as u32);
                }
                BlockState::Frozen => {
                    // Thaw; no in-place readers exist in this model, so the
                    // reader-drain spin of `writer_acquire` is a no-op.
                    let _ = h.cas_state_raw(BlockState::Frozen as u32, BlockState::Hot as u32);
                }
                BlockState::Freezing => {
                    // Spin: the freezer's critical section is short.
                }
                BlockState::Evicted | BlockState::Faulting => {
                    unreachable!("no evictor in the Fig. 9 model")
                }
            },
            W_INC => {
                h.inc_writers();
                wpc = W_RECHECK;
            }
            W_RECHECK => {
                if BlockStateMachine::state(h) == BlockState::Hot {
                    wpc = W_WRITE;
                } else {
                    h.dec_writers();
                    wpc = W_READ;
                }
            }
            W_WRITE => {
                // The modification a transaction makes: install a version.
                self.set_version(0xDEAD_BEEF);
                wrote = true;
                wpc = W_RELEASE;
            }
            W_RELEASE => {
                h.dec_writers();
                wpc = W_DONE;
            }
            _ => unreachable!("stepping a finished writer"),
        }
        self.capture(wpc, wrote, cfg.fpc, cfg.outcome)
    }

    /// Execute one freezer step from `cfg` (mirrors the coordinator's
    /// `try_freeze`, one atomic operation per step).
    fn freezer_step(&self, cfg: Config) -> Config {
        self.restore(cfg);
        let h = self.h;
        let fpc;
        let mut outcome = cfg.outcome;
        match cfg.fpc {
            F_CHECK => {
                if BlockStateMachine::state(h) != BlockState::Cooling {
                    outcome = OUTCOME_PREEMPTED;
                    fpc = F_DONE;
                } else {
                    fpc = F_SCAN;
                }
            }
            F_SCAN => {
                if self.version() != 0 {
                    outcome = OUTCOME_NOT_YET;
                    fpc = F_DONE;
                } else {
                    fpc = F_BEGIN;
                }
            }
            F_BEGIN => {
                if BlockStateMachine::begin_freezing(h) {
                    fpc = F_RESCAN;
                } else {
                    outcome = OUTCOME_PREEMPTED;
                    fpc = F_DONE;
                }
            }
            F_RESCAN => {
                if self.version() != 0 {
                    h.set_state_raw(BlockState::Hot as u32);
                    outcome = OUTCOME_NOT_YET;
                    fpc = F_DONE;
                } else {
                    fpc = F_FINISH;
                }
            }
            F_FINISH => {
                BlockStateMachine::finish_freezing(h);
                outcome = OUTCOME_FROZEN;
                fpc = F_DONE;
            }
            _ => unreachable!("stepping a finished freezer"),
        }
        self.capture(cfg.wpc, cfg.wrote, fpc, outcome)
    }
}

/// The Fig. 9 safety invariant, checked on every reachable configuration:
/// a block is never `Frozen` while a live version exists. (A *registered*
/// writer under `Frozen`/`Freezing` is legal — it may have incremented the
/// count after the freeze locked the block, in which case its re-validation
/// fails and it backs out without storing; asserting `writers == 0` here
/// would be stronger than the protocol guarantees.)
fn assert_invariant(cfg: Config, trail: &str) {
    if cfg.state == BlockState::Frozen as u32 {
        assert_eq!(
            cfg.version, 0,
            "Fig. 9 violated: block Frozen with a live version ({trail}): {cfg:?}"
        );
    }
}

/// Explore every interleaving from `initial`; returns the set of terminal
/// configurations (both threads done).
fn explore(initial: Config) -> HashSet<Config> {
    let model = Model::new();
    let mut visited: HashSet<Config> = HashSet::new();
    let mut terminals: HashSet<Config> = HashSet::new();
    let mut stack = vec![initial];
    assert_invariant(initial, "initial");
    while let Some(cfg) = stack.pop() {
        if !visited.insert(cfg) {
            continue;
        }
        if cfg.wpc == W_DONE && cfg.fpc == F_DONE {
            terminals.insert(cfg);
            continue;
        }
        if cfg.wpc != W_DONE {
            let next = model.writer_step(cfg);
            assert_invariant(next, "after writer step");
            stack.push(next);
        }
        if cfg.fpc != F_DONE {
            let next = model.freezer_step(cfg);
            assert_invariant(next, "after freezer step");
            stack.push(next);
        }
    }
    assert!(!terminals.is_empty(), "model never terminated");
    terminals
}

#[test]
fn writer_vs_freezer_all_interleavings_uphold_fig9() {
    // Initial condition: the compaction transaction flipped the block to
    // Cooling before committing and the GC has pruned its versions — the
    // exact state a block has when a (possibly stolen) cooling-queue entry
    // reaches a worker's freeze pass.
    let initial = Config {
        state: BlockState::Cooling as u32,
        writers: 0,
        version: 0,
        wpc: W_READ,
        wrote: false,
        fpc: F_CHECK,
        outcome: OUTCOME_PENDING,
    };
    let terminals = explore(initial);

    // Sanity on the outcome space: both the freeze and the preemption must
    // be reachable (otherwise the model is vacuous), and every terminal
    // with a completed freeze must carry the writer's version *after* a
    // thaw, never under Frozen (that is exactly Fig. 9).
    let outcomes: HashSet<u8> = terminals.iter().map(|t| t.outcome).collect();
    assert!(outcomes.contains(&OUTCOME_FROZEN), "freeze never succeeded in any schedule");
    assert!(outcomes.contains(&OUTCOME_PREEMPTED), "writer never preempted in any schedule");
    for t in &terminals {
        assert!(t.wrote, "the writer always completes its update eventually");
        if t.state == BlockState::Frozen as u32 {
            // A terminal can only stay Frozen if the writer wrote before
            // the freeze and the freezer caught it — impossible — or the
            // writer thawed afterwards, which leaves the block Hot.
            panic!("terminal Frozen state with a completed writer: {t:?}");
        }
    }
}

#[test]
fn late_registering_writer_backs_out_and_freeze_stays_safe() {
    // Initial condition: the writer loaded `Hot` from the block *before*
    // the compaction transaction cooled it, and is now about to register
    // (this is the interleaving a Cooling-only start misses). Its
    // registration may land at any point of the freeze — including between
    // `begin_freezing`'s writer-count check and `finish_freezing` — and it
    // must always re-validate, observe non-Hot, and back out without
    // storing; the freeze itself must stay safe.
    let initial = Config {
        state: BlockState::Cooling as u32,
        writers: 0,
        version: 0,
        wpc: W_INC, // past the Hot read, about to inc_writers
        wrote: false,
        fpc: F_CHECK,
        outcome: OUTCOME_PENDING,
    };
    let terminals = explore(initial);
    let outcomes: HashSet<u8> = terminals.iter().map(|t| t.outcome).collect();
    assert!(outcomes.contains(&OUTCOME_FROZEN), "freeze never succeeded in any schedule");
    for t in &terminals {
        assert_eq!(t.writers, 0, "writer left registered at termination: {t:?}");
        assert!(t.wrote, "the writer always completes its update eventually");
    }
}

#[test]
fn unpruned_versions_always_block_the_freeze() {
    // Initial condition: the version column still carries the compaction
    // transaction's version (GC has not pruned yet). No schedule may freeze.
    let initial = Config {
        state: BlockState::Cooling as u32,
        writers: 0,
        version: 7,
        wpc: W_READ,
        wrote: false,
        fpc: F_CHECK,
        outcome: OUTCOME_PENDING,
    };
    let terminals = explore(initial);
    for t in &terminals {
        assert_ne!(
            t.outcome, OUTCOME_FROZEN,
            "froze a block whose version column never scanned clean: {t:?}"
        );
    }
}
