//! Bitmaps: the engine's allocation bitmaps and Arrow-style validity bitmaps.
//!
//! Three flavours live here:
//!
//! * [`Bitmap`] — an owned, growable bitmap (used for Arrow validity buffers
//!   and bookkeeping off the hot path).
//! * [`raw`] — free functions that operate on *borrowed* byte slices, used for
//!   the bitmaps embedded inside raw 1 MB blocks where the storage crate owns
//!   the memory.
//! * [`atomic`] — the same operations with atomic read-modify-write semantics
//!   for the in-block allocation bitmap, which concurrent transactions flip
//!   when inserting/deleting (paper §3.1).

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of bytes needed to hold `bits` bits, rounded up to an 8-byte
/// boundary (Arrow requires 8-byte alignment of all buffers, §2.2).
#[inline]
pub fn bytes_for_bits_aligned(bits: usize) -> usize {
    (bits.div_ceil(8)).div_ceil(8) * 8
}

/// Number of bytes needed to hold `bits` bits, unaligned.
#[inline]
pub fn bytes_for_bits(bits: usize) -> usize {
    bits.div_ceil(8)
}

/// Operations on borrowed bitmap storage.
pub mod raw {
    /// Test bit `i`.
    #[inline]
    pub fn get(bytes: &[u8], i: usize) -> bool {
        bytes[i / 8] & (1 << (i % 8)) != 0
    }

    /// Set bit `i` to 1.
    #[inline]
    pub fn set(bytes: &mut [u8], i: usize) {
        bytes[i / 8] |= 1 << (i % 8);
    }

    /// Clear bit `i` to 0.
    #[inline]
    pub fn clear(bytes: &mut [u8], i: usize) {
        bytes[i / 8] &= !(1 << (i % 8));
    }

    /// Write bit `i`.
    #[inline]
    pub fn put(bytes: &mut [u8], i: usize, v: bool) {
        if v {
            set(bytes, i)
        } else {
            clear(bytes, i)
        }
    }

    /// Count set bits among the first `nbits` bits.
    pub fn count_ones(bytes: &[u8], nbits: usize) -> usize {
        let full = nbits / 8;
        let mut n: usize = bytes[..full].iter().map(|b| b.count_ones() as usize).sum();
        let rem = nbits % 8;
        if rem != 0 {
            n += (bytes[full] & ((1u8 << rem) - 1)).count_ones() as usize;
        }
        n
    }

    /// Iterate the indices of zero bits among the first `nbits` bits.
    pub fn iter_zeros(bytes: &[u8], nbits: usize) -> impl Iterator<Item = usize> + '_ {
        (0..nbits).filter(move |&i| !get(bytes, i))
    }

    /// Iterate the indices of set bits among the first `nbits` bits.
    pub fn iter_ones(bytes: &[u8], nbits: usize) -> impl Iterator<Item = usize> + '_ {
        (0..nbits).filter(move |&i| get(bytes, i))
    }
}

/// Atomic bit operations over a byte region viewed as `AtomicU8`s.
///
/// # Safety contract
/// Callers pass a raw pointer to a region of at least `bytes_for_bits(nbits)`
/// bytes that outlives the call and may be concurrently mutated *only* through
/// these atomic entry points while shared.
pub mod atomic {
    use super::*;

    /// Test bit `i` with the given ordering.
    ///
    /// # Safety
    /// `base` must point to at least `i/8 + 1` valid bytes.
    #[inline]
    pub unsafe fn get(base: *const u8, i: usize) -> bool {
        let cell = &*(base.add(i / 8) as *const AtomicU8);
        cell.load(Ordering::Acquire) & (1 << (i % 8)) != 0
    }

    /// Atomically set bit `i`; returns the previous value of the bit.
    ///
    /// # Safety
    /// `base` must point to at least `i/8 + 1` valid bytes.
    #[inline]
    pub unsafe fn fetch_set(base: *mut u8, i: usize) -> bool {
        let cell = &*(base.add(i / 8) as *const AtomicU8);
        cell.fetch_or(1 << (i % 8), Ordering::AcqRel) & (1 << (i % 8)) != 0
    }

    /// Atomically clear bit `i`; returns the previous value of the bit.
    ///
    /// # Safety
    /// `base` must point to at least `i/8 + 1` valid bytes.
    #[inline]
    pub unsafe fn fetch_clear(base: *mut u8, i: usize) -> bool {
        let cell = &*(base.add(i / 8) as *const AtomicU8);
        cell.fetch_and(!(1 << (i % 8)), Ordering::AcqRel) & (1 << (i % 8)) != 0
    }
}

/// Owned bitmap with Arrow-compatible backing storage.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    bytes: Vec<u8>,
    nbits: usize,
}

impl Bitmap {
    /// All-zero bitmap of `nbits` bits.
    pub fn new_zeroed(nbits: usize) -> Self {
        Bitmap { bytes: vec![0u8; bytes_for_bits_aligned(nbits).max(8)], nbits }
    }

    /// All-one bitmap of `nbits` bits.
    pub fn new_set(nbits: usize) -> Self {
        let mut b = Self::new_zeroed(nbits);
        for i in 0..nbits {
            b.set(i);
        }
        b
    }

    /// Build from a bool slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Self::new_zeroed(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            if v {
                b.set(i);
            }
        }
        b
    }

    /// Number of logical bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when the bitmap has zero logical bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        raw::get(&self.bytes, i)
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.nbits);
        raw::set(&mut self.bytes, i);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.nbits);
        raw::clear(&mut self.bytes, i);
    }

    /// Write bit `i`.
    #[inline]
    pub fn put(&mut self, i: usize, v: bool) {
        assert!(i < self.nbits);
        raw::put(&mut self.bytes, i, v);
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        raw::count_ones(&self.bytes, self.nbits)
    }

    /// Count of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.nbits - self.count_ones()
    }

    /// Backing bytes (8-byte aligned length).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Iterate all bits as bools.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.nbits).map(move |i| self.get(i))
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap[{}; ", self.nbits)?;
        for i in 0..self.nbits.min(64) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.nbits > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_helpers() {
        assert_eq!(bytes_for_bits(0), 0);
        assert_eq!(bytes_for_bits(1), 1);
        assert_eq!(bytes_for_bits(8), 1);
        assert_eq!(bytes_for_bits(9), 2);
        assert_eq!(bytes_for_bits_aligned(1), 8);
        assert_eq!(bytes_for_bits_aligned(64), 8);
        assert_eq!(bytes_for_bits_aligned(65), 16);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = Bitmap::new_zeroed(100);
        assert_eq!(b.count_ones(), 0);
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        for i in 0..100 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), 34);
        b.clear(0);
        assert!(!b.get(0));
        assert_eq!(b.count_ones(), 33);
    }

    #[test]
    fn new_set_is_all_ones() {
        let b = Bitmap::new_set(17);
        assert_eq!(b.count_ones(), 17);
        assert_eq!(b.count_zeros(), 0);
    }

    #[test]
    fn from_bools_matches() {
        let pattern = [true, false, true, true, false];
        let b = Bitmap::from_bools(&pattern);
        assert_eq!(b.iter().collect::<Vec<_>>(), pattern);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let b = Bitmap::new_zeroed(8);
        b.get(8);
    }

    #[test]
    fn raw_count_ones_partial_byte() {
        let bytes = [0xFFu8, 0xFF];
        assert_eq!(raw::count_ones(&bytes, 12), 12);
        assert_eq!(raw::count_ones(&bytes, 16), 16);
        assert_eq!(raw::count_ones(&bytes, 3), 3);
    }

    #[test]
    fn raw_iters() {
        let mut bytes = vec![0u8; 2];
        raw::set(&mut bytes, 1);
        raw::set(&mut bytes, 9);
        assert_eq!(raw::iter_ones(&bytes, 16).collect::<Vec<_>>(), vec![1, 9]);
        assert_eq!(raw::iter_zeros(&bytes, 4).collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn atomic_ops_single_thread() {
        let mut bytes = vec![0u8; 8];
        let p = bytes.as_mut_ptr();
        unsafe {
            assert!(!atomic::get(p, 5));
            assert!(!atomic::fetch_set(p, 5));
            assert!(atomic::get(p, 5));
            assert!(atomic::fetch_set(p, 5)); // already set
            assert!(atomic::fetch_clear(p, 5));
            assert!(!atomic::get(p, 5));
            assert!(!atomic::fetch_clear(p, 5)); // already clear
        }
    }

    #[test]
    fn atomic_ops_concurrent_distinct_bits() {
        use std::sync::Arc;
        // 256 bits, 8 threads each setting 32 distinct bits.
        let bytes = Arc::new(vec![0u8; 32]);
        let mut handles = vec![];
        for t in 0..8usize {
            let bytes = Arc::clone(&bytes);
            handles.push(std::thread::spawn(move || {
                let p = bytes.as_ptr() as *mut u8;
                for i in 0..32 {
                    unsafe {
                        atomic::fetch_set(p, t * 32 + i);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(raw::count_ones(&bytes, 256), 256);
    }
}
