//! Logical types and runtime values.
//!
//! The storage engine itself is type-oblivious (it moves fixed-size attribute
//! bytes and 16-byte varlen entries); this module provides the *logical* layer
//! used by the catalog, the workloads, and the export protocols.

/// Logical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeId {
    /// 1-byte signed integer.
    TinyInt,
    /// 2-byte signed integer.
    SmallInt,
    /// 4-byte signed integer.
    Integer,
    /// 8-byte signed integer.
    BigInt,
    /// 8-byte IEEE-754 double.
    Double,
    /// Variable-length byte string, stored as a 16-byte `VarlenEntry`.
    Varchar,
}

impl TypeId {
    /// Physical size of the attribute inside a block, in bytes.
    ///
    /// Varlens occupy the 16-byte inline entry of the relaxed format (Fig. 6).
    #[inline]
    pub fn attr_size(self) -> u16 {
        match self {
            TypeId::TinyInt => 1,
            TypeId::SmallInt => 2,
            TypeId::Integer => 4,
            TypeId::BigInt | TypeId::Double => 8,
            TypeId::Varchar => 16,
        }
    }

    /// True for variable-length types.
    #[inline]
    pub fn is_varlen(self) -> bool {
        matches!(self, TypeId::Varchar)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TypeId::TinyInt => "tinyint",
            TypeId::SmallInt => "smallint",
            TypeId::Integer => "integer",
            TypeId::BigInt => "bigint",
            TypeId::Double => "double",
            TypeId::Varchar => "varchar",
        }
    }
}

/// A runtime value of one of the [`TypeId`] types.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// `TypeId::TinyInt`
    TinyInt(i8),
    /// `TypeId::SmallInt`
    SmallInt(i16),
    /// `TypeId::Integer`
    Integer(i32),
    /// `TypeId::BigInt`
    BigInt(i64),
    /// `TypeId::Double`
    Double(f64),
    /// `TypeId::Varchar`
    Varchar(Vec<u8>),
}

impl Value {
    /// Type of this value, or `None` for NULL (NULL is any type).
    pub fn type_id(&self) -> Option<TypeId> {
        match self {
            Value::Null => None,
            Value::TinyInt(_) => Some(TypeId::TinyInt),
            Value::SmallInt(_) => Some(TypeId::SmallInt),
            Value::Integer(_) => Some(TypeId::Integer),
            Value::BigInt(_) => Some(TypeId::BigInt),
            Value::Double(_) => Some(TypeId::Double),
            Value::Varchar(_) => Some(TypeId::Varchar),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Check that the value can be stored in a column of type `ty`.
    pub fn compatible_with(&self, ty: TypeId) -> bool {
        match self.type_id() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Encode the fixed-length payload into `out` (little-endian).
    ///
    /// Panics for NULL and varlen values — those are handled by the caller
    /// (NULLs via bitmaps, varlens via `VarlenEntry`).
    pub fn encode_fixed(&self, out: &mut [u8]) {
        match self {
            Value::TinyInt(v) => out[..1].copy_from_slice(&v.to_le_bytes()),
            Value::SmallInt(v) => out[..2].copy_from_slice(&v.to_le_bytes()),
            Value::Integer(v) => out[..4].copy_from_slice(&v.to_le_bytes()),
            Value::BigInt(v) => out[..8].copy_from_slice(&v.to_le_bytes()),
            Value::Double(v) => out[..8].copy_from_slice(&v.to_le_bytes()),
            Value::Null | Value::Varchar(_) => {
                panic!("encode_fixed on {self:?}")
            }
        }
    }

    /// Decode a fixed-length payload of type `ty` from `bytes`.
    pub fn decode_fixed(ty: TypeId, bytes: &[u8]) -> Value {
        match ty {
            TypeId::TinyInt => Value::TinyInt(i8::from_le_bytes([bytes[0]])),
            TypeId::SmallInt => Value::SmallInt(i16::from_le_bytes([bytes[0], bytes[1]])),
            TypeId::Integer => Value::Integer(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
            TypeId::BigInt => Value::BigInt(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
            TypeId::Double => Value::Double(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
            TypeId::Varchar => panic!("decode_fixed on varlen type"),
        }
    }

    /// Render as text (used by the row-oriented wire protocol and CSV).
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::TinyInt(v) => v.to_string(),
            Value::SmallInt(v) => v.to_string(),
            Value::Integer(v) => v.to_string(),
            Value::BigInt(v) => v.to_string(),
            Value::Double(v) => format!("{v}"),
            Value::Varchar(v) => String::from_utf8_lossy(v).into_owned(),
        }
    }

    /// Convenience constructor for string values.
    pub fn string(s: &str) -> Value {
        Value::Varchar(s.as_bytes().to_vec())
    }

    /// Extract an `i64` widening any integer type; `None` otherwise.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::TinyInt(v) => Some(*v as i64),
            Value::SmallInt(v) => Some(*v as i64),
            Value::Integer(v) => Some(*v as i64),
            Value::BigInt(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `f64` from `Double`; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract the byte payload of a `Varchar`; `None` otherwise.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Varchar(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_sizes_match_paper() {
        assert_eq!(TypeId::BigInt.attr_size(), 8);
        // Fig. 6: VarlenEntry is padded to 16 bytes.
        assert_eq!(TypeId::Varchar.attr_size(), 16);
        assert!(TypeId::Varchar.is_varlen());
        assert!(!TypeId::BigInt.is_varlen());
    }

    #[test]
    fn fixed_roundtrip_all_types() {
        let cases = [
            Value::TinyInt(-5),
            Value::SmallInt(1234),
            Value::Integer(-99999),
            Value::BigInt(1 << 40),
            Value::Double(3.25),
        ];
        for v in cases {
            let ty = v.type_id().unwrap();
            let mut buf = [0u8; 8];
            v.encode_fixed(&mut buf);
            assert_eq!(Value::decode_fixed(ty, &buf), v);
        }
    }

    #[test]
    fn null_compat() {
        assert!(Value::Null.compatible_with(TypeId::BigInt));
        assert!(Value::Null.compatible_with(TypeId::Varchar));
        assert!(Value::BigInt(1).compatible_with(TypeId::BigInt));
        assert!(!Value::BigInt(1).compatible_with(TypeId::Integer));
    }

    #[test]
    #[should_panic]
    fn encode_fixed_rejects_varlen() {
        Value::string("x").encode_fixed(&mut [0u8; 16]);
    }

    #[test]
    fn text_rendering() {
        assert_eq!(Value::Null.to_text(), "");
        assert_eq!(Value::BigInt(7).to_text(), "7");
        assert_eq!(Value::string("hi").to_text(), "hi");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::TinyInt(3).as_i64(), Some(3));
        assert_eq!(Value::BigInt(9).as_i64(), Some(9));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::string("ab").as_bytes(), Some(&b"ab"[..]));
        assert_eq!(Value::Null.as_i64(), None);
    }
}
