//! Sign-bit timestamp encoding (paper §3.1).
//!
//! The transaction engine assigns each transaction a `(start, commit)` pair
//! generated from one global counter. While a transaction is running, its
//! "commit" timestamp is its start timestamp with the *sign bit flipped*,
//! which makes it larger than every committed timestamp under unsigned
//! comparison — so uncommitted versions are never visible to other readers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bit that marks a timestamp as belonging to an uncommitted transaction.
pub const UNCOMMITTED_BIT: u64 = 1 << 63;

/// A point in the global transaction order.
///
/// Stored as a raw `u64`; values with [`UNCOMMITTED_BIT`] set identify a
/// *running* transaction (they are transaction ids, not commit times).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest possible timestamp; nothing commits at or before it.
    pub const ZERO: Timestamp = Timestamp(0);
    /// Larger than every committed timestamp (but itself "uncommitted").
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// True if this value identifies a running (uncommitted) transaction.
    #[inline]
    pub fn is_uncommitted(self) -> bool {
        self.0 & UNCOMMITTED_BIT != 0
    }

    /// Convert a start timestamp into the matching uncommitted transaction id.
    #[inline]
    pub fn as_txn_id(self) -> Timestamp {
        Timestamp(self.0 | UNCOMMITTED_BIT)
    }

    /// Recover the start timestamp from an uncommitted transaction id.
    #[inline]
    pub fn strip_uncommitted(self) -> Timestamp {
        Timestamp(self.0 & !UNCOMMITTED_BIT)
    }

    /// Version visibility (paper §3.1): a version written at `self` is visible
    /// to a reader with start time `start` and transaction id `txn_id` iff it
    /// committed at or before the reader started, or the reader wrote it.
    #[inline]
    pub fn visible_to(self, start: Timestamp, txn_id: Timestamp) -> bool {
        // Unsigned comparison; uncommitted ids have the top bit set and are
        // therefore never <= a start timestamp.
        self.0 <= start.0 || self.0 == txn_id.0
    }
}

impl std::fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_uncommitted() {
            write!(f, "txn({})", self.0 & !UNCOMMITTED_BIT)
        } else {
            write!(f, "ts({})", self.0)
        }
    }
}

/// Monotonic source of timestamps, shared by the transaction manager and the
/// GC (which draws "unlink epochs" from the same order, §3.3).
#[derive(Debug)]
pub struct TimestampOracle {
    counter: AtomicU64,
}

impl TimestampOracle {
    /// Start the global order at 1 so `Timestamp::ZERO` predates everything.
    pub fn new() -> Self {
        TimestampOracle { counter: AtomicU64::new(1) }
    }

    /// Draw the next timestamp.
    #[inline]
    pub fn next(&self) -> Timestamp {
        Timestamp(self.counter.fetch_add(1, Ordering::SeqCst))
    }

    /// Observe the current position of the counter without advancing it.
    #[inline]
    pub fn peek(&self) -> Timestamp {
        Timestamp(self.counter.load(Ordering::SeqCst))
    }

    /// Ensure every future draw is strictly greater than `ts`. Recovery uses
    /// this so transactions begun after a replay sort *after* the replayed
    /// history — without it a fresh oracle would re-issue timestamps the
    /// crashed process already committed under, corrupting any log written
    /// from here on. Never moves the counter backwards.
    #[inline]
    pub fn advance_past(&self, ts: Timestamp) {
        self.counter.fetch_max(ts.0.saturating_add(1), Ordering::SeqCst);
    }
}

impl Default for TimestampOracle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_roundtrip() {
        let start = Timestamp(42);
        let id = start.as_txn_id();
        assert!(id.is_uncommitted());
        assert!(!start.is_uncommitted());
        assert_eq!(id.strip_uncommitted(), start);
    }

    #[test]
    fn uncommitted_never_visible_to_others() {
        let writer = Timestamp(10).as_txn_id();
        let reader_start = Timestamp(u64::MAX >> 1); // largest committed time
        let reader_id = Timestamp(11).as_txn_id();
        assert!(!writer.visible_to(reader_start, reader_id));
    }

    #[test]
    fn own_writes_visible() {
        let me = Timestamp(10).as_txn_id();
        assert!(me.visible_to(Timestamp(10), me));
    }

    #[test]
    fn committed_visibility_is_start_inclusive() {
        let commit = Timestamp(5);
        let none = Timestamp(0).as_txn_id();
        assert!(commit.visible_to(Timestamp(5), none));
        assert!(commit.visible_to(Timestamp(6), none));
        assert!(!commit.visible_to(Timestamp(4), none));
    }

    #[test]
    fn oracle_is_monotonic() {
        let o = TimestampOracle::new();
        let a = o.next();
        let b = o.next();
        let c = o.next();
        assert!(a < b && b < c);
        assert!(o.peek() > c);
    }

    #[test]
    fn oracle_concurrent_uniqueness() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let o = Arc::new(TimestampOracle::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let o = Arc::clone(&o);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| o.next().0).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for t in h.join().unwrap() {
                assert!(seen.insert(t), "duplicate timestamp {t}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }
}
