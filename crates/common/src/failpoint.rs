//! Test-only crash-point injection for durability code.
//!
//! The checkpoint publish sequence and WAL truncation consult
//! [`check`] before every externally visible file operation (write, fsync,
//! rename, remove). In production the hook is disarmed and costs one relaxed
//! atomic load. A crash-matrix test arms it with a *budget* of N operations:
//! the first N calls succeed, call N+1 (and every later one) fails with an
//! injected I/O error — modelling a process that died after the Nth
//! operation reached the filesystem. Iterating N across the whole sequence
//! proves every prefix of the publish protocol leaves a recoverable state.
//!
//! The hook is process-global, so tests that arm it must serialize
//! themselves (the crash-matrix suite holds a mutex around each armed
//! section) and must not run concurrently with background threads that
//! touch instrumented code paths.

use crate::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Budget value meaning "disarmed" (the default).
const DISARMED: u64 = u64::MAX;

static BUDGET: AtomicU64 = AtomicU64::new(DISARMED);
static HITS: AtomicU64 = AtomicU64::new(0);
static TRIPPED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Arm the hook: the next `budget` checked operations succeed, everything
/// after fails. Also resets the hit counter and the tripped flag.
pub fn arm(budget: u64) {
    HITS.store(0, Ordering::SeqCst);
    TRIPPED.store(false, Ordering::SeqCst);
    BUDGET.store(budget, Ordering::SeqCst);
}

/// Arm with an effectively unlimited budget — nothing fails, but every
/// checked operation is counted. Used to measure how many crash points a
/// sequence has before iterating over them.
pub fn arm_counting() {
    arm(DISARMED - 1);
}

/// Disarm the hook (the default state).
pub fn disarm() {
    BUDGET.store(DISARMED, Ordering::SeqCst);
}

/// Number of checked operations since the last [`arm`].
pub fn hits() -> u64 {
    HITS.load(Ordering::SeqCst)
}

/// True once an armed check has actually failed (the simulated crash
/// happened). Exhausting the budget alone does not trip — the N budgeted
/// operations all succeeded; it is operation N+1 that dies.
pub fn tripped() -> bool {
    TRIPPED.load(Ordering::SeqCst)
}

/// Consult the hook before a file operation. Returns `Ok(())` when the
/// operation may proceed; an injected [`Error::Io`] once the armed budget is
/// exhausted. Disarmed (the default), this is a single relaxed load.
#[inline]
pub fn check(label: &str) -> Result<()> {
    if BUDGET.load(Ordering::Relaxed) == DISARMED {
        return Ok(());
    }
    HITS.fetch_add(1, Ordering::SeqCst);
    let admitted = BUDGET
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
            if b == DISARMED || b == 0 {
                None // disarmed race, or budget exhausted: leave as-is
            } else {
                Some(b - 1)
            }
        })
        .is_ok();
    if !admitted && BUDGET.load(Ordering::SeqCst) == 0 {
        TRIPPED.store(true, Ordering::SeqCst);
        return Err(Error::Io(std::io::Error::other(format!("injected crash at {label}"))));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test only: the hook is process-global state and `cargo test` runs
    // test functions concurrently.
    #[test]
    fn budget_semantics() {
        assert!(check("disarmed").is_ok());
        assert_eq!(hits(), 0, "disarmed checks are not counted");

        arm(2);
        assert!(check("a").is_ok());
        assert!(check("b").is_ok());
        assert!(!tripped());
        assert!(check("c").is_err(), "third op exceeds the budget of 2");
        assert!(tripped());
        assert!(check("d").is_err(), "after the crash everything fails");
        assert_eq!(hits(), 4);

        arm_counting();
        for _ in 0..10 {
            assert!(check("count").is_ok());
        }
        assert_eq!(hits(), 10);
        assert!(!tripped());

        disarm();
        assert!(check("again").is_ok());
        assert!(!tripped());
    }
}
