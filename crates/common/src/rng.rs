//! Small deterministic RNG (xoshiro256**) for workload generation.
//!
//! Benchmarks must be reproducible run-to-run; this RNG is seedable, fast,
//! and has no global state. It is *not* cryptographically secure.

/// xoshiro256** state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via splitmix64 so that any u64 seed (including 0) works.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // use 128-bit multiply for unbiased-enough mapping.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.next_below((hi - lo + 1) as u64) as i64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Random alphanumeric string of length in `[lo, hi]` (TPC-C a-string).
    pub fn alnum_string(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let len = self.int_range(lo as i64, hi as i64) as usize;
        (0..len).map(|_| CHARS[self.next_below(CHARS.len() as u64) as usize]).collect()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Zipfian distribution over `[0, n)` with skew `theta` (YCSB-style).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Precompute constants for `n` items with skew `theta` in (0,1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta));
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is fine for the sizes the workloads use.
        (1..=n.min(1_000_000)).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw a sample in `[0, n)`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bounds_respected() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            let i = r.int_range(-5, 5);
            assert!((-5..=5).contains(&i));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_range_hits_extremes() {
        let mut r = Xoshiro256::seed_from_u64(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.int_range(0, 3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn alnum_string_lengths() {
        let mut r = Xoshiro256::seed_from_u64(5);
        for _ in 0..100 {
            let s = r.alnum_string(3, 9);
            assert!((3..=9).contains(&s.len()));
            assert!(s.iter().all(|b| b.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skews_low_ids() {
        let z = Zipf::new(1000, 0.9);
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut low = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let s = z.sample(&mut r);
            assert!(s < 1000);
            if s < 100 {
                low += 1;
            }
        }
        // With theta=0.9 the bottom 10% of ids should draw well over half.
        assert!(low as f64 / n as f64 > 0.5, "low fraction {}", low as f64 / n as f64);
    }
}
