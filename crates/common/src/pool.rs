//! Fixed-size buffer-segment pool (paper §3.1, §3.4).
//!
//! Undo and redo buffers are linked lists of fixed-size segments "drawn from a
//! global object pool" so that installing a delta never moves earlier records.
//! The pool recycles segments to avoid allocator churn on the transaction hot
//! path.

use parking_lot::Mutex;

/// Size in bytes of one undo/redo buffer segment (paper: 4096 bytes).
pub const SEGMENT_SIZE: usize = 4096;

/// A reusable byte segment. Records are bump-allocated from `data[..len]`.
pub struct Segment {
    data: Box<[u8; SEGMENT_SIZE]>,
    len: usize,
}

impl Segment {
    fn new() -> Self {
        Segment { data: Box::new([0u8; SEGMENT_SIZE]), len: 0 }
    }

    /// Try to reserve `n` bytes aligned to `align`; returns a stable pointer.
    ///
    /// The pointer stays valid until the segment is returned to the pool
    /// (segments are never moved or resized — that is the whole point).
    pub fn reserve(&mut self, n: usize, align: usize) -> Option<*mut u8> {
        debug_assert!(align.is_power_of_two());
        let base = self.data.as_ptr() as usize;
        let start = (base + self.len + align - 1) & !(align - 1);
        let end = start - base + n;
        if end > SEGMENT_SIZE {
            return None;
        }
        self.len = end;
        Some((start) as *mut u8)
    }

    /// Bytes used so far.
    pub fn used(&self) -> usize {
        self.len
    }

    /// Reset for reuse.
    fn reset(&mut self) {
        self.len = 0;
    }

    /// Base pointer of the segment's storage.
    pub fn base_ptr(&self) -> *const u8 {
        self.data.as_ptr()
    }
}

/// Global pool of [`Segment`]s with an upper bound on retained free segments.
pub struct SegmentPool {
    free: Mutex<Vec<Segment>>,
    max_retained: usize,
}

impl SegmentPool {
    /// Pool retaining at most `max_retained` free segments.
    pub fn new(max_retained: usize) -> Self {
        SegmentPool { free: Mutex::new(Vec::new()), max_retained }
    }

    /// Take a segment (reused if available, freshly allocated otherwise).
    pub fn acquire(&self) -> Segment {
        if let Some(mut s) = self.free.lock().pop() {
            s.reset();
            return s;
        }
        Segment::new()
    }

    /// Return a segment to the pool; drops it if the pool is full.
    pub fn release(&self, seg: Segment) {
        let mut free = self.free.lock();
        if free.len() < self.max_retained {
            free.push(seg);
        }
    }

    /// Number of retained free segments (for tests/metrics).
    pub fn retained(&self) -> usize {
        self.free.lock().len()
    }
}

impl Default for SegmentPool {
    fn default() -> Self {
        // Enough to absorb a burst of a few thousand transactions.
        SegmentPool::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_within_segment() {
        let mut s = Segment::new();
        let a = s.reserve(100, 8).unwrap();
        let b = s.reserve(100, 8).unwrap();
        assert_ne!(a, b);
        assert!(s.used() >= 200);
        // Alignment respected.
        assert_eq!(a as usize % 8, 0);
        assert_eq!(b as usize % 8, 0);
    }

    #[test]
    fn reserve_exhaustion() {
        let mut s = Segment::new();
        assert!(s.reserve(SEGMENT_SIZE, 1).is_some());
        assert!(s.reserve(1, 1).is_none());
    }

    #[test]
    fn reserve_pointer_is_stable_and_writable() {
        let mut s = Segment::new();
        let p = s.reserve(8, 8).unwrap();
        unsafe {
            (p as *mut u64).write(0xDEADBEEF);
        }
        let _ = s.reserve(64, 8).unwrap();
        unsafe {
            assert_eq!((p as *const u64).read(), 0xDEADBEEF);
        }
    }

    #[test]
    fn pool_recycles() {
        let pool = SegmentPool::new(2);
        let mut s = pool.acquire();
        s.reserve(100, 1).unwrap();
        pool.release(s);
        assert_eq!(pool.retained(), 1);
        let s2 = pool.acquire();
        assert_eq!(s2.used(), 0, "segment must be reset on reuse");
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn pool_bounds_retention() {
        let pool = SegmentPool::new(1);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.retained(), 1);
    }

    #[test]
    fn pool_concurrent_acquire_release() {
        use std::sync::Arc;
        let pool = Arc::new(SegmentPool::new(64));
        let mut handles = vec![];
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let mut s = pool.acquire();
                    let p = s.reserve(16, 8).unwrap();
                    unsafe { (p as *mut u64).write(7) };
                    pool.release(s);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
