//! Logical table schemas.
//!
//! The catalog creates a [`Schema`] once per table; the storage layer derives
//! a physical block layout from it (paper §3.2: "the system calculates layout
//! once for a table when the application creates it").

use crate::value::TypeId;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (catalog-level; the storage layer only sees indices).
    pub name: String,
    /// Logical type.
    pub ty: TypeId,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Non-nullable column.
    pub fn new(name: &str, ty: TypeId) -> Self {
        ColumnDef { name: name.to_string(), ty, nullable: false }
    }

    /// Nullable column.
    pub fn nullable(name: &str, ty: TypeId) -> Self {
        ColumnDef { name: name.to_string(), ty, nullable: true }
    }
}

/// A logical table schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema; panics on duplicate column names or zero columns.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        assert!(!columns.is_empty(), "schema needs at least one column");
        for (i, c) in columns.iter().enumerate() {
            for other in &columns[i + 1..] {
                assert_ne!(c.name, other.name, "duplicate column {}", c.name);
            }
        }
        Schema { columns }
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> &ColumnDef {
        &self.columns[i]
    }

    /// Iterator over the column types.
    pub fn types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.columns.iter().map(|c| c.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", TypeId::BigInt),
            ColumnDef::nullable("name", TypeId::Varchar),
            ColumnDef::new("qty", TypeId::Integer),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("qty"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn column_metadata() {
        let s = sample();
        assert!(s.column(1).nullable);
        assert!(!s.column(0).nullable);
        assert_eq!(
            s.types().collect::<Vec<_>>(),
            vec![TypeId::BigInt, TypeId::Varchar, TypeId::Integer]
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            ColumnDef::new("a", TypeId::BigInt),
            ColumnDef::new("a", TypeId::Integer),
        ]);
    }

    #[test]
    #[should_panic]
    fn empty_schema_rejected() {
        Schema::new(vec![]);
    }
}
