//! `mainline-common` — shared substrate for the mainline storage engine.
//!
//! This crate holds the primitive vocabulary types used by every other crate in
//! the workspace: raw and atomic bitmaps, the sign-bit timestamp encoding from
//! the paper (§3.1), reusable buffer-segment pools (§3.1 "undo buffers are a
//! linked list of fixed-sized segments"), the logical type system and runtime
//! values, and a small deterministic RNG for workload generation.

pub mod bitmap;
pub mod error;
pub mod failpoint;
pub mod pool;
pub mod rng;
pub mod schema;
pub mod timestamp;
pub mod value;

pub use error::{Error, Result};
pub use timestamp::Timestamp;
