//! Unified error type for the workspace.

use std::fmt;

/// Errors surfaced by the storage engine and its substrates.
#[derive(Debug)]
pub enum Error {
    /// A transaction must abort because it lost a write-write conflict.
    WriteWriteConflict,
    /// A transaction attempted an operation after it finished.
    TransactionFinished,
    /// The target tuple slot does not hold a visible tuple.
    TupleNotVisible,
    /// A unique-key constraint would be violated.
    DuplicateKey,
    /// The requested key was not found.
    KeyNotFound,
    /// A table, column, or catalog object was not found.
    NotFound(String),
    /// The operation is not valid for the block's current state.
    InvalidBlockState(&'static str),
    /// Schema/layout constraint violated (e.g. too many columns, oversized row).
    Layout(String),
    /// Type mismatch between a value and a column.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// Malformed serialized data (WAL, IPC, CSV, wire protocol).
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WriteWriteConflict => write!(f, "write-write conflict"),
            Error::TransactionFinished => write!(f, "transaction already finished"),
            Error::TupleNotVisible => write!(f, "tuple not visible"),
            Error::DuplicateKey => write!(f, "duplicate key"),
            Error::KeyNotFound => write!(f, "key not found"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::InvalidBlockState(s) => write!(f, "invalid block state: {s}"),
            Error::Layout(msg) => write!(f, "layout error: {msg}"),
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<Error> = vec![
            Error::WriteWriteConflict,
            Error::TransactionFinished,
            Error::TupleNotVisible,
            Error::DuplicateKey,
            Error::KeyNotFound,
            Error::NotFound("t".into()),
            Error::InvalidBlockState("hot"),
            Error::Layout("too wide".into()),
            Error::TypeMismatch { expected: "i64", got: "varlen" },
            Error::Corrupt("bad magic".into()),
            Error::Io(std::io::Error::other("x")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        fn helper() -> Result<()> {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))?;
            Ok(())
        }
        assert!(matches!(helper(), Err(Error::Io(_))));
    }

    #[test]
    fn source_only_for_io() {
        use std::error::Error as _;
        assert!(Error::DuplicateKey.source().is_none());
        let io = Error::Io(std::io::Error::other("x"));
        assert!(io.source().is_some());
    }
}
