//! Shared scaffolding for write-burst / backpressure stress drivers.
//!
//! The admission-control tests and the `fig_backpressure` bench all need
//! the same ingredients: a wide fixed-size schema (so a block holds only a
//! few thousand rows and a burst spans many blocks without six-figure
//! insert counts) and deterministic rows for it. They live here so the
//! recipe is defined once.

use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};

/// A schema of `cols` BigInt columns. At 32 columns a row occupies ~270
/// bytes (with bitmaps), so a 1 MB block holds ~3.9 K rows.
pub fn wide_schema(cols: usize) -> Schema {
    Schema::new((0..cols).map(|i| ColumnDef::new(&format!("c{i}"), TypeId::BigInt)).collect())
}

/// Row `i` for [`wide_schema`]`(cols)`: deterministic, distinct per column.
pub fn wide_row(cols: usize, i: i64) -> Vec<Value> {
    (0..cols as i64).map(|c| Value::BigInt(i ^ (c << 32))).collect()
}
