//! `mainline-workloads` — benchmark drivers for the paper's evaluation.
//!
//! * [`tpcc`] — TPC-C schema, loader, and the five transaction types with
//!   the standard mix (Fig. 10).
//! * [`tpch`] — a TPC-H `LINEITEM` generator (Fig. 1's export source).
//! * [`rowcol`] — the row-store vs column-store micro-benchmark (Fig. 11).
//! * [`stress`] — wide-schema helpers shared by the backpressure /
//!   admission-control stress tests and the `fig_backpressure` bench.
//!
//! # Example
//!
//! ```
//! use mainline_db::{Database, DbConfig};
//! use mainline_workloads::tpch;
//!
//! let db = Database::open(DbConfig::default()).unwrap();
//! let lineitem = tpch::load_lineitem(&db, 500, 42).unwrap();
//! let txn = db.manager().begin();
//! assert_eq!(lineitem.table().count_visible(&txn), 500);
//! db.manager().commit(&txn);
//! db.shutdown();
//! ```

pub mod rowcol;
pub mod stress;
pub mod tpcc;
pub mod tpch;
