//! `mainline-workloads` — benchmark drivers for the paper's evaluation.
//!
//! * [`tpcc`] — TPC-C schema, loader, and the five transaction types with
//!   the standard mix (Fig. 10).
//! * [`tpch`] — a TPC-H `LINEITEM` generator (Fig. 1's export source).
//! * [`rowcol`] — the row-store vs column-store micro-benchmark (Fig. 11).

pub mod rowcol;
pub mod tpcc;
pub mod tpch;
