//! TPC-H `LINEITEM` generator — the Fig. 1 / Fig. 15 export source.
//!
//! The paper measures exporting LINEITEM at scale factor 10 (60 M rows);
//! the generator here produces the same 16-column shape at any row count,
//! with realistic value distributions (dates as epoch days, enum-like
//! low-cardinality strings, free-text comments).

use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_common::Result;
use mainline_db::{Database, TableHandle};
use std::sync::Arc;

/// Rows per TPC-H scale factor.
pub const ROWS_PER_SF: u64 = 6_000_000;

/// The LINEITEM schema.
pub fn lineitem_schema() -> Schema {
    use TypeId::*;
    Schema::new(vec![
        ColumnDef::new("l_orderkey", BigInt),
        ColumnDef::new("l_partkey", BigInt),
        ColumnDef::new("l_suppkey", BigInt),
        ColumnDef::new("l_linenumber", Integer),
        ColumnDef::new("l_quantity", Double),
        ColumnDef::new("l_extendedprice", Double),
        ColumnDef::new("l_discount", Double),
        ColumnDef::new("l_tax", Double),
        ColumnDef::new("l_returnflag", Varchar),
        ColumnDef::new("l_linestatus", Varchar),
        ColumnDef::new("l_shipdate", BigInt),
        ColumnDef::new("l_commitdate", BigInt),
        ColumnDef::new("l_receiptdate", BigInt),
        ColumnDef::new("l_shipinstruct", Varchar),
        ColumnDef::new("l_shipmode", Varchar),
        ColumnDef::new("l_comment", Varchar),
    ])
}

const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const LINE_STATUS: [&str; 2] = ["F", "O"];
const SHIP_INSTRUCT: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const SHIP_MODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Generate one LINEITEM row.
pub fn lineitem_row(rng: &mut Xoshiro256, orderkey: i64, linenumber: i32) -> Vec<Value> {
    let quantity = rng.int_range(1, 50) as f64;
    let price = rng.int_range(90_000, 110_000) as f64 / 100.0 * quantity;
    let ship = rng.int_range(8_766, 10_957); // ~1994..2000 in epoch days
    vec![
        Value::BigInt(orderkey),
        Value::BigInt(rng.int_range(1, 200_000)),
        Value::BigInt(rng.int_range(1, 10_000)),
        Value::Integer(linenumber),
        Value::Double(quantity),
        Value::Double(price),
        Value::Double(rng.int_range(0, 10) as f64 / 100.0),
        Value::Double(rng.int_range(0, 8) as f64 / 100.0),
        Value::string(RETURN_FLAGS[rng.next_below(3) as usize]),
        Value::string(LINE_STATUS[rng.next_below(2) as usize]),
        Value::BigInt(ship),
        Value::BigInt(ship + rng.int_range(-30, 30)),
        Value::BigInt(ship + rng.int_range(1, 30)),
        Value::string(SHIP_INSTRUCT[rng.next_below(4) as usize]),
        Value::string(SHIP_MODE[rng.next_below(7) as usize]),
        Value::Varchar(rng.alnum_string(10, 43)),
    ]
}

/// Create and populate a LINEITEM table with `rows` rows.
pub fn load_lineitem(db: &Database, rows: u64, seed: u64) -> Result<Arc<TableHandle>> {
    let handle = db.create_table("lineitem", lineitem_schema(), vec![], true)?;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let m = db.manager();
    let mut produced = 0u64;
    let mut orderkey = 1i64;
    // Batch into chunky transactions to keep undo-buffer churn sane.
    while produced < rows {
        let txn = m.begin();
        let batch_end = (produced + 50_000).min(rows);
        while produced < batch_end {
            let nlines = rng.int_range(1, 7).min((rows - produced) as i64);
            for n in 1..=nlines {
                handle.insert(&txn, &lineitem_row(&mut rng, orderkey, n as i32));
            }
            produced += nlines as u64;
            orderkey += 1;
        }
        m.commit(&txn);
    }
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_db::DbConfig;

    #[test]
    fn generator_shape() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let row = lineitem_row(&mut rng, 42, 3);
        assert_eq!(row.len(), 16);
        assert_eq!(row[0], Value::BigInt(42));
        assert_eq!(row[3], Value::Integer(3));
        assert!(row[4].as_f64().unwrap() >= 1.0);
        assert!(RETURN_FLAGS.contains(&row[8].to_text().as_str()));
    }

    #[test]
    fn loader_hits_row_count() {
        let db = Database::open(DbConfig::default()).unwrap();
        let t = load_lineitem(&db, 5_000, 9).unwrap();
        let txn = db.manager().begin();
        assert_eq!(t.table().count_visible(&txn), 5_000);
        db.manager().commit(&txn);
        db.shutdown();
    }
}
