//! TPC-C (revision 5.9-style) against the mainline storage engine.
//!
//! The paper's §6.1 runs TPC-C with one warehouse per worker, JIT-compiled
//! stored procedures, and the block transformation targeting the cold-data
//! tables ORDER, ORDER_LINE, HISTORY, and ITEM. Here the five transactions
//! are Rust functions over the `TableHandle` API (same role as compiled
//! stored procedures), with the standard mix.

use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::{TypeId, Value};
use mainline_common::{Error, Result};
use mainline_db::{Database, IndexSpec, TableHandle};
use std::sync::Arc;

/// Scale knobs. `TpccConfig::spec()` follows the TPC-C sizes; tests use
/// `TpccConfig::mini()`.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u32,
    /// Items in the catalog (spec: 100_000).
    pub items: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3_000).
    pub customers: u32,
    /// Initial orders per district (spec: 3_000).
    pub orders: u32,
}

impl TpccConfig {
    /// Spec-faithful sizes (heavy: ~500 K rows per warehouse).
    pub fn spec(warehouses: u32) -> Self {
        TpccConfig { warehouses, items: 100_000, districts: 10, customers: 3_000, orders: 3_000 }
    }

    /// Bench sizes: full shape at ~1/10 volume per warehouse.
    pub fn bench(warehouses: u32) -> Self {
        TpccConfig { warehouses, items: 10_000, districts: 10, customers: 300, orders: 300 }
    }

    /// Tiny sizes for unit tests.
    pub fn mini(warehouses: u32) -> Self {
        TpccConfig { warehouses, items: 200, districts: 2, customers: 30, orders: 20 }
    }
}

/// Handles to the nine TPC-C tables.
pub struct Tpcc {
    /// Scale configuration.
    pub config: TpccConfig,
    /// WAREHOUSE.
    pub warehouse: Arc<TableHandle>,
    /// DISTRICT.
    pub district: Arc<TableHandle>,
    /// CUSTOMER.
    pub customer: Arc<TableHandle>,
    /// HISTORY (cold: transformation target).
    pub history: Arc<TableHandle>,
    /// NEW_ORDER.
    pub new_order: Arc<TableHandle>,
    /// ORDER (cold: transformation target).
    pub order: Arc<TableHandle>,
    /// ORDER_LINE (cold: transformation target).
    pub order_line: Arc<TableHandle>,
    /// ITEM (read-only: transformation target).
    pub item: Arc<TableHandle>,
    /// STOCK.
    pub stock: Arc<TableHandle>,
}

/// Per-driver counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct TpccStats {
    /// Committed transactions by type: [NewOrder, Payment, OrderStatus, Delivery, StockLevel].
    pub committed: [u64; 5],
    /// Aborts (write-write conflicts + the 1% NewOrder rollbacks).
    pub aborted: u64,
    /// Transactions whose admission was throttled (yielded or stalled)
    /// because the transformation pipeline fell behind (§4.4's control
    /// loop; always 0 when transformation or backpressure is disabled).
    pub throttled: u64,
}

impl TpccStats {
    /// Total committed transactions.
    pub fn total(&self) -> u64 {
        self.committed.iter().sum()
    }
}

const V: fn(&str) -> Value = Value::string;

impl Tpcc {
    /// Create the TPC-C tables. `transform_cold_tables` registers ORDER,
    /// ORDER_LINE, HISTORY, and ITEM with the transformation pipeline
    /// (§6.1's target set).
    pub fn create(db: &Database, config: TpccConfig, transform_cold_tables: bool) -> Result<Tpcc> {
        use TypeId::*;
        let warehouse = db.create_table(
            "warehouse",
            Schema::new(vec![
                ColumnDef::new("w_id", Integer),
                ColumnDef::new("w_name", Varchar),
                ColumnDef::new("w_street_1", Varchar),
                ColumnDef::new("w_street_2", Varchar),
                ColumnDef::new("w_city", Varchar),
                ColumnDef::new("w_state", Varchar),
                ColumnDef::new("w_zip", Varchar),
                ColumnDef::new("w_tax", Double),
                ColumnDef::new("w_ytd", Double),
            ]),
            vec![IndexSpec::new("pk", &[0])],
            false,
        )?;
        let district = db.create_table(
            "district",
            Schema::new(vec![
                ColumnDef::new("d_w_id", Integer),
                ColumnDef::new("d_id", Integer),
                ColumnDef::new("d_name", Varchar),
                ColumnDef::new("d_street_1", Varchar),
                ColumnDef::new("d_city", Varchar),
                ColumnDef::new("d_state", Varchar),
                ColumnDef::new("d_zip", Varchar),
                ColumnDef::new("d_tax", Double),
                ColumnDef::new("d_ytd", Double),
                ColumnDef::new("d_next_o_id", BigInt),
            ]),
            vec![IndexSpec::new("pk", &[0, 1])],
            false,
        )?;
        let customer = db.create_table(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_w_id", Integer),
                ColumnDef::new("c_d_id", Integer),
                ColumnDef::new("c_id", Integer),
                ColumnDef::new("c_first", Varchar),
                ColumnDef::new("c_middle", Varchar),
                ColumnDef::new("c_last", Varchar),
                ColumnDef::new("c_street_1", Varchar),
                ColumnDef::new("c_city", Varchar),
                ColumnDef::new("c_state", Varchar),
                ColumnDef::new("c_zip", Varchar),
                ColumnDef::new("c_phone", Varchar),
                ColumnDef::new("c_since", BigInt),
                ColumnDef::new("c_credit", Varchar),
                ColumnDef::new("c_credit_lim", Double),
                ColumnDef::new("c_discount", Double),
                ColumnDef::new("c_balance", Double),
                ColumnDef::new("c_ytd_payment", Double),
                ColumnDef::new("c_payment_cnt", Integer),
                ColumnDef::new("c_delivery_cnt", Integer),
                ColumnDef::new("c_data", Varchar),
            ]),
            vec![IndexSpec::new("pk", &[0, 1, 2]), IndexSpec::new("by_last", &[0, 1, 5])],
            false,
        )?;
        let history = db.create_table(
            "history",
            Schema::new(vec![
                ColumnDef::new("h_c_id", Integer),
                ColumnDef::new("h_c_d_id", Integer),
                ColumnDef::new("h_c_w_id", Integer),
                ColumnDef::new("h_d_id", Integer),
                ColumnDef::new("h_w_id", Integer),
                ColumnDef::new("h_date", BigInt),
                ColumnDef::new("h_amount", Double),
                ColumnDef::new("h_data", Varchar),
            ]),
            vec![],
            transform_cold_tables,
        )?;
        let new_order = db.create_table(
            "new_order",
            Schema::new(vec![
                ColumnDef::new("no_w_id", Integer),
                ColumnDef::new("no_d_id", Integer),
                ColumnDef::new("no_o_id", BigInt),
            ]),
            vec![IndexSpec::new("pk", &[0, 1, 2])],
            false,
        )?;
        let order = db.create_table(
            "order",
            Schema::new(vec![
                ColumnDef::new("o_w_id", Integer),
                ColumnDef::new("o_d_id", Integer),
                ColumnDef::new("o_id", BigInt),
                ColumnDef::new("o_c_id", Integer),
                ColumnDef::new("o_entry_d", BigInt),
                ColumnDef::new("o_carrier_id", Integer),
                ColumnDef::new("o_ol_cnt", Integer),
                ColumnDef::new("o_all_local", Integer),
            ]),
            vec![IndexSpec::new("pk", &[0, 1, 2]), IndexSpec::new("by_customer", &[0, 1, 3, 2])],
            transform_cold_tables,
        )?;
        let order_line = db.create_table(
            "order_line",
            Schema::new(vec![
                ColumnDef::new("ol_w_id", Integer),
                ColumnDef::new("ol_d_id", Integer),
                ColumnDef::new("ol_o_id", BigInt),
                ColumnDef::new("ol_number", Integer),
                ColumnDef::new("ol_i_id", Integer),
                ColumnDef::new("ol_supply_w_id", Integer),
                ColumnDef::new("ol_delivery_d", BigInt),
                ColumnDef::new("ol_quantity", Integer),
                ColumnDef::new("ol_amount", Double),
                ColumnDef::new("ol_dist_info", Varchar),
            ]),
            vec![IndexSpec::new("pk", &[0, 1, 2, 3])],
            transform_cold_tables,
        )?;
        let item = db.create_table(
            "item",
            Schema::new(vec![
                ColumnDef::new("i_id", Integer),
                ColumnDef::new("i_im_id", Integer),
                ColumnDef::new("i_name", Varchar),
                ColumnDef::new("i_price", Double),
                ColumnDef::new("i_data", Varchar),
            ]),
            vec![IndexSpec::new("pk", &[0])],
            transform_cold_tables,
        )?;
        let stock = db.create_table(
            "stock",
            Schema::new(vec![
                ColumnDef::new("s_w_id", Integer),
                ColumnDef::new("s_i_id", Integer),
                ColumnDef::new("s_quantity", Integer),
                ColumnDef::new("s_dist_info", Varchar),
                ColumnDef::new("s_ytd", Double),
                ColumnDef::new("s_order_cnt", Integer),
                ColumnDef::new("s_remote_cnt", Integer),
                ColumnDef::new("s_data", Varchar),
            ]),
            vec![IndexSpec::new("pk", &[0, 1])],
            false,
        )?;
        Ok(Tpcc {
            config,
            warehouse,
            district,
            customer,
            history,
            new_order,
            order,
            order_line,
            item,
            stock,
        })
    }

    /// Load initial data (one transaction per warehouse region + one for
    /// items, mirroring the usual loader granularity).
    pub fn load(&self, db: &Database, seed: u64) -> Result<()> {
        let cfg = &self.config;
        let m = db.manager();
        let mut rng = Xoshiro256::seed_from_u64(seed);

        // ITEM.
        let txn = m.begin();
        for i in 1..=cfg.items {
            self.item.insert(
                &txn,
                &[
                    Value::Integer(i as i32),
                    Value::Integer(rng.int_range(1, 10_000) as i32),
                    Value::Varchar(rng.alnum_string(14, 24)),
                    Value::Double(rng.int_range(100, 10_000) as f64 / 100.0),
                    Value::Varchar(rng.alnum_string(26, 50)),
                ],
            );
        }
        m.commit(&txn);

        for w in 1..=cfg.warehouses as i32 {
            let txn = m.begin();
            self.warehouse.insert(
                &txn,
                &[
                    Value::Integer(w),
                    Value::Varchar(rng.alnum_string(6, 10)),
                    Value::Varchar(rng.alnum_string(10, 20)),
                    Value::Varchar(rng.alnum_string(10, 20)),
                    Value::Varchar(rng.alnum_string(10, 20)),
                    Value::Varchar(rng.alnum_string(2, 2)),
                    Value::Varchar(rng.alnum_string(9, 9)),
                    Value::Double(rng.int_range(0, 2000) as f64 / 10_000.0),
                    Value::Double(300_000.0),
                ],
            );
            // STOCK.
            for i in 1..=cfg.items {
                self.stock.insert(
                    &txn,
                    &[
                        Value::Integer(w),
                        Value::Integer(i as i32),
                        Value::Integer(rng.int_range(10, 100) as i32),
                        Value::Varchar(rng.alnum_string(24, 24)),
                        Value::Double(0.0),
                        Value::Integer(0),
                        Value::Integer(0),
                        Value::Varchar(rng.alnum_string(26, 50)),
                    ],
                );
            }
            for d in 1..=cfg.districts as i32 {
                self.district.insert(
                    &txn,
                    &[
                        Value::Integer(w),
                        Value::Integer(d),
                        Value::Varchar(rng.alnum_string(6, 10)),
                        Value::Varchar(rng.alnum_string(10, 20)),
                        Value::Varchar(rng.alnum_string(10, 20)),
                        Value::Varchar(rng.alnum_string(2, 2)),
                        Value::Varchar(rng.alnum_string(9, 9)),
                        Value::Double(rng.int_range(0, 2000) as f64 / 10_000.0),
                        Value::Double(30_000.0),
                        Value::BigInt(cfg.orders as i64 + 1),
                    ],
                );
                for c in 1..=cfg.customers as i32 {
                    self.customer.insert(
                        &txn,
                        &[
                            Value::Integer(w),
                            Value::Integer(d),
                            Value::Integer(c),
                            Value::Varchar(rng.alnum_string(8, 16)),
                            V("OE"),
                            Value::string(&last_name((c as u64 - 1) % 1000)),
                            Value::Varchar(rng.alnum_string(10, 20)),
                            Value::Varchar(rng.alnum_string(10, 20)),
                            Value::Varchar(rng.alnum_string(2, 2)),
                            Value::Varchar(rng.alnum_string(9, 9)),
                            Value::Varchar(rng.alnum_string(16, 16)),
                            Value::BigInt(0),
                            if rng.next_below(10) == 0 { V("BC") } else { V("GC") },
                            Value::Double(50_000.0),
                            Value::Double(rng.int_range(0, 5000) as f64 / 10_000.0),
                            Value::Double(-10.0),
                            Value::Double(10.0),
                            Value::Integer(1),
                            Value::Integer(0),
                            Value::Varchar(rng.alnum_string(100, 200)),
                        ],
                    );
                    self.history.insert(
                        &txn,
                        &[
                            Value::Integer(c),
                            Value::Integer(d),
                            Value::Integer(w),
                            Value::Integer(d),
                            Value::Integer(w),
                            Value::BigInt(0),
                            Value::Double(10.0),
                            Value::Varchar(rng.alnum_string(12, 24)),
                        ],
                    );
                }
                // Initial orders: each customer has exactly one, scrambled.
                let mut cust_ids: Vec<i32> = (1..=cfg.customers as i32).collect();
                rng.shuffle(&mut cust_ids);
                for o in 1..=cfg.orders as i64 {
                    let c_id = cust_ids[(o as usize - 1) % cust_ids.len()];
                    let ol_cnt = rng.int_range(5, 15) as i32;
                    let delivered = o <= (cfg.orders as i64 * 7 / 10);
                    self.order.insert(
                        &txn,
                        &[
                            Value::Integer(w),
                            Value::Integer(d),
                            Value::BigInt(o),
                            Value::Integer(c_id),
                            Value::BigInt(o),
                            Value::Integer(if delivered { rng.int_range(1, 10) as i32 } else { 0 }),
                            Value::Integer(ol_cnt),
                            Value::Integer(1),
                        ],
                    );
                    if !delivered {
                        self.new_order.insert(
                            &txn,
                            &[Value::Integer(w), Value::Integer(d), Value::BigInt(o)],
                        );
                    }
                    for n in 1..=ol_cnt {
                        self.order_line.insert(
                            &txn,
                            &[
                                Value::Integer(w),
                                Value::Integer(d),
                                Value::BigInt(o),
                                Value::Integer(n),
                                Value::Integer(rng.int_range(1, cfg.items as i64) as i32),
                                Value::Integer(w),
                                Value::BigInt(if delivered { o } else { 0 }),
                                Value::Integer(5),
                                Value::Double(if delivered {
                                    0.0
                                } else {
                                    rng.int_range(1, 999_999) as f64 / 100.0
                                }),
                                Value::Varchar(rng.alnum_string(24, 24)),
                            ],
                        );
                    }
                }
            }
            m.commit(&txn);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// NEW-ORDER. Returns `Err` on write-write conflict (caller aborts and
    /// counts it); the 1% invalid-item case rolls back internally per spec.
    pub fn new_order(&self, db: &Database, rng: &mut Xoshiro256, w_id: i32) -> Result<bool> {
        let cfg = &self.config;
        let m = db.manager();
        let txn = m.begin();
        let result = (|| -> Result<bool> {
            let d_id = rng.int_range(1, cfg.districts as i64) as i32;
            let c_id = rng.int_range(1, cfg.customers as i64) as i32;

            let (_, wrow) = self
                .warehouse
                .lookup(&txn, "pk", &[Value::Integer(w_id)])?
                .ok_or(Error::TupleNotVisible)?;
            let w_tax = wrow[7].as_f64().unwrap();

            let (d_slot, drow) = self
                .district
                .lookup(&txn, "pk", &[Value::Integer(w_id), Value::Integer(d_id)])?
                .ok_or(Error::TupleNotVisible)?;
            let d_tax = drow[7].as_f64().unwrap();
            let o_id = drow[9].as_i64().unwrap();
            self.district.update(&txn, d_slot, &[(9, Value::BigInt(o_id + 1))])?;

            let (_, crow) = self
                .customer
                .lookup(
                    &txn,
                    "pk",
                    &[Value::Integer(w_id), Value::Integer(d_id), Value::Integer(c_id)],
                )?
                .ok_or(Error::TupleNotVisible)?;
            let c_discount = crow[14].as_f64().unwrap();

            let ol_cnt = rng.int_range(5, 15) as i32;
            // 1% of NEW-ORDERs roll back on an unused item id (spec 2.4.1.4).
            let rollback = rng.next_below(100) == 0;

            self.order.insert(
                &txn,
                &[
                    Value::Integer(w_id),
                    Value::Integer(d_id),
                    Value::BigInt(o_id),
                    Value::Integer(c_id),
                    Value::BigInt(o_id),
                    Value::Integer(0),
                    Value::Integer(ol_cnt),
                    Value::Integer(1),
                ],
            );
            self.new_order
                .insert(&txn, &[Value::Integer(w_id), Value::Integer(d_id), Value::BigInt(o_id)]);

            let mut total = 0.0;
            for n in 1..=ol_cnt {
                let i_id = if rollback && n == ol_cnt {
                    -1 // unused item
                } else {
                    rng.int_range(1, cfg.items as i64) as i32
                };
                let Some((_, irow)) = self.item.lookup(&txn, "pk", &[Value::Integer(i_id)])? else {
                    // Spec rollback.
                    return Ok(false);
                };
                let i_price = irow[3].as_f64().unwrap();

                // 1% remote warehouse when multi-warehouse.
                let supply_w = if cfg.warehouses > 1 && rng.next_below(100) == 0 {
                    let mut o = rng.int_range(1, cfg.warehouses as i64) as i32;
                    if o == w_id {
                        o = o % cfg.warehouses as i32 + 1;
                    }
                    o
                } else {
                    w_id
                };
                let (s_slot, srow) = self
                    .stock
                    .lookup(&txn, "pk", &[Value::Integer(supply_w), Value::Integer(i_id)])?
                    .ok_or(Error::TupleNotVisible)?;
                let qty = rng.int_range(1, 10) as i32;
                let s_qty = srow[2].as_i64().unwrap() as i32;
                let new_qty = if s_qty >= qty + 10 { s_qty - qty } else { s_qty - qty + 91 };
                self.stock.update(
                    &txn,
                    s_slot,
                    &[
                        (2, Value::Integer(new_qty)),
                        (4, Value::Double(srow[4].as_f64().unwrap() + qty as f64)),
                        (5, Value::Integer(srow[5].as_i64().unwrap() as i32 + 1)),
                        (
                            6,
                            Value::Integer(
                                srow[6].as_i64().unwrap() as i32
                                    + if supply_w != w_id { 1 } else { 0 },
                            ),
                        ),
                    ],
                )?;

                let amount = qty as f64 * i_price;
                total += amount;
                self.order_line.insert(
                    &txn,
                    &[
                        Value::Integer(w_id),
                        Value::Integer(d_id),
                        Value::BigInt(o_id),
                        Value::Integer(n),
                        Value::Integer(i_id),
                        Value::Integer(supply_w),
                        Value::BigInt(0),
                        Value::Integer(qty),
                        Value::Double(amount),
                        Value::Varchar(rng.alnum_string(24, 24)),
                    ],
                );
            }
            let _ = total * (1.0 + w_tax + d_tax) * (1.0 - c_discount);
            Ok(true)
        })();
        match result {
            Ok(true) => {
                m.commit(&txn);
                Ok(true)
            }
            Ok(false) | Err(_) => {
                m.abort(&txn);
                result
            }
        }
    }

    /// PAYMENT.
    pub fn payment(&self, db: &Database, rng: &mut Xoshiro256, w_id: i32) -> Result<()> {
        let cfg = &self.config;
        let m = db.manager();
        let txn = m.begin();
        let result = (|| -> Result<()> {
            let d_id = rng.int_range(1, cfg.districts as i64) as i32;
            let amount = rng.int_range(100, 500_000) as f64 / 100.0;

            let (w_slot, wrow) = self
                .warehouse
                .lookup(&txn, "pk", &[Value::Integer(w_id)])?
                .ok_or(Error::TupleNotVisible)?;
            self.warehouse.update(
                &txn,
                w_slot,
                &[(8, Value::Double(wrow[8].as_f64().unwrap() + amount))],
            )?;

            let (d_slot, drow) = self
                .district
                .lookup(&txn, "pk", &[Value::Integer(w_id), Value::Integer(d_id)])?
                .ok_or(Error::TupleNotVisible)?;
            self.district.update(
                &txn,
                d_slot,
                &[(8, Value::Double(drow[8].as_f64().unwrap() + amount))],
            )?;

            // 60% by last name, 40% by id (spec 2.5.1.2).
            let (c_slot, crow) = if rng.next_below(100) < 60 {
                let name = last_name(rng.int_range(0, 999) as u64 % 1000);
                let matches = self.customer.scan_prefix(
                    &txn,
                    "by_last",
                    &[Value::Integer(w_id), Value::Integer(d_id), Value::string(&name)],
                    usize::MAX,
                )?;
                if matches.is_empty() {
                    // Name not present at this scale: fall back to id.
                    let c_id = rng.int_range(1, cfg.customers as i64) as i32;
                    self.customer
                        .lookup(
                            &txn,
                            "pk",
                            &[Value::Integer(w_id), Value::Integer(d_id), Value::Integer(c_id)],
                        )?
                        .ok_or(Error::TupleNotVisible)?
                } else {
                    // Middle match, rounded up.
                    matches[matches.len() / 2].clone()
                }
            } else {
                let c_id = rng.int_range(1, cfg.customers as i64) as i32;
                self.customer
                    .lookup(
                        &txn,
                        "pk",
                        &[Value::Integer(w_id), Value::Integer(d_id), Value::Integer(c_id)],
                    )?
                    .ok_or(Error::TupleNotVisible)?
            };
            self.customer.update(
                &txn,
                c_slot,
                &[
                    (15, Value::Double(crow[15].as_f64().unwrap() - amount)),
                    (16, Value::Double(crow[16].as_f64().unwrap() + amount)),
                    (17, Value::Integer(crow[17].as_i64().unwrap() as i32 + 1)),
                ],
            )?;

            self.history.insert(
                &txn,
                &[
                    crow[2].clone(),
                    crow[1].clone(),
                    crow[0].clone(),
                    Value::Integer(d_id),
                    Value::Integer(w_id),
                    Value::BigInt(1),
                    Value::Double(amount),
                    Value::Varchar(rng.alnum_string(12, 24)),
                ],
            );
            Ok(())
        })();
        match result {
            Ok(()) => {
                m.commit(&txn);
                Ok(())
            }
            Err(e) => {
                m.abort(&txn);
                Err(e)
            }
        }
    }

    /// ORDER-STATUS (read-only).
    pub fn order_status(&self, db: &Database, rng: &mut Xoshiro256, w_id: i32) -> Result<()> {
        let cfg = &self.config;
        let m = db.manager();
        let txn = m.begin();
        let result = (|| -> Result<()> {
            let d_id = rng.int_range(1, cfg.districts as i64) as i32;
            let c_id = rng.int_range(1, cfg.customers as i64) as i32;
            let Some((_, _crow)) = self.customer.lookup(
                &txn,
                "pk",
                &[Value::Integer(w_id), Value::Integer(d_id), Value::Integer(c_id)],
            )?
            else {
                return Ok(());
            };
            // Most recent order for this customer.
            let orders = self.order.scan_prefix(
                &txn,
                "by_customer",
                &[Value::Integer(w_id), Value::Integer(d_id), Value::Integer(c_id)],
                usize::MAX,
            )?;
            if let Some((_, orow)) = orders.last() {
                let o_id = orow[2].as_i64().unwrap();
                let lines = self.order_line.scan_prefix(
                    &txn,
                    "pk",
                    &[Value::Integer(w_id), Value::Integer(d_id), Value::BigInt(o_id)],
                    usize::MAX,
                )?;
                // Consistency: ol count matches o_ol_cnt.
                debug_assert_eq!(lines.len() as i64, orow[6].as_i64().unwrap());
            }
            Ok(())
        })();
        // Read-only: always commits (and still gets a commit record, §3.4).
        match result {
            Ok(()) => {
                m.commit(&txn);
                Ok(())
            }
            Err(e) => {
                m.abort(&txn);
                Err(e)
            }
        }
    }

    /// DELIVERY: deliver the oldest undelivered order in every district.
    pub fn delivery(&self, db: &Database, rng: &mut Xoshiro256, w_id: i32) -> Result<()> {
        let cfg = &self.config;
        let m = db.manager();
        let carrier = rng.int_range(1, 10) as i32;
        let txn = m.begin();
        let result = (|| -> Result<()> {
            for d_id in 1..=cfg.districts as i32 {
                let Some((no_slot, no_row)) = self.new_order.first_at_or_after(
                    &txn,
                    "pk",
                    &[Value::Integer(w_id), Value::Integer(d_id), Value::BigInt(0)],
                    &[Value::Integer(w_id), Value::Integer(d_id)],
                )?
                else {
                    continue; // no undelivered orders in this district
                };
                let o_id = no_row[2].as_i64().unwrap();
                self.new_order.delete(&txn, no_slot)?;

                let (o_slot, orow) = self
                    .order
                    .lookup(
                        &txn,
                        "pk",
                        &[Value::Integer(w_id), Value::Integer(d_id), Value::BigInt(o_id)],
                    )?
                    .ok_or(Error::TupleNotVisible)?;
                let c_id = orow[3].as_i64().unwrap() as i32;
                self.order.update(&txn, o_slot, &[(5, Value::Integer(carrier))])?;

                let lines = self.order_line.scan_prefix(
                    &txn,
                    "pk",
                    &[Value::Integer(w_id), Value::Integer(d_id), Value::BigInt(o_id)],
                    usize::MAX,
                )?;
                let mut amount_sum = 0.0;
                for (ol_slot, ol_row) in &lines {
                    amount_sum += ol_row[8].as_f64().unwrap();
                    self.order_line.update(&txn, *ol_slot, &[(6, Value::BigInt(1))])?;
                }

                let (c_slot, crow) = self
                    .customer
                    .lookup(
                        &txn,
                        "pk",
                        &[Value::Integer(w_id), Value::Integer(d_id), Value::Integer(c_id)],
                    )?
                    .ok_or(Error::TupleNotVisible)?;
                self.customer.update(
                    &txn,
                    c_slot,
                    &[
                        (15, Value::Double(crow[15].as_f64().unwrap() + amount_sum)),
                        (18, Value::Integer(crow[18].as_i64().unwrap() as i32 + 1)),
                    ],
                )?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                m.commit(&txn);
                Ok(())
            }
            Err(e) => {
                m.abort(&txn);
                Err(e)
            }
        }
    }

    /// STOCK-LEVEL (read-only).
    pub fn stock_level(&self, db: &Database, rng: &mut Xoshiro256, w_id: i32) -> Result<()> {
        let cfg = &self.config;
        let m = db.manager();
        let txn = m.begin();
        let result = (|| -> Result<()> {
            let d_id = rng.int_range(1, cfg.districts as i64) as i32;
            let threshold = rng.int_range(10, 20) as i32;
            let (_, drow) = self
                .district
                .lookup(&txn, "pk", &[Value::Integer(w_id), Value::Integer(d_id)])?
                .ok_or(Error::TupleNotVisible)?;
            let next_o = drow[9].as_i64().unwrap();
            let mut distinct = std::collections::HashSet::new();
            for o_id in (next_o - 20).max(1)..next_o {
                let lines = self.order_line.scan_prefix(
                    &txn,
                    "pk",
                    &[Value::Integer(w_id), Value::Integer(d_id), Value::BigInt(o_id)],
                    usize::MAX,
                )?;
                for (_, ol) in lines {
                    let i_id = ol[4].as_i64().unwrap() as i32;
                    if i_id < 0 {
                        continue;
                    }
                    if let Some((_, srow)) = self.stock.lookup(
                        &txn,
                        "pk",
                        &[Value::Integer(w_id), Value::Integer(i_id)],
                    )? {
                        if (srow[2].as_i64().unwrap() as i32) < threshold {
                            distinct.insert(i_id);
                        }
                    }
                }
            }
            let _ = distinct.len();
            Ok(())
        })();
        match result {
            Ok(()) => {
                m.commit(&txn);
                Ok(())
            }
            Err(e) => {
                m.abort(&txn);
                Err(e)
            }
        }
    }

    /// Run one transaction from the standard mix (45/43/4/4/4), recording
    /// the outcome (committed per type / aborted / failed) into `stats`.
    ///
    /// The driver consults admission control at the transaction boundary —
    /// the safest point to pause, before any version-chain entry is created
    /// — so a backlogged transformation pipeline throttles the whole mix,
    /// not just individual writes inside open transactions.
    pub fn run_one(&self, db: &Database, rng: &mut Xoshiro256, w_id: i32, stats: &mut TpccStats) {
        if db.admission().admit() != mainline_db::Admission::Admitted {
            stats.throttled += 1;
        }
        let roll = rng.next_below(100);
        let outcome = if roll < 45 {
            self.new_order(db, rng, w_id).map(|committed| committed.then_some(0))
        } else if roll < 88 {
            self.payment(db, rng, w_id).map(|_| Some(1))
        } else if roll < 92 {
            self.order_status(db, rng, w_id).map(|_| Some(2))
        } else if roll < 96 {
            self.delivery(db, rng, w_id).map(|_| Some(3))
        } else {
            self.stock_level(db, rng, w_id).map(|_| Some(4))
        };
        match outcome {
            Ok(Some(ty)) => stats.committed[ty] += 1,
            Ok(None) | Err(_) => stats.aborted += 1,
        }
    }

    /// Consistency check (TPC-C §3.3.2.1-ish): for every district,
    /// `d_next_o_id - 1` equals the max order id, and order-line counts
    /// match their orders.
    pub fn check_consistency(&self, db: &Database) -> Result<()> {
        let m = db.manager();
        let txn = m.begin();
        for w in 1..=self.config.warehouses as i32 {
            for d in 1..=self.config.districts as i32 {
                let (_, drow) = self
                    .district
                    .lookup(&txn, "pk", &[Value::Integer(w), Value::Integer(d)])?
                    .ok_or(Error::TupleNotVisible)?;
                let next_o = drow[9].as_i64().unwrap();
                let orders = self.order.scan_prefix(
                    &txn,
                    "pk",
                    &[Value::Integer(w), Value::Integer(d)],
                    usize::MAX,
                )?;
                let max_o = orders.iter().map(|(_, o)| o[2].as_i64().unwrap()).max().unwrap_or(0);
                if max_o != next_o - 1 {
                    return Err(Error::Corrupt(format!(
                        "w{w}d{d}: max order {max_o} vs next_o_id {next_o}"
                    )));
                }
                for (_, orow) in &orders {
                    let o_id = orow[2].as_i64().unwrap();
                    let lines = self.order_line.scan_prefix(
                        &txn,
                        "pk",
                        &[Value::Integer(w), Value::Integer(d), Value::BigInt(o_id)],
                        usize::MAX,
                    )?;
                    if lines.len() as i64 != orow[6].as_i64().unwrap() {
                        return Err(Error::Corrupt(format!(
                            "w{w}d{d}o{o_id}: {} lines vs o_ol_cnt {}",
                            lines.len(),
                            orow[6].as_i64().unwrap()
                        )));
                    }
                }
            }
        }
        m.commit(&txn);
        Ok(())
    }
}

/// TPC-C last-name generator (spec 4.3.2.3).
pub fn last_name(num: u64) -> String {
    const SYLLABLES: [&str; 10] =
        ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];
    format!(
        "{}{}{}",
        SYLLABLES[(num / 100 % 10) as usize],
        SYLLABLES[(num / 10 % 10) as usize],
        SYLLABLES[(num % 10) as usize]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_db::DbConfig;

    fn mini_db() -> (Arc<Database>, Tpcc) {
        let db = Database::open(DbConfig::default()).unwrap();
        let tpcc = Tpcc::create(&db, TpccConfig::mini(2), false).unwrap();
        tpcc.load(&db, 42).unwrap();
        (db, tpcc)
    }

    #[test]
    fn loader_populates_consistent_state() {
        let (db, tpcc) = mini_db();
        tpcc.check_consistency(&db).unwrap();
        let txn = db.manager().begin();
        let cfg = &tpcc.config;
        assert_eq!(
            tpcc.customer.table().count_visible(&txn),
            (cfg.warehouses * cfg.districts * cfg.customers) as usize
        );
        assert_eq!(
            tpcc.order.table().count_visible(&txn),
            (cfg.warehouses * cfg.districts * cfg.orders) as usize
        );
        db.manager().commit(&txn);
    }

    #[test]
    fn new_order_advances_district_counter() {
        let (db, tpcc) = mini_db();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut done = 0;
        while done < 20 {
            if tpcc.new_order(&db, &mut rng, 1).unwrap_or(false) {
                done += 1;
            }
        }
        tpcc.check_consistency(&db).unwrap();
    }

    #[test]
    fn payment_accumulates_ytd() {
        let (db, tpcc) = mini_db();
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..20 {
            let _ = tpcc.payment(&db, &mut rng, 1);
        }
        let txn = db.manager().begin();
        let (_, wrow) = tpcc.warehouse.lookup(&txn, "pk", &[Value::Integer(1)]).unwrap().unwrap();
        assert!(wrow[8].as_f64().unwrap() > 300_000.0);
        // Warehouse YTD == sum of district YTDs (TPC-C consistency cond. 1).
        let districts =
            tpcc.district.scan_prefix(&txn, "pk", &[Value::Integer(1)], usize::MAX).unwrap();
        let d_sum: f64 = districts.iter().map(|(_, d)| d[8].as_f64().unwrap()).sum();
        let expected = wrow[8].as_f64().unwrap() - 300_000.0 + 30_000.0 * districts.len() as f64;
        assert!((d_sum - expected).abs() < 1e-6, "{d_sum} vs {expected}");
        db.manager().commit(&txn);
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let (db, tpcc) = mini_db();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let txn = db.manager().begin();
        let before = tpcc.new_order.table().count_visible(&txn);
        db.manager().commit(&txn);
        assert!(before > 0);
        tpcc.delivery(&db, &mut rng, 1).unwrap();
        let txn = db.manager().begin();
        let after = tpcc.new_order.table().count_visible(&txn);
        db.manager().commit(&txn);
        assert_eq!(after, before - tpcc.config.districts as usize);
        tpcc.check_consistency(&db).unwrap();
    }

    #[test]
    fn order_status_and_stock_level_are_read_only() {
        let (db, tpcc) = mini_db();
        let mut rng = Xoshiro256::seed_from_u64(11);
        let txn = db.manager().begin();
        let orders_before = tpcc.order.table().count_visible(&txn);
        db.manager().commit(&txn);
        for _ in 0..10 {
            tpcc.order_status(&db, &mut rng, 1).unwrap();
            tpcc.stock_level(&db, &mut rng, 2).unwrap();
        }
        let txn = db.manager().begin();
        assert_eq!(tpcc.order.table().count_visible(&txn), orders_before);
        db.manager().commit(&txn);
        tpcc.check_consistency(&db).unwrap();
    }

    #[test]
    fn payment_by_last_name_selects_middle_customer() {
        let (db, tpcc) = mini_db();
        // Directly exercise the by-name index path used by Payment.
        let txn = db.manager().begin();
        let name = last_name(0); // "BARBARBAR": c_id 1 in every district
        let matches = tpcc
            .customer
            .scan_prefix(
                &txn,
                "by_last",
                &[Value::Integer(1), Value::Integer(1), Value::string(&name)],
                usize::MAX,
            )
            .unwrap();
        assert!(!matches.is_empty());
        assert!(matches.iter().all(|(_, c)| c[5] == Value::string(&name)));
        db.manager().commit(&txn);
    }

    #[test]
    fn full_mix_runs_clean() {
        let (db, tpcc) = mini_db();
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut stats = TpccStats::default();
        for _ in 0..300 {
            let w = 1 + rng.next_below(2) as i32;
            tpcc.run_one(&db, &mut rng, w, &mut stats);
        }
        assert!(stats.total() > 250, "stats: {stats:?}");
        assert!(stats.committed[0] > 0 && stats.committed[1] > 0);
        tpcc.check_consistency(&db).unwrap();
    }

    #[test]
    fn concurrent_workers_stay_consistent() {
        let db = Database::open(DbConfig {
            gc_interval: std::time::Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let tpcc = Arc::new(Tpcc::create(&db, TpccConfig::mini(4), false).unwrap());
        tpcc.load(&db, 7).unwrap();
        let mut handles = vec![];
        for w in 1..=4i32 {
            let db = Arc::clone(&db);
            let tpcc = Arc::clone(&tpcc);
            handles.push(std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(w as u64);
                let mut stats = TpccStats::default();
                for _ in 0..150 {
                    tpcc.run_one(&db, &mut rng, w, &mut stats);
                }
                stats
            }));
        }
        let mut total = 0;
        for h in handles {
            total += h.join().unwrap().total();
        }
        assert!(total > 400);
        tpcc.check_consistency(&db).unwrap();
        db.shutdown();
    }

    #[test]
    fn last_name_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }
}
