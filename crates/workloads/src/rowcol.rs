//! Row-store vs column-store micro-benchmark (paper Fig. 11).
//!
//! "We simulate a row-store by declaring a single, large column that stores
//! all of a tuple's attributes contiguously. Each attribute is an 8-byte
//! fixed-length integer. We fix the number of threads executing queries and
//! scale up the number of attributes per tuple from one to 64."
//!
//! The single large column is a varlen column holding the packed `8·k`-byte
//! tuple (the engine's widest fixed attribute is 16 bytes, same as the
//! paper's system): inserts write the whole tuple once, and updates rewrite
//! the whole tuple — the classic row-store write amplification that the
//! experiment is about. Index maintenance is excluded ("this cost is the
//! same for both storage models"), so this module drives `DataTable`
//! directly.

use mainline_common::rng::Xoshiro256;
use mainline_common::schema::{ColumnDef, Schema};
use mainline_common::value::TypeId;
use mainline_storage::layout::NUM_RESERVED_COLS;
use mainline_storage::{ProjectedRow, TupleSlot, VarlenEntry};
use mainline_txn::{DataTable, TransactionManager};
use std::sync::Arc;

/// Storage model under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageModel {
    /// One 8-byte column per attribute (the engine's native model).
    Column,
    /// One wide column holding the whole packed tuple.
    Row,
}

/// A table of `attrs` 8-byte integer attributes under the given model.
pub struct RowColTable {
    /// Storage model.
    pub model: StorageModel,
    /// Logical attribute count.
    pub attrs: usize,
    /// The backing table.
    pub table: Arc<DataTable>,
}

impl RowColTable {
    /// Build the table.
    pub fn new(model: StorageModel, attrs: usize) -> Self {
        assert!((1..=64).contains(&attrs));
        let table = match model {
            StorageModel::Column => {
                let cols =
                    (0..attrs).map(|i| ColumnDef::new(&format!("a{i}"), TypeId::BigInt)).collect();
                DataTable::new(1, Schema::new(cols)).unwrap()
            }
            StorageModel::Row => {
                DataTable::new(1, Schema::new(vec![ColumnDef::new("row", TypeId::Varchar)]))
                    .unwrap()
            }
        };
        RowColTable { model, attrs, table }
    }

    fn packed_tuple(&self, rng: &mut Xoshiro256) -> Vec<u8> {
        let mut bytes = vec![0u8; self.attrs * 8];
        for c in 0..self.attrs {
            bytes[c * 8..(c + 1) * 8].copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        bytes
    }

    /// Insert one tuple; returns its slot.
    pub fn insert(&self, txn: &mainline_txn::Transaction, rng: &mut Xoshiro256) -> TupleSlot {
        match self.model {
            StorageModel::Column => {
                let mut row = ProjectedRow::with_capacity(self.attrs);
                for c in 0..self.attrs {
                    let mut image = [0u8; 16];
                    image[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                    row.push_raw((c + NUM_RESERVED_COLS) as u16, false, image);
                }
                self.table.insert(txn, &row)
            }
            StorageModel::Row => {
                let mut row = ProjectedRow::with_capacity(1);
                row.push_varlen(1, VarlenEntry::from_bytes(&self.packed_tuple(rng)));
                self.table.insert(txn, &row)
            }
        }
    }

    /// Update `k` attributes of an existing tuple. The column-store touches
    /// exactly `k` columns; the row-store must rewrite the whole tuple.
    pub fn update(
        &self,
        txn: &mainline_txn::Transaction,
        slot: TupleSlot,
        k: usize,
        rng: &mut Xoshiro256,
    ) -> mainline_common::Result<()> {
        let k = k.min(self.attrs);
        match self.model {
            StorageModel::Column => {
                let mut delta = ProjectedRow::with_capacity(k);
                for c in 0..k {
                    let mut image = [0u8; 16];
                    image[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                    delta.push_raw((c + NUM_RESERVED_COLS) as u16, false, image);
                }
                self.table.update(txn, slot, &delta)
            }
            StorageModel::Row => {
                // Read-modify-write of the entire packed tuple.
                let cur = self
                    .table
                    .select(txn, slot, &[1])
                    .ok_or(mainline_common::Error::TupleNotVisible)?;
                let mut bytes = unsafe { cur.attrs()[0].as_varlen().to_vec() };
                for c in 0..k {
                    bytes[c * 8..(c + 1) * 8].copy_from_slice(&rng.next_u64().to_le_bytes());
                }
                let mut delta = ProjectedRow::with_capacity(1);
                delta.push_varlen(1, VarlenEntry::from_bytes(&bytes));
                self.table.update(txn, slot, &delta)
            }
        }
    }
}

/// Throughput measurement for Fig. 11: `ops` inserts or updates touching
/// `attrs_touched` attributes each; returns ops/second.
pub fn run_ops(
    table: &RowColTable,
    manager: &TransactionManager,
    ops: usize,
    attrs_touched: usize,
    update_mode: bool,
    seed: u64,
) -> f64 {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Pre-populate targets for updates.
    let slots: Vec<TupleSlot> = if update_mode {
        let txn = manager.begin();
        let s = (0..10_000.min(ops)).map(|_| table.insert(&txn, &mut rng)).collect();
        manager.commit(&txn);
        s
    } else {
        Vec::new()
    };
    let start = std::time::Instant::now();
    let txn = manager.begin();
    if update_mode {
        for i in 0..ops {
            let slot = slots[i % slots.len()];
            table.update(&txn, slot, attrs_touched, &mut rng).unwrap();
        }
    } else {
        for _ in 0..ops {
            table.insert(&txn, &mut rng);
        }
    }
    manager.commit(&txn);
    ops as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_model_roundtrip() {
        let t = RowColTable::new(StorageModel::Column, 8);
        let m = TransactionManager::new();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let txn = m.begin();
        let slot = t.insert(&txn, &mut rng);
        t.update(&txn, slot, 4, &mut rng).unwrap();
        m.commit(&txn);
        let check = m.begin();
        assert_eq!(t.table.count_visible(&check), 1);
        m.commit(&check);
    }

    #[test]
    fn row_model_packs_whole_tuple() {
        let t = RowColTable::new(StorageModel::Row, 16);
        let m = TransactionManager::new();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let txn = m.begin();
        let slot = t.insert(&txn, &mut rng);
        m.commit(&txn);
        let check = m.begin();
        let row = t.table.select(&check, slot, &[1]).unwrap();
        assert_eq!(row.attrs()[0].as_varlen().len(), 16 * 8);
        m.commit(&check);
    }

    #[test]
    fn row_update_rewrites_tuple() {
        let t = RowColTable::new(StorageModel::Row, 8);
        let m = TransactionManager::new();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let txn = m.begin();
        let slot = t.insert(&txn, &mut rng);
        m.commit(&txn);
        let before = {
            let c = m.begin();
            let row = t.table.select(&c, slot, &[1]).unwrap();
            let v = unsafe { row.attrs()[0].as_varlen().to_vec() };
            m.commit(&c);
            v
        };
        let txn = m.begin();
        t.update(&txn, slot, 2, &mut rng).unwrap();
        m.commit(&txn);
        let after = {
            let c = m.begin();
            let row = t.table.select(&c, slot, &[1]).unwrap();
            let v = unsafe { row.attrs()[0].as_varlen().to_vec() };
            m.commit(&c);
            v
        };
        assert_eq!(after.len(), before.len());
        assert_ne!(after[..16], before[..16], "first two attrs rewritten");
        assert_eq!(after[16..], before[16..], "remaining attrs preserved");
    }

    #[test]
    fn throughput_helper_runs() {
        let t = RowColTable::new(StorageModel::Column, 4);
        let m = TransactionManager::new();
        let tput = run_ops(&t, &m, 2_000, 4, false, 3);
        assert!(tput > 0.0);
        let t2 = RowColTable::new(StorageModel::Row, 4);
        let tput2 = run_ops(&t2, &m, 2_000, 2, true, 4);
        assert!(tput2 > 0.0);
    }
}
