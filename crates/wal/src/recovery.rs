//! Crash recovery: replay committed transactions in commit order (§3.4).
//!
//! Physical slots are process-lifetime identifiers, so recovery maintains a
//! remapping from logged slots to freshly inserted ones. Transactions whose
//! commit record is missing (crash before the flush) are ignored.
//!
//! Because the log carries **logical DDL** (kind 2/3 records, see
//! [`crate::record`]), replay also recreates and drops tables at exactly the
//! commit-timestamp positions the original process did — a tail referencing
//! a table created after the last checkpoint is replayable without any
//! outside help. Catalog integration is pluggable via [`DdlReplayer`]: the
//! database layer recreates real indexed tables; bare engines (and streams
//! that can never contain DDL, like checkpoint delta segments) use
//! [`BareDdlReplayer`] / [`NoDdl`].

use crate::record::{LogPayload, LogReader};
use mainline_common::schema::Schema;
use mainline_common::value::TypeId;
use mainline_common::{Error, Result, Timestamp};
use mainline_storage::layout::NUM_RESERVED_COLS;
use mainline_storage::{ProjectedRow, TupleSlot, VarlenEntry};
use mainline_txn::{CreateTableDdl, DataTable, RedoOp, RedoRecord, TransactionManager};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What recovery did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed transactions replayed (counting only those with data
    /// records; DDL-only commits are counted in [`ddl_applied`]).
    ///
    /// [`ddl_applied`]: RecoveryStats::ddl_applied
    pub txns_replayed: usize,
    /// Transactions discarded for lack of a commit record.
    pub txns_discarded: usize,
    /// Individual operations applied.
    pub ops_applied: usize,
    /// Committed transactions skipped because they are already covered by a
    /// checkpoint (commit timestamp at or below [`recover_from`]'s cut).
    pub txns_skipped: usize,
    /// Individual operations skipped the same way.
    pub ops_skipped: usize,
    /// Data records ignored because their table was dropped by a later (or
    /// checkpoint-covered) `DROP TABLE` — a writer holding the handle may
    /// commit after the drop's timestamp, and those rows are dead on arrival.
    pub ops_dropped: usize,
    /// DDL records applied (create/drop).
    pub ddl_applied: usize,
    /// DDL records skipped as checkpoint-covered.
    pub ddl_skipped: usize,
    /// Largest commit timestamp observed in the log (replayed or skipped);
    /// restart advances the oracle past it so new commits sort after the
    /// replayed history.
    pub max_commit_ts: u64,
}

/// Applies logical DDL during replay. Implementations own the catalog side
/// of table lifecycle; [`recover_from`] keeps its internal id → table map in
/// sync with whatever the replayer returns.
pub trait DdlReplayer {
    /// Recreate a table under its logged id. The returned [`DataTable`] is
    /// what subsequent data records replay into; implementations must ensure
    /// its id equals `ddl.table_id` (the WAL references it).
    fn create_table(&mut self, ddl: &CreateTableDdl) -> Result<Arc<DataTable>>;
    /// Drop a table. Records referencing it later in the log are discarded
    /// by the recovery loop itself, not the replayer.
    fn drop_table(&mut self, table_id: u32, name: &str) -> Result<()>;
    /// Whether `table_id` is known to have been dropped *before* this
    /// replay's coverage began — e.g. recorded by a checkpoint manifest
    /// whose `DROP` record was truncated away with the pre-checkpoint log.
    /// A data record referencing such a table is discarded instead of
    /// failing the replay (a writer that retained the handle may have
    /// committed after the drop). Defaults to `false`.
    fn table_known_dropped(&self, _table_id: u32) -> bool {
        false
    }
}

/// A [`DdlReplayer`] for streams that can never contain DDL (checkpoint
/// delta segments); any DDL record is a corruption error.
pub struct NoDdl;

impl DdlReplayer for NoDdl {
    fn create_table(&mut self, ddl: &CreateTableDdl) -> Result<Arc<DataTable>> {
        Err(Error::Corrupt(format!("unexpected CREATE TABLE {} in DDL-free stream", ddl.name)))
    }
    fn drop_table(&mut self, _table_id: u32, name: &str) -> Result<()> {
        Err(Error::Corrupt(format!("unexpected DROP TABLE {name} in DDL-free stream")))
    }
}

/// A [`DdlReplayer`] that recreates bare [`DataTable`]s with no catalog or
/// index integration — enough for engine-level tests and tools that only
/// need the relations back.
#[derive(Default)]
pub struct BareDdlReplayer;

impl DdlReplayer for BareDdlReplayer {
    fn create_table(&mut self, ddl: &CreateTableDdl) -> Result<Arc<DataTable>> {
        DataTable::new(ddl.table_id, Schema::new(ddl.columns.clone()))
    }
    fn drop_table(&mut self, _table_id: u32, _name: &str) -> Result<()> {
        Ok(())
    }
}

/// Replay `log_bytes` into the given tables (keyed by table id).
///
/// The log's implicit commit-timestamp ordering (§3.4) means we can apply
/// groups in stream order; a group becomes applicable only once its commit
/// entry appears. Tables created by replayed DDL are tracked internally (and
/// surfaced through `ddl`); `tables` itself is not mutated.
pub fn recover(
    log_bytes: &[u8],
    manager: &TransactionManager,
    tables: &HashMap<u32, Arc<DataTable>>,
    ddl: &mut dyn DdlReplayer,
) -> Result<RecoveryStats> {
    let mut slot_map = HashMap::new();
    recover_from(log_bytes, Timestamp::ZERO, manager, tables, &mut slot_map, ddl)
}

/// One commit group being reassembled from the stream.
#[derive(Default)]
struct Group {
    records: Vec<RedoRecord>,
    ddl: Vec<mainline_txn::DdlRecord>,
}

/// [`recover`], but skip every transaction committed at or below `after` —
/// the checkpoint-tail replay of a two-phase restart. `slot_map` maps the
/// crashed process's physical slots (`(table_id, raw slot)`) to their new
/// locations; the checkpoint loader pre-populates it for rows restored from
/// the checkpoint image, and replayed inserts extend it, so tail updates and
/// deletes resolve no matter which side of the checkpoint their target row
/// came from.
pub fn recover_from(
    log_bytes: &[u8],
    after: Timestamp,
    manager: &TransactionManager,
    tables: &HashMap<u32, Arc<DataTable>>,
    slot_map: &mut HashMap<(u32, u64), TupleSlot>,
    ddl: &mut dyn DdlReplayer,
) -> Result<RecoveryStats> {
    let mut stats = RecoveryStats::default();
    let mut reader = LogReader::new(log_bytes);
    // Buffers per commit timestamp awaiting their commit mark.
    let mut groups: HashMap<u64, Group> = HashMap::new();
    let mut committed: Vec<u64> = Vec::new();

    while let Some(entry) = reader.next_entry()? {
        match entry.payload {
            LogPayload::Redo(r) => {
                groups.entry(entry.commit_ts.0).or_default().records.push(r);
            }
            LogPayload::Commit => committed.push(entry.commit_ts.0),
            LogPayload::CreateTable(c) => groups
                .entry(entry.commit_ts.0)
                .or_default()
                .ddl
                .push(mainline_txn::DdlRecord::CreateTable(c)),
            LogPayload::DropTable { table_id, name } => groups
                .entry(entry.commit_ts.0)
                .or_default()
                .ddl
                .push(mainline_txn::DdlRecord::DropTable { table_id, name }),
        }
    }

    // The live table set evolves with replayed DDL; start from the caller's
    // map (cheap Arc clones). Drops are remembered forever: a committer that
    // still held the handle may have committed *after* the drop's timestamp,
    // and its records must be discarded, not treated as corruption.
    let mut live: HashMap<u32, Arc<DataTable>> = tables.clone();
    let mut dropped: HashSet<u32> = HashSet::new();

    // Apply committed groups in commit order.
    committed.sort_unstable();
    for ts in &committed {
        stats.max_commit_ts = stats.max_commit_ts.max(*ts);
        if Timestamp(*ts) <= after {
            // Fully covered by the checkpoint image — but drops must still
            // be *remembered* so post-cut stragglers to the dead table are
            // discarded rather than erroring on a missing id.
            if let Some(group) = groups.remove(ts) {
                if !group.records.is_empty() {
                    stats.txns_skipped += 1;
                    stats.ops_skipped += group.records.len();
                }
                for d in &group.ddl {
                    stats.ddl_skipped += 1;
                    if let mainline_txn::DdlRecord::DropTable { table_id, .. } = d {
                        dropped.insert(*table_id);
                        live.remove(table_id);
                    }
                }
            }
            continue;
        }
        let Some(group) = groups.remove(ts) else {
            // Read-only or empty transaction.
            continue;
        };
        // DDL first: a transaction's data records may target the table its
        // own group created (and the log serializes DDL before redo).
        for d in group.ddl {
            match d {
                mainline_txn::DdlRecord::CreateTable(c) => {
                    let table = ddl.create_table(&c)?;
                    if table.id() != c.table_id {
                        return Err(Error::Corrupt(format!(
                            "DDL replay id mismatch for {}: logged {} vs recreated {}",
                            c.name,
                            c.table_id,
                            table.id()
                        )));
                    }
                    live.insert(c.table_id, table);
                }
                mainline_txn::DdlRecord::DropTable { table_id, name } => {
                    ddl.drop_table(table_id, &name)?;
                    dropped.insert(table_id);
                    live.remove(&table_id);
                }
            }
            stats.ddl_applied += 1;
        }
        if group.records.is_empty() {
            continue;
        }
        let txn = manager.begin();
        let mut applied_any = false;
        for r in group.records {
            let Some(table) = live.get(&r.table_id) else {
                if dropped.contains(&r.table_id) || ddl.table_known_dropped(r.table_id) {
                    // Late commit into a dropped table: dead on arrival.
                    stats.ops_dropped += 1;
                    continue;
                }
                return Err(Error::NotFound(format!("table {}", r.table_id)));
            };
            let key = (r.table_id, r.slot.raw());
            match r.op {
                RedoOp::Insert(cols) => {
                    let row = cols_to_row(table, &cols)?;
                    let new_slot = table.insert(&txn, &row);
                    slot_map.insert(key, new_slot);
                }
                RedoOp::Update(cols) => {
                    let slot = *slot_map
                        .get(&key)
                        .ok_or_else(|| Error::Corrupt("update before insert in log".into()))?;
                    let row = cols_to_row(table, &cols)?;
                    table
                        .update(&txn, slot, &row)
                        .map_err(|e| Error::Corrupt(format!("replay update failed: {e}")))?;
                }
                RedoOp::Delete => {
                    let slot = *slot_map
                        .get(&key)
                        .ok_or_else(|| Error::Corrupt("delete before insert in log".into()))?;
                    table
                        .delete(&txn, slot)
                        .map_err(|e| Error::Corrupt(format!("replay delete failed: {e}")))?;
                }
            }
            stats.ops_applied += 1;
            applied_any = true;
        }
        manager.commit(&txn);
        if applied_any {
            stats.txns_replayed += 1;
        }
    }
    stats.txns_discarded = groups.len();
    Ok(stats)
}

fn cols_to_row(table: &DataTable, cols: &[mainline_txn::RedoCol]) -> Result<ProjectedRow> {
    let mut row = ProjectedRow::with_capacity(cols.len());
    let layout = table.layout();
    for c in cols {
        match &c.value {
            None => row.push_null(c.col),
            Some(bytes) => {
                if layout.is_varlen(c.col) {
                    row.push_varlen(c.col, VarlenEntry::from_bytes(bytes));
                } else {
                    let user_idx = c.col as usize - NUM_RESERVED_COLS;
                    let ty: TypeId = table.types()[user_idx];
                    let expected = ty.attr_size() as usize;
                    if bytes.len() != expected {
                        return Err(Error::Corrupt(format!(
                            "column {} image has {} bytes, expected {expected}",
                            c.col,
                            bytes.len()
                        )));
                    }
                    let mut image = [0u8; 16];
                    image[..bytes.len()].copy_from_slice(bytes);
                    row.push_raw(c.col, false, image);
                }
            }
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log_manager::{LogManager, LogManagerConfig};
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::Value;
    use mainline_txn::CommitSink;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", TypeId::BigInt),
            ColumnDef::nullable("name", TypeId::Varchar),
        ])
    }

    fn row(id: i64, name: Option<&str>) -> ProjectedRow {
        ProjectedRow::from_values(
            &[TypeId::BigInt, TypeId::Varchar],
            &[Value::BigInt(id), name.map_or(Value::Null, Value::string)],
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mainline-recovery-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn end_to_end_log_and_recover() {
        let path = tmp("e2e");
        // --- Original lifetime ---
        {
            let lm = LogManager::start(LogManagerConfig {
                fsync: false,
                ..LogManagerConfig::new(&path)
            })
            .unwrap();
            let m = TransactionManager::with_sink(Arc::clone(&lm) as Arc<dyn CommitSink>);
            let t = DataTable::new(7, schema()).unwrap();

            let t1 = m.begin();
            let s1 = t.insert(&t1, &row(1, Some("first-value-quite-long")));
            let _s2 = t.insert(&t1, &row(2, None));
            m.commit(&t1);

            let t2 = m.begin();
            let mut d = ProjectedRow::new();
            d.push_fixed(1, &Value::BigInt(100));
            t.update(&t2, s1, &d).unwrap();
            m.commit(&t2);

            let t3 = m.begin();
            let s3 = t.insert(&t3, &row(3, Some("doomed")));
            t.delete(&t3, s3).unwrap();
            m.commit(&t3);

            // An aborted transaction must not be replayed.
            let bad = m.begin();
            t.insert(&bad, &row(999, Some("aborted insert")));
            m.abort(&bad);

            lm.shutdown();
        }
        // --- Recovery lifetime ---
        let log = std::fs::read(&path).unwrap();
        let m2 = TransactionManager::new();
        let t2 = DataTable::new(7, schema()).unwrap();
        let mut tables = HashMap::new();
        tables.insert(7u32, Arc::clone(&t2));
        let stats = recover(&log, &m2, &tables, &mut BareDdlReplayer).unwrap();
        assert_eq!(stats.txns_replayed, 3);
        assert_eq!(stats.txns_discarded, 0);
        assert!(stats.ops_applied >= 5);

        let check = m2.begin();
        let mut rows = Vec::new();
        t2.scan(&check, &t2.all_cols(), |_, r| {
            rows.push(t2.row_to_values(r));
            true
        });
        rows.sort_by_key(|r| match r[0] {
            Value::BigInt(x) => x,
            _ => unreachable!(),
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::BigInt(2), Value::Null]);
        assert_eq!(rows[1], vec![Value::BigInt(100), Value::string("first-value-quite-long")]);
        m2.commit(&check);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_tail_discarded() {
        // Hand-craft a log with a group missing its commit record.
        let mut log = Vec::new();
        let rec = RedoRecord {
            table_id: 7,
            slot: TupleSlot::from_raw(1 << 20),
            op: RedoOp::Insert(vec![
                mainline_txn::RedoCol { col: 1, value: Some(5i64.to_le_bytes().to_vec()) },
                mainline_txn::RedoCol { col: 2, value: None },
            ]),
        };
        crate::record::encode_redo(&mut log, mainline_common::Timestamp(9), &rec);
        // No commit entry.
        let m = TransactionManager::new();
        let t = DataTable::new(7, schema()).unwrap();
        let mut tables = HashMap::new();
        tables.insert(7u32, Arc::clone(&t));
        let stats = recover(&log, &m, &tables, &mut BareDdlReplayer).unwrap();
        assert_eq!(stats.txns_replayed, 0);
        assert_eq!(stats.txns_discarded, 1);
        let check = m.begin();
        assert_eq!(t.count_visible(&check), 0);
        m.commit(&check);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let mut log = Vec::new();
        let rec =
            RedoRecord { table_id: 99, slot: TupleSlot::from_raw(1 << 20), op: RedoOp::Delete };
        crate::record::encode_redo(&mut log, mainline_common::Timestamp(1), &rec);
        crate::record::encode_commit(&mut log, mainline_common::Timestamp(1));
        let m = TransactionManager::new();
        let tables = HashMap::new();
        assert!(recover(&log, &m, &tables, &mut BareDdlReplayer).is_err());
    }
}
