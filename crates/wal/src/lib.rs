//! `mainline-wal` — write-ahead logging and recovery (paper §3.4).
//!
//! * Each transaction accumulates physical after-images in its redo buffer;
//!   at commit the buffer (plus a commit record) lands on the log manager's
//!   flush queue.
//! * The log manager serializes asynchronously, group-fsyncs, and then
//!   invokes the per-transaction durability callbacks; the DBMS withholds
//!   results from clients until then.
//! * Records are ordered by commit timestamp, not LSN: the commit critical
//!   section already serializes the hand-off.
//! * Read-only transactions obtain a commit record too (to close the
//!   speculative-read anomaly) but it is acknowledged without being written.
//! * **Logical DDL rides the same path**: `CREATE TABLE`/`DROP TABLE`
//!   records (schema + catalog id + index definitions) are staged on the
//!   transaction, group-committed, and timestamp-ordered with data, so the
//!   log is self-describing — a tail referencing a table created after the
//!   last checkpoint replays without outside help.
//! * Recovery replays committed transactions in commit-timestamp order with
//!   a slot-remapping table (physical slots change across restarts), applying
//!   DDL through a pluggable [`DdlReplayer`].
//! * The log is split into size-bounded **segments**: the active file rotates
//!   into an archive (named after its last commit timestamp) once it exceeds
//!   [`LogManagerConfig::segment_bytes`], and a completed checkpoint lets
//!   [`segments::truncate_below`] drop every archive wholly below the
//!   checkpoint timestamp — restart cost becomes proportional to the WAL
//!   *tail*, not to history.

#![warn(missing_docs)]

pub mod log_manager;
pub mod record;
pub mod recovery;
pub mod segments;

pub use log_manager::{LogManager, LogManagerConfig};
pub use record::{LogEntry, LogPayload};
pub use recovery::{recover, recover_from, BareDdlReplayer, DdlReplayer, NoDdl, RecoveryStats};
