//! WAL segment files: naming, enumeration, concatenated reads, truncation.
//!
//! The log manager appends to the *active* file at the configured path. When
//! the active file exceeds [`crate::LogManagerConfig::segment_bytes`], it is
//! atomically renamed into an **archive segment** in the same directory:
//!
//! ```text
//! <name>.<seq:08>.<last_commit_ts:020>.seg
//! ```
//!
//! `seq` preserves write order across restarts and `last_commit_ts` is the
//! largest commit timestamp serialized into the segment. Records are written
//! in commit-timestamp order (the commit critical section serializes the
//! hand-off, §3.4), so the last commit of a segment is also its maximum —
//! which makes truncation a pure filename decision: an archive is droppable
//! after a checkpoint at timestamp `T` iff `last_commit_ts <= T`, i.e. every
//! record in it is already covered by the checkpoint image.
//!
//! The active file is never deleted: it may still receive records.

use mainline_common::{Result, Timestamp};
use std::path::{Path, PathBuf};

/// One archived (rotated-out) WAL segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFile {
    /// Location of the archive file.
    pub path: PathBuf,
    /// Rotation sequence number (write order).
    pub seq: u64,
    /// Largest commit timestamp serialized into the segment.
    pub last_commit_ts: Timestamp,
}

/// The archive file name for segment `seq` of the log at `path`.
pub fn archive_path(path: &Path, seq: u64, last_commit_ts: Timestamp) -> PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    path.with_file_name(format!("{name}.{seq:08}.{:020}.seg", last_commit_ts.0))
}

fn parse_archive_name(active_name: &str, candidate: &str) -> Option<(u64, u64)> {
    let rest = candidate.strip_prefix(active_name)?.strip_prefix('.')?;
    let rest = rest.strip_suffix(".seg")?;
    let (seq, ts) = rest.split_once('.')?;
    Some((seq.parse().ok()?, ts.parse().ok()?))
}

/// All archive segments of the log at `path`, sorted by sequence number.
/// An absent directory or a log that never rotated yields an empty list.
pub fn list_segments(path: &Path) -> Result<Vec<SegmentFile>> {
    let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return Ok(Vec::new());
    };
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    for entry in entries.flatten() {
        let candidate = entry.file_name().to_string_lossy().into_owned();
        if let Some((seq, ts)) = parse_archive_name(&name, &candidate) {
            out.push(SegmentFile { path: entry.path(), seq, last_commit_ts: Timestamp(ts) });
        }
    }
    out.sort_by_key(|s| s.seq);
    Ok(out)
}

/// Read the whole log — every archive segment in rotation order, then the
/// active file — as one contiguous byte stream suitable for
/// [`crate::recover`]/[`crate::recover_from`]. A missing active file (the
/// log never wrote anything, or everything rotated) contributes nothing.
///
/// The read retries until it observes a *stable* segment list on both
/// sides: a rotation landing between the listing and the active-file read
/// would otherwise silently drop the just-archived segment from the
/// stream. Crashed logs (the normal recovery case) have no writers and
/// never retry; the loop matters for live reads racing a log thread (e.g.
/// tests that simulate a crash by leaking the database).
pub fn read_log(path: &Path) -> Result<Vec<u8>> {
    let mut before = list_segments(path)?;
    for _ in 0..64 {
        let mut out = Vec::new();
        for seg in &before {
            match std::fs::read(&seg.path) {
                Ok(bytes) => out.extend_from_slice(&bytes),
                // Listed but vanished (concurrent truncation): restart.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => return Err(e.into()),
            }
        }
        match std::fs::read(path) {
            Ok(bytes) => out.extend_from_slice(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let after = list_segments(path)?;
        if after == before {
            return Ok(out);
        }
        before = after;
    }
    Err(mainline_common::Error::Io(std::io::Error::other(
        "log rotated continuously for 64 read attempts; quiesce the writer first",
    )))
}

/// Delete every archive segment whose records all carry commit timestamps at
/// or below `checkpoint_ts` (they are fully covered by the checkpoint image).
/// Returns how many segments were removed. The active file and any archive
/// containing records above the checkpoint are never touched.
pub fn truncate_below(path: &Path, checkpoint_ts: Timestamp) -> Result<usize> {
    let mut dropped = 0;
    for seg in list_segments(path)? {
        if seg.last_commit_ts <= checkpoint_ts {
            // Crash-injectable (see [`mainline_common::failpoint`]): the
            // crash-matrix battery kills truncation after any prefix of
            // removals and proves restart still works.
            mainline_common::failpoint::check("wal.truncate.remove")?;
            std::fs::remove_file(&seg.path)?;
            dropped += 1;
        }
    }
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mainline-wal-seg-{}-{}", std::process::id(), name));
        p
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        for seg in list_segments(path).unwrap() {
            let _ = std::fs::remove_file(&seg.path);
        }
    }

    #[test]
    fn archive_names_roundtrip() {
        let path = tmp("names");
        cleanup(&path);
        let a = archive_path(&path, 3, Timestamp(99));
        std::fs::write(&a, b"x").unwrap();
        std::fs::write(archive_path(&path, 1, Timestamp(7)), b"y").unwrap();
        // Noise that must not parse as a segment.
        std::fs::write(path.with_file_name("unrelated.seg"), b"z").unwrap();
        let segs = list_segments(&path).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].seq, segs[0].last_commit_ts), (1, Timestamp(7)));
        assert_eq!((segs[1].seq, segs[1].last_commit_ts), (3, Timestamp(99)));
        let _ = std::fs::remove_file(path.with_file_name("unrelated.seg"));
        cleanup(&path);
    }

    #[test]
    fn read_log_concatenates_in_order_and_truncate_respects_the_cut() {
        let path = tmp("concat");
        cleanup(&path);
        std::fs::write(archive_path(&path, 1, Timestamp(10)), b"AA").unwrap();
        std::fs::write(archive_path(&path, 2, Timestamp(20)), b"BB").unwrap();
        std::fs::write(&path, b"CC").unwrap();
        assert_eq!(read_log(&path).unwrap(), b"AABBCC");

        // Cut between the archives: only the first may go.
        assert_eq!(truncate_below(&path, Timestamp(15)).unwrap(), 1);
        assert_eq!(read_log(&path).unwrap(), b"BBCC");
        // Cut above everything: the active file still survives.
        assert_eq!(truncate_below(&path, Timestamp(1000)).unwrap(), 1);
        assert_eq!(read_log(&path).unwrap(), b"CC");
        cleanup(&path);
    }

    #[test]
    fn read_log_of_missing_files_is_empty() {
        let path = tmp("missing");
        cleanup(&path);
        assert!(read_log(&path).unwrap().is_empty());
    }
}
