//! The asynchronous log manager (paper §3.4).
//!
//! Commits land on a flush queue; a dedicated thread serializes them to the
//! log file, fsyncs in groups, and then invokes the durability callbacks
//! ("we implement callbacks by embedding a function pointer in the commit
//! record; when the log manager writes the commit record, it adds that
//! pointer to a list of callbacks to invoke after the next fsync").
//!
//! The log thread also rotates the active file into archive segments (see
//! [`crate::segments`]) once it exceeds [`LogManagerConfig::segment_bytes`].
//! Rotation happens only between commit groups, so a transaction's redo
//! records and its commit marker always land in the same segment — which is
//! what lets checkpoint truncation reason per segment.

use crate::record::{encode_commit, encode_create_table, encode_drop_table, encode_redo};
use crate::segments;
use crossbeam::channel::{bounded, Receiver, Sender};
use mainline_common::{Result, Timestamp};
use mainline_txn::{CommitSink, DdlRecord, RedoRecord};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Global WAL metrics (see `mainline-obs`): statically-registered handles,
/// so the log thread's hot loop records with single relaxed `fetch_add`s.
/// Registered (idempotently) by [`LogManager::start`].
pub(crate) mod obs {
    use mainline_obs::{Counter, Histogram, Metric};

    /// Durability callbacks invoked (== commits acknowledged durable).
    pub static COMMITS_ACKED: Counter =
        Counter::new("wal_commits_acked", "commits acknowledged durable after a group fsync");
    /// Bytes serialized to the log (process-wide; per-instance figures stay
    /// on `LogManager::bytes_written`).
    pub static BYTES_WRITTEN: Counter =
        Counter::new("wal_bytes_written", "bytes serialized to the log across all log managers");
    /// Active-segment rotations into archives.
    pub static ROTATIONS: Counter =
        Counter::new("wal_rotations", "active log segments rotated into archives");
    /// Commits acknowledged per group fsync (the group-commit batch size).
    pub static GROUP_COMMIT_TXNS: Histogram =
        Histogram::new("wal_group_commit_txns", "commits acknowledged per group fsync");
    /// Wall-clock nanoseconds per flush+fsync of a commit group.
    pub static FSYNC_NANOS: Histogram =
        Histogram::new("wal_fsync_nanos", "flush+fsync latency per commit group");

    pub(crate) fn register() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            mainline_obs::registry().register(&[
                Metric::Counter(&COMMITS_ACKED),
                Metric::Counter(&BYTES_WRITTEN),
                Metric::Counter(&ROTATIONS),
                Metric::Histogram(&GROUP_COMMIT_TXNS),
                Metric::Histogram(&FSYNC_NANOS),
            ]);
        });
    }
}

/// Tuning knobs for the log manager.
#[derive(Debug, Clone)]
pub struct LogManagerConfig {
    /// Log file path (the *active* segment; archives rotate next to it).
    pub path: PathBuf,
    /// Whether to `fsync` after each group (benchmarks may disable it).
    pub fsync: bool,
    /// Max queued commits before producers block (backpressure).
    pub queue_capacity: usize,
    /// Rotate the active file into an archive segment once it exceeds this
    /// many bytes (checked between commit groups). Zero disables rotation —
    /// the log stays a single file, exactly the pre-segmentation behavior.
    /// [`LogManagerConfig::new`] honours the `MAINLINE_WAL_SEGMENT_BYTES`
    /// environment variable, which CI uses to force rotation everywhere.
    pub segment_bytes: u64,
}

impl LogManagerConfig {
    /// Default configuration for a path.
    pub fn new(path: impl AsRef<Path>) -> Self {
        let segment_bytes = std::env::var("MAINLINE_WAL_SEGMENT_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        LogManagerConfig {
            path: path.as_ref().to_path_buf(),
            fsync: true,
            queue_capacity: 4096,
            segment_bytes,
        }
    }
}

enum Msg {
    Commit {
        commit_ts: Timestamp,
        records: Vec<RedoRecord>,
        ddl: Vec<DdlRecord>,
        read_only: bool,
        callback: Box<dyn FnOnce() + Send>,
    },
    Flush(Sender<()>),
}

/// Handle to the background logging thread. Implements [`CommitSink`] so it
/// plugs directly into the transaction manager.
///
/// Shutdown protocol: the only `Sender` lives behind `tx`; closing is done by
/// taking it out under the write lock. The logging thread drains the channel
/// to exhaustion (`recv` only errors once the queue is empty *and* the sender
/// is gone), so a send that succeeded is always written and acked, and a
/// commit arriving after close is acked immediately on the caller's thread —
/// there is no window where an accepted callback can be lost.
pub struct LogManager {
    tx: parking_lot::RwLock<Option<Sender<Msg>>>,
    handle: parking_lot::Mutex<Option<JoinHandle<()>>>,
    bytes_written: Arc<AtomicU64>,
    path: PathBuf,
}

impl LogManager {
    /// Start the logging thread.
    pub fn start(config: LogManagerConfig) -> Result<Arc<LogManager>> {
        obs::register();
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let existing = file.metadata().map(|m| m.len()).unwrap_or(0);
        let next_seq =
            segments::list_segments(&config.path)?.last().map(|s| s.seq + 1).unwrap_or(1);
        let (tx, rx) = bounded::<Msg>(config.queue_capacity);
        let bytes_written = Arc::new(AtomicU64::new(0));
        let path = config.path.clone();
        let mut writer = SegmentedWriter {
            out: BufWriter::with_capacity(1 << 20, file),
            path: config.path.clone(),
            fsync: config.fsync,
            segment_bytes: config.segment_bytes,
            active_bytes: existing,
            next_seq,
            last_commit_ts: Timestamp::ZERO,
            has_commits: false,
            bytes_written: Arc::clone(&bytes_written),
        };
        let handle = std::thread::Builder::new()
            .name("log-manager".into())
            .spawn(move || run_loop(&mut writer, rx))
            .expect("spawn log manager");
        Ok(Arc::new(LogManager {
            tx: parking_lot::RwLock::new(Some(tx)),
            handle: parking_lot::Mutex::new(Some(handle)),
            bytes_written,
            path,
        }))
    }

    /// Block until everything queued so far is durable.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = bounded(1);
        let sent = match &*self.tx.read() {
            Some(tx) => tx.send(Msg::Flush(ack_tx)).is_ok(),
            // Already shut down: the drain-on-close made everything durable.
            None => false,
        };
        if sent {
            let _ = ack_rx.recv();
        }
    }

    /// Bytes serialized to the log so far (cumulative across rotations —
    /// the checkpoint trigger measures WAL *growth* against this counter).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Acquire)
    }

    /// The active log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drop every archive segment wholly at or below `checkpoint_ts` (see
    /// [`segments::truncate_below`]). Call only after a checkpoint at that
    /// timestamp is durable. Returns how many segments were removed.
    pub fn truncate_below(&self, checkpoint_ts: Timestamp) -> Result<usize> {
        segments::truncate_below(&self.path, checkpoint_ts)
    }

    /// Stop the thread. Dropping the sender lets the thread drain the queue
    /// to exhaustion and sync before exiting, so nothing accepted is lost.
    pub fn shutdown(&self) {
        drop(self.tx.write().take());
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        drop(self.tx.get_mut().take());
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl CommitSink for LogManager {
    fn queue_commit(
        &self,
        commit_ts: Timestamp,
        records: Vec<RedoRecord>,
        ddl: Vec<DdlRecord>,
        read_only: bool,
        callback: Box<dyn FnOnce() + Send>,
    ) {
        match &*self.tx.read() {
            // While we hold the read lock the sender cannot be closed, and
            // the receiver outlives the sender, so this send cannot fail
            // (it may block on backpressure, which is intended).
            Some(tx) => {
                if let Err(e) =
                    tx.send(Msg::Commit { commit_ts, records, ddl, read_only, callback })
                {
                    if let Msg::Commit { callback, .. } = e.into_inner() {
                        callback();
                    }
                }
            }
            // Shut down: ack immediately. The data is lost, but so is the
            // process — recovery semantics are unchanged, and no committer
            // waits on durability forever.
            None => callback(),
        }
    }
}

/// The log thread's output: a buffered writer over the active file plus the
/// bookkeeping rotation needs (bytes in the active segment, last commit
/// timestamp written, next archive sequence number).
struct SegmentedWriter {
    out: BufWriter<File>,
    path: PathBuf,
    fsync: bool,
    segment_bytes: u64,
    active_bytes: u64,
    next_seq: u64,
    last_commit_ts: Timestamp,
    has_commits: bool,
    bytes_written: Arc<AtomicU64>,
}

impl SegmentedWriter {
    fn write_group(&mut self, bytes: &[u8], commit_ts: Timestamp) {
        self.out.write_all(bytes).expect("log write failed");
        self.active_bytes += bytes.len() as u64;
        self.bytes_written.fetch_add(bytes.len() as u64, Ordering::AcqRel);
        obs::BYTES_WRITTEN.add(bytes.len() as u64);
        self.last_commit_ts = commit_ts;
        self.has_commits = true;
    }

    fn sync(&mut self) {
        let t0 = Instant::now();
        self.out.flush().expect("log flush failed");
        if self.fsync {
            self.out.get_ref().sync_data().expect("log fsync failed");
        }
        obs::FSYNC_NANOS.observe_duration(t0.elapsed());
    }

    /// Rotate the active file into an archive segment if it outgrew the
    /// budget. Runs only between commit groups, after a sync, so every
    /// segment holds whole transactions and its last commit timestamp is
    /// its maximum.
    fn maybe_rotate(&mut self) {
        if self.segment_bytes == 0 || !self.has_commits || self.active_bytes < self.segment_bytes {
            return;
        }
        self.sync();
        let archive = segments::archive_path(&self.path, self.next_seq, self.last_commit_ts);
        if std::fs::rename(&self.path, &archive).is_err() {
            // Rename failure (exotic filesystem): keep appending to the
            // oversized active file rather than losing the log.
            return;
        }
        let file = match OpenOptions::new().create(true).append(true).open(&self.path) {
            Ok(f) => f,
            Err(e) => panic!("reopen log after rotation failed: {e}"),
        };
        self.out = BufWriter::with_capacity(1 << 20, file);
        self.next_seq += 1;
        self.active_bytes = 0;
        self.has_commits = false;
        obs::ROTATIONS.inc();
    }
}

fn run_loop(w: &mut SegmentedWriter, rx: Receiver<Msg>) {
    let mut scratch: Vec<u8> = Vec::with_capacity(1 << 16);
    let mut callbacks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();

    let sync_and_ack = |w: &mut SegmentedWriter, callbacks: &mut Vec<Box<dyn FnOnce() + Send>>| {
        if callbacks.is_empty() {
            return;
        }
        w.sync();
        obs::GROUP_COMMIT_TXNS.observe(callbacks.len() as u64);
        obs::COMMITS_ACKED.add(callbacks.len() as u64);
        for cb in callbacks.drain(..) {
            cb();
        }
    };

    loop {
        // Block for the first message, then opportunistically drain the
        // queue to form a group commit.
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        let mut batch = vec![first];
        while let Ok(m) = rx.try_recv() {
            batch.push(m);
            if batch.len() >= 1024 {
                break;
            }
        }
        for msg in batch {
            match msg {
                Msg::Commit { commit_ts, records, ddl, read_only, callback } => {
                    if !read_only {
                        scratch.clear();
                        // DDL before data: replay applies a group's catalog
                        // changes first, and the serialized order should
                        // match.
                        for d in &ddl {
                            match d {
                                DdlRecord::CreateTable(c) => {
                                    encode_create_table(&mut scratch, commit_ts, c)
                                }
                                DdlRecord::DropTable { table_id, name } => {
                                    encode_drop_table(&mut scratch, commit_ts, *table_id, name)
                                }
                            }
                        }
                        for r in &records {
                            encode_redo(&mut scratch, commit_ts, r);
                        }
                        encode_commit(&mut scratch, commit_ts);
                        w.write_group(&scratch, commit_ts);
                    }
                    // Read-only commit records are acknowledged without being
                    // written (§3.4).
                    callbacks.push(callback);
                }
                Msg::Flush(ack) => {
                    sync_and_ack(w, &mut callbacks);
                    let _ = ack.send(());
                }
            }
        }
        sync_and_ack(w, &mut callbacks);
        w.maybe_rotate();
    }
    // `recv` above only errors once the queue is drained AND the sender is
    // closed, so reaching here means every accepted commit has been handled;
    // this final sync covers callbacks batched in the last iteration.
    sync_and_ack(w, &mut callbacks);
    w.sync();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_storage::TupleSlot;
    use mainline_txn::{RedoCol, RedoOp};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mainline-wal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        for seg in segments::list_segments(&p).unwrap() {
            let _ = std::fs::remove_file(&seg.path);
        }
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        for seg in segments::list_segments(p).unwrap() {
            let _ = std::fs::remove_file(&seg.path);
        }
    }

    fn redo(ts: u64) -> RedoRecord {
        RedoRecord {
            table_id: 1,
            slot: TupleSlot::from_raw(ts << 20),
            op: RedoOp::Insert(vec![RedoCol { col: 1, value: Some(vec![ts as u8]) }]),
        }
    }

    #[test]
    fn callbacks_fire_after_flush() {
        use std::sync::atomic::AtomicBool;
        let path = tmp("cb");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        let hit = Arc::new(AtomicBool::new(false));
        let h = Arc::clone(&hit);
        lm.queue_commit(
            Timestamp(3),
            vec![redo(3)],
            vec![],
            false,
            Box::new(move || h.store(true, Ordering::SeqCst)),
        );
        lm.flush();
        assert!(hit.load(Ordering::SeqCst));
        lm.shutdown();
        let bytes = segments::read_log(&path).unwrap();
        assert!(!bytes.is_empty());
        cleanup(&path);
    }

    #[test]
    fn callback_fires_even_after_shutdown() {
        use std::sync::atomic::AtomicBool;
        let path = tmp("post-shutdown");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        lm.shutdown();
        let hit = Arc::new(AtomicBool::new(false));
        let h = Arc::clone(&hit);
        lm.queue_commit(
            Timestamp(9),
            vec![redo(9)],
            vec![],
            false,
            Box::new(move || h.store(true, Ordering::SeqCst)),
        );
        assert!(hit.load(Ordering::SeqCst), "committer must not wait on durability forever");
        cleanup(&path);
    }

    #[test]
    fn read_only_commits_write_nothing() {
        let path = tmp("ro");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        lm.queue_commit(Timestamp(1), vec![], vec![], true, Box::new(|| {}));
        lm.flush();
        lm.shutdown();
        assert_eq!(segments::read_log(&path).unwrap().len(), 0);
        assert_eq!(lm.bytes_written(), 0);
        cleanup(&path);
    }

    #[test]
    fn log_contents_replayable() {
        use crate::record::{LogPayload, LogReader};
        let path = tmp("replay");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        for ts in 1..=5u64 {
            lm.queue_commit(Timestamp(ts), vec![redo(ts)], vec![], false, Box::new(|| {}));
        }
        lm.flush();
        lm.shutdown();
        let bytes = segments::read_log(&path).unwrap();
        let mut r = LogReader::new(&bytes);
        let mut commits = 0;
        let mut redos = 0;
        while let Some(e) = r.next_entry().unwrap() {
            match e.payload {
                LogPayload::Redo(_) => redos += 1,
                LogPayload::Commit => commits += 1,
                LogPayload::CreateTable(_) | LogPayload::DropTable { .. } => {}
            }
        }
        assert_eq!((redos, commits), (5, 5));
        cleanup(&path);
    }

    #[test]
    fn concurrent_producers() {
        let path = tmp("conc");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        let mut handles = vec![];
        for t in 0..4u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    lm.queue_commit(
                        Timestamp(t * 1000 + i),
                        vec![redo(i)],
                        vec![],
                        false,
                        Box::new(|| {}),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        lm.flush();
        lm.shutdown();
        use crate::record::{LogPayload, LogReader};
        let bytes = segments::read_log(&path).unwrap();
        let mut r = LogReader::new(&bytes);
        let mut commits = 0;
        while let Some(e) = r.next_entry().unwrap() {
            if matches!(e.payload, LogPayload::Commit) {
                commits += 1;
            }
        }
        assert_eq!(commits, 400);
        cleanup(&path);
    }

    #[test]
    fn rotation_archives_whole_commit_groups_and_resumes_sequencing() {
        use crate::record::{LogPayload, LogReader};
        let path = tmp("rotate");
        let config = LogManagerConfig {
            fsync: false,
            segment_bytes: 256, // tiny: a handful of commits per segment
            ..LogManagerConfig::new(&path)
        };
        let lm = LogManager::start(config.clone()).unwrap();
        for ts in 1..=50u64 {
            lm.queue_commit(Timestamp(ts), vec![redo(ts)], vec![], false, Box::new(|| {}));
            // Flush each commit so groups stay small and rotation triggers
            // deterministically between them.
            lm.flush();
        }
        lm.shutdown();

        let segs = segments::list_segments(&path).unwrap();
        assert!(segs.len() >= 2, "tiny segment budget must have rotated: {segs:?}");
        // Sequence numbers are dense from 1 and last-commit timestamps are
        // strictly increasing (records are written in commit order).
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.seq, i as u64 + 1);
        }
        assert!(segs.windows(2).all(|w| w[0].last_commit_ts < w[1].last_commit_ts));

        // Each archive really is a parseable stream of whole transactions,
        // and its filename timestamp matches its content.
        for s in &segs {
            let bytes = std::fs::read(&s.path).unwrap();
            let mut r = LogReader::new(&bytes);
            let mut last_commit = 0;
            let mut dangling_redo = false;
            while let Some(e) = r.next_entry().unwrap() {
                match e.payload {
                    LogPayload::Redo(_) => dangling_redo = true,
                    LogPayload::Commit => {
                        dangling_redo = false;
                        last_commit = e.commit_ts.0;
                    }
                    LogPayload::CreateTable(_) | LogPayload::DropTable { .. } => {
                        dangling_redo = true
                    }
                }
            }
            assert!(!dangling_redo, "segment ends mid-transaction");
            assert_eq!(Timestamp(last_commit), s.last_commit_ts);
        }

        // The concatenated log replays all 50 commits in order.
        let bytes = segments::read_log(&path).unwrap();
        let mut r = LogReader::new(&bytes);
        let mut commits = Vec::new();
        while let Some(e) = r.next_entry().unwrap() {
            if matches!(e.payload, LogPayload::Commit) {
                commits.push(e.commit_ts.0);
            }
        }
        assert_eq!(commits, (1..=50).collect::<Vec<_>>());

        // A reopened log continues the sequence instead of clobbering it.
        let lm = LogManager::start(config).unwrap();
        for ts in 51..=80u64 {
            lm.queue_commit(Timestamp(ts), vec![redo(ts)], vec![], false, Box::new(|| {}));
            lm.flush();
        }
        lm.shutdown();
        let reopened = segments::list_segments(&path).unwrap();
        assert!(reopened.len() > segs.len());
        for (i, s) in reopened.iter().enumerate() {
            assert_eq!(s.seq, i as u64 + 1, "sequence must continue across restarts");
        }
        cleanup(&path);
    }

    #[test]
    fn truncate_below_drops_only_covered_segments() {
        let path = tmp("trunc");
        let lm = LogManager::start(LogManagerConfig {
            fsync: false,
            segment_bytes: 256,
            ..LogManagerConfig::new(&path)
        })
        .unwrap();
        for ts in 1..=60u64 {
            lm.queue_commit(Timestamp(ts), vec![redo(ts)], vec![], false, Box::new(|| {}));
            lm.flush();
        }
        let segs = segments::list_segments(&path).unwrap();
        assert!(segs.len() >= 3);
        let cut = segs[segs.len() / 2].last_commit_ts;
        let dropped = lm.truncate_below(cut).unwrap();
        assert!(dropped > 0);
        // Every record above the cut is still replayable.
        use crate::record::{LogPayload, LogReader};
        lm.shutdown();
        let bytes = segments::read_log(&path).unwrap();
        let mut r = LogReader::new(&bytes);
        let mut commits = Vec::new();
        while let Some(e) = r.next_entry().unwrap() {
            if matches!(e.payload, LogPayload::Commit) {
                commits.push(e.commit_ts.0);
            }
        }
        for ts in cut.0 + 1..=60 {
            assert!(commits.contains(&ts), "commit {ts} lost by truncation");
        }
        cleanup(&path);
    }
}
