//! The asynchronous log manager (paper §3.4).
//!
//! Commits land on a flush queue; a dedicated thread serializes them to the
//! log file, fsyncs in groups, and then invokes the durability callbacks
//! ("we implement callbacks by embedding a function pointer in the commit
//! record; when the log manager writes the commit record, it adds that
//! pointer to a list of callbacks to invoke after the next fsync").

use crate::record::{encode_commit, encode_redo};
use crossbeam::channel::{bounded, Receiver, Sender};
use mainline_common::{Result, Timestamp};
use mainline_txn::{CommitSink, RedoRecord};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning knobs for the log manager.
#[derive(Debug, Clone)]
pub struct LogManagerConfig {
    /// Log file path.
    pub path: PathBuf,
    /// Whether to `fsync` after each group (benchmarks may disable it).
    pub fsync: bool,
    /// Max queued commits before producers block (backpressure).
    pub queue_capacity: usize,
}

impl LogManagerConfig {
    /// Default configuration for a path.
    pub fn new(path: impl AsRef<Path>) -> Self {
        LogManagerConfig { path: path.as_ref().to_path_buf(), fsync: true, queue_capacity: 4096 }
    }
}

enum Msg {
    Commit {
        commit_ts: Timestamp,
        records: Vec<RedoRecord>,
        read_only: bool,
        callback: Box<dyn FnOnce() + Send>,
    },
    Flush(Sender<()>),
}

/// Handle to the background logging thread. Implements [`CommitSink`] so it
/// plugs directly into the transaction manager.
///
/// Shutdown protocol: the only `Sender` lives behind `tx`; closing is done by
/// taking it out under the write lock. The logging thread drains the channel
/// to exhaustion (`recv` only errors once the queue is empty *and* the sender
/// is gone), so a send that succeeded is always written and acked, and a
/// commit arriving after close is acked immediately on the caller's thread —
/// there is no window where an accepted callback can be lost.
pub struct LogManager {
    tx: parking_lot::RwLock<Option<Sender<Msg>>>,
    handle: parking_lot::Mutex<Option<JoinHandle<()>>>,
    bytes_written: Arc<AtomicU64>,
}

impl LogManager {
    /// Start the logging thread.
    pub fn start(config: LogManagerConfig) -> Result<Arc<LogManager>> {
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let (tx, rx) = bounded::<Msg>(config.queue_capacity);
        let bytes_written = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&bytes_written);
        let handle = std::thread::Builder::new()
            .name("log-manager".into())
            .spawn(move || run_loop(file, rx, config.fsync, counter))
            .expect("spawn log manager");
        Ok(Arc::new(LogManager {
            tx: parking_lot::RwLock::new(Some(tx)),
            handle: parking_lot::Mutex::new(Some(handle)),
            bytes_written,
        }))
    }

    /// Block until everything queued so far is durable.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = bounded(1);
        let sent = match &*self.tx.read() {
            Some(tx) => tx.send(Msg::Flush(ack_tx)).is_ok(),
            // Already shut down: the drain-on-close made everything durable.
            None => false,
        };
        if sent {
            let _ = ack_rx.recv();
        }
    }

    /// Bytes serialized to the log so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Acquire)
    }

    /// Stop the thread. Dropping the sender lets the thread drain the queue
    /// to exhaustion and sync before exiting, so nothing accepted is lost.
    pub fn shutdown(&self) {
        drop(self.tx.write().take());
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        drop(self.tx.get_mut().take());
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl CommitSink for LogManager {
    fn queue_commit(
        &self,
        commit_ts: Timestamp,
        records: Vec<RedoRecord>,
        read_only: bool,
        callback: Box<dyn FnOnce() + Send>,
    ) {
        match &*self.tx.read() {
            // While we hold the read lock the sender cannot be closed, and
            // the receiver outlives the sender, so this send cannot fail
            // (it may block on backpressure, which is intended).
            Some(tx) => {
                if let Err(e) = tx.send(Msg::Commit { commit_ts, records, read_only, callback }) {
                    if let Msg::Commit { callback, .. } = e.into_inner() {
                        callback();
                    }
                }
            }
            // Shut down: ack immediately. The data is lost, but so is the
            // process — recovery semantics are unchanged, and no committer
            // waits on durability forever.
            None => callback(),
        }
    }
}

fn run_loop(file: File, rx: Receiver<Msg>, fsync: bool, bytes_counter: Arc<AtomicU64>) {
    let mut out = BufWriter::with_capacity(1 << 20, file);
    let mut scratch: Vec<u8> = Vec::with_capacity(1 << 16);
    let mut callbacks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();

    let sync_and_ack = |out: &mut BufWriter<File>,
                        callbacks: &mut Vec<Box<dyn FnOnce() + Send>>| {
        if callbacks.is_empty() {
            return;
        }
        out.flush().expect("log flush failed");
        if fsync {
            out.get_ref().sync_data().expect("log fsync failed");
        }
        for cb in callbacks.drain(..) {
            cb();
        }
    };

    loop {
        // Block for the first message, then opportunistically drain the
        // queue to form a group commit.
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        let mut batch = vec![first];
        while let Ok(m) = rx.try_recv() {
            batch.push(m);
            if batch.len() >= 1024 {
                break;
            }
        }
        for msg in batch {
            match msg {
                Msg::Commit { commit_ts, records, read_only, callback } => {
                    if !read_only {
                        scratch.clear();
                        for r in &records {
                            encode_redo(&mut scratch, commit_ts, r);
                        }
                        encode_commit(&mut scratch, commit_ts);
                        out.write_all(&scratch).expect("log write failed");
                        bytes_counter.fetch_add(scratch.len() as u64, Ordering::AcqRel);
                    }
                    // Read-only commit records are acknowledged without being
                    // written (§3.4).
                    callbacks.push(callback);
                }
                Msg::Flush(ack) => {
                    sync_and_ack(&mut out, &mut callbacks);
                    let _ = ack.send(());
                }
            }
        }
        sync_and_ack(&mut out, &mut callbacks);
    }
    // `recv` above only errors once the queue is drained AND the sender is
    // closed, so reaching here means every accepted commit has been handled;
    // this final sync covers callbacks batched in the last iteration.
    sync_and_ack(&mut out, &mut callbacks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_storage::TupleSlot;
    use mainline_txn::{RedoCol, RedoOp};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mainline-wal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn redo(ts: u64) -> RedoRecord {
        RedoRecord {
            table_id: 1,
            slot: TupleSlot::from_raw(ts << 20),
            op: RedoOp::Insert(vec![RedoCol { col: 1, value: Some(vec![ts as u8]) }]),
        }
    }

    #[test]
    fn callbacks_fire_after_flush() {
        use std::sync::atomic::AtomicBool;
        let path = tmp("cb");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        let hit = Arc::new(AtomicBool::new(false));
        let h = Arc::clone(&hit);
        lm.queue_commit(
            Timestamp(3),
            vec![redo(3)],
            false,
            Box::new(move || h.store(true, Ordering::SeqCst)),
        );
        lm.flush();
        assert!(hit.load(Ordering::SeqCst));
        lm.shutdown();
        let bytes = std::fs::read(&path).unwrap();
        assert!(!bytes.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn callback_fires_even_after_shutdown() {
        use std::sync::atomic::AtomicBool;
        let path = tmp("post-shutdown");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        lm.shutdown();
        let hit = Arc::new(AtomicBool::new(false));
        let h = Arc::clone(&hit);
        lm.queue_commit(
            Timestamp(9),
            vec![redo(9)],
            false,
            Box::new(move || h.store(true, Ordering::SeqCst)),
        );
        assert!(hit.load(Ordering::SeqCst), "committer must not wait on durability forever");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_only_commits_write_nothing() {
        let path = tmp("ro");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        lm.queue_commit(Timestamp(1), vec![], true, Box::new(|| {}));
        lm.flush();
        lm.shutdown();
        assert_eq!(std::fs::read(&path).unwrap().len(), 0);
        assert_eq!(lm.bytes_written(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn log_contents_replayable() {
        use crate::record::{LogPayload, LogReader};
        let path = tmp("replay");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        for ts in 1..=5u64 {
            lm.queue_commit(Timestamp(ts), vec![redo(ts)], false, Box::new(|| {}));
        }
        lm.flush();
        lm.shutdown();
        let bytes = std::fs::read(&path).unwrap();
        let mut r = LogReader::new(&bytes);
        let mut commits = 0;
        let mut redos = 0;
        while let Some(e) = r.next_entry().unwrap() {
            match e.payload {
                LogPayload::Redo(_) => redos += 1,
                LogPayload::Commit => commits += 1,
            }
        }
        assert_eq!((redos, commits), (5, 5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_producers() {
        let path = tmp("conc");
        let lm =
            LogManager::start(LogManagerConfig { fsync: false, ..LogManagerConfig::new(&path) })
                .unwrap();
        let mut handles = vec![];
        for t in 0..4u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    lm.queue_commit(Timestamp(t * 1000 + i), vec![redo(i)], false, Box::new(|| {}));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        lm.flush();
        lm.shutdown();
        use crate::record::{LogPayload, LogReader};
        let bytes = std::fs::read(&path).unwrap();
        let mut r = LogReader::new(&bytes);
        let mut commits = 0;
        while let Some(e) = r.next_entry().unwrap() {
            if matches!(e.payload, LogPayload::Commit) {
                commits += 1;
            }
        }
        assert_eq!(commits, 400);
        let _ = std::fs::remove_file(&path);
    }
}
