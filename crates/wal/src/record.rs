//! On-disk log record format.
//!
//! A log is a stream of length-prefixed entries:
//!
//! ```text
//! [u32 frame_len][u8 kind][payload]
//! kind 0 (Redo):   [u64 commit_ts][u32 table_id][u64 slot][u8 op]
//!                  [u16 ncols]{[u16 col][u8 has][u32 len][bytes]}*
//! kind 1 (Commit): [u64 commit_ts]
//! ```
//!
//! `op`: 0 = insert, 1 = update, 2 = delete. A transaction's redo entries all
//! carry its commit timestamp and precede its commit entry; recovery ignores
//! transactions whose commit entry never made it to disk (§3.4 crash rule).

use mainline_common::{Error, Result, Timestamp};
use mainline_storage::TupleSlot;
use mainline_txn::{RedoCol, RedoOp, RedoRecord};

/// Parsed log entry payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogPayload {
    /// One replayable operation.
    Redo(RedoRecord),
    /// Transaction commit marker.
    Commit,
}

/// A parsed log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Commit timestamp of the owning transaction.
    pub commit_ts: Timestamp,
    /// Payload.
    pub payload: LogPayload,
}

fn op_code(op: &RedoOp) -> (u8, Option<&[RedoCol]>) {
    match op {
        RedoOp::Insert(cols) => (0, Some(cols)),
        RedoOp::Update(cols) => (1, Some(cols)),
        RedoOp::Delete => (2, None),
    }
}

/// Append one redo entry to `out`.
pub fn encode_redo(out: &mut Vec<u8>, commit_ts: Timestamp, r: &RedoRecord) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes()); // frame_len placeholder
    out.push(0u8);
    out.extend_from_slice(&commit_ts.0.to_le_bytes());
    out.extend_from_slice(&r.table_id.to_le_bytes());
    out.extend_from_slice(&r.slot.raw().to_le_bytes());
    let (code, cols) = op_code(&r.op);
    out.push(code);
    let cols = cols.unwrap_or(&[]);
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for c in cols {
        out.extend_from_slice(&c.col.to_le_bytes());
        match &c.value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }
    patch_len(out, start);
}

/// Append one commit entry to `out`.
pub fn encode_commit(out: &mut Vec<u8>, commit_ts: Timestamp) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.push(1u8);
    out.extend_from_slice(&commit_ts.0.to_le_bytes());
    patch_len(out, start);
}

fn patch_len(out: &mut [u8], start: usize) {
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Streaming decoder over a byte slice. Stops cleanly at a truncated tail
/// (the crash case: a partially written frame is ignored).
pub struct LogReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LogReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        LogReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Next entry; `Ok(None)` at end-of-log (including a truncated tail).
    pub fn next_entry(&mut self) -> Result<Option<LogEntry>> {
        let save = self.pos;
        let Some(len_bytes) = self.take(4) else { return Ok(None) };
        let frame_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        let Some(frame) = self.take(frame_len) else {
            // Torn tail write: pretend the log ends here.
            self.pos = save;
            return Ok(None);
        };
        let mut c = Cursor { bytes: frame, pos: 0 };
        let kind = c.u8()?;
        match kind {
            0 => {
                let commit_ts = Timestamp(c.u64()?);
                let table_id = c.u32()?;
                let slot = TupleSlot::from_raw(c.u64()?);
                let op_code = c.u8()?;
                let ncols = c.u16()? as usize;
                let mut cols = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let col = c.u16()?;
                    let has = c.u8()? != 0;
                    let len = c.u32()? as usize;
                    let value = if has { Some(c.take(len)?.to_vec()) } else { c.skip(len)? };
                    cols.push(RedoCol { col, value });
                }
                let op = match op_code {
                    0 => RedoOp::Insert(cols),
                    1 => RedoOp::Update(cols),
                    2 => RedoOp::Delete,
                    x => return Err(Error::Corrupt(format!("bad op code {x}"))),
                };
                Ok(Some(LogEntry {
                    commit_ts,
                    payload: LogPayload::Redo(RedoRecord { table_id, slot, op }),
                }))
            }
            1 => {
                let commit_ts = Timestamp(c.u64()?);
                Ok(Some(LogEntry { commit_ts, payload: LogPayload::Commit }))
            }
            x => Err(Error::Corrupt(format!("bad log entry kind {x}"))),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::Corrupt("truncated log frame".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn skip(&mut self, n: usize) -> Result<Option<Vec<u8>>> {
        self.take(n)?;
        Ok(None)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_redo() -> RedoRecord {
        RedoRecord {
            table_id: 3,
            slot: TupleSlot::from_raw((9 << 20) | 17),
            op: RedoOp::Insert(vec![
                RedoCol { col: 1, value: Some(vec![1, 2, 3]) },
                RedoCol { col: 2, value: None },
            ]),
        }
    }

    #[test]
    fn roundtrip_mixed_entries() {
        let mut log = Vec::new();
        encode_redo(&mut log, Timestamp(5), &sample_redo());
        encode_redo(
            &mut log,
            Timestamp(5),
            &RedoRecord { table_id: 3, slot: TupleSlot::from_raw(9 << 20), op: RedoOp::Delete },
        );
        encode_commit(&mut log, Timestamp(5));

        let mut r = LogReader::new(&log);
        let e1 = r.next_entry().unwrap().unwrap();
        assert_eq!(e1.commit_ts, Timestamp(5));
        assert_eq!(e1.payload, LogPayload::Redo(sample_redo()));
        let e2 = r.next_entry().unwrap().unwrap();
        assert!(matches!(e2.payload, LogPayload::Redo(RedoRecord { op: RedoOp::Delete, .. })));
        let e3 = r.next_entry().unwrap().unwrap();
        assert_eq!(e3.payload, LogPayload::Commit);
        assert!(r.next_entry().unwrap().is_none());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let mut log = Vec::new();
        encode_redo(&mut log, Timestamp(1), &sample_redo());
        encode_commit(&mut log, Timestamp(1));
        let full_len = log.len();
        encode_redo(&mut log, Timestamp(2), &sample_redo());
        // Simulate a crash mid-write: cut inside the last frame.
        let torn = &log[..full_len + 7];
        let mut r = LogReader::new(torn);
        assert!(r.next_entry().unwrap().is_some());
        assert!(r.next_entry().unwrap().is_some());
        assert!(r.next_entry().unwrap().is_none());
    }

    #[test]
    fn corrupt_kind_rejected() {
        let mut log = Vec::new();
        encode_commit(&mut log, Timestamp(1));
        log[4] = 99; // clobber the kind byte
        let mut r = LogReader::new(&log);
        assert!(r.next_entry().is_err());
    }

    #[test]
    fn update_roundtrip() {
        let rec = RedoRecord {
            table_id: 1,
            slot: TupleSlot::from_raw(1 << 20),
            op: RedoOp::Update(vec![RedoCol { col: 4, value: Some(b"new-value".to_vec()) }]),
        };
        let mut log = Vec::new();
        encode_redo(&mut log, Timestamp(9), &rec);
        let mut r = LogReader::new(&log);
        let e = r.next_entry().unwrap().unwrap();
        assert_eq!(e.payload, LogPayload::Redo(rec));
    }
}
