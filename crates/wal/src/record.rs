//! On-disk log record format.
//!
//! A log is a stream of length-prefixed entries:
//!
//! ```text
//! [u32 frame_len][u8 kind][payload]
//! kind 0 (Redo):        [u64 commit_ts][u32 table_id][u64 slot][u8 op]
//!                       [u16 ncols]{[u16 col][u8 has][u32 len][bytes]}*
//! kind 1 (Commit):      [u64 commit_ts]
//! kind 2 (CreateTable): [u64 commit_ts][u32 table_id][u8 transform]
//!                       [u16 len][name]
//!                       [u16 ncols]{[u8 type][u8 nullable][u16 len][name]}*
//!                       [u16 nidx]{[u16 len][name][u16 nkeys]{[u16 col]}*}*
//! kind 3 (DropTable):   [u64 commit_ts][u32 table_id][u16 len][name]
//! ```
//!
//! `op`: 0 = insert, 1 = update, 2 = delete. A transaction's redo and DDL
//! entries all carry its commit timestamp and precede its commit entry;
//! recovery ignores transactions whose commit entry never made it to disk
//! (§3.4 crash rule). DDL entries are *logical* — schema, catalog id, index
//! definitions — so a replayer can recreate a table the WAL tail references
//! even when no checkpoint knows about it.

use mainline_common::value::TypeId;
use mainline_common::{Error, Result, Timestamp};
use mainline_storage::TupleSlot;
use mainline_txn::{CreateTableDdl, IndexDef, RedoCol, RedoOp, RedoRecord};

/// Parsed log entry payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogPayload {
    /// One replayable operation.
    Redo(RedoRecord),
    /// Transaction commit marker.
    Commit,
    /// Logical `CREATE TABLE`.
    CreateTable(CreateTableDdl),
    /// Logical `DROP TABLE`.
    DropTable {
        /// Catalog id of the dropped table.
        table_id: u32,
        /// Catalog name of the dropped table.
        name: String,
    },
}

/// A parsed log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Commit timestamp of the owning transaction.
    pub commit_ts: Timestamp,
    /// Payload.
    pub payload: LogPayload,
}

fn op_code(op: &RedoOp) -> (u8, Option<&[RedoCol]>) {
    match op {
        RedoOp::Insert(cols) => (0, Some(cols)),
        RedoOp::Update(cols) => (1, Some(cols)),
        RedoOp::Delete => (2, None),
    }
}

/// Append one redo entry to `out`.
pub fn encode_redo(out: &mut Vec<u8>, commit_ts: Timestamp, r: &RedoRecord) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes()); // frame_len placeholder
    out.push(0u8);
    out.extend_from_slice(&commit_ts.0.to_le_bytes());
    out.extend_from_slice(&r.table_id.to_le_bytes());
    out.extend_from_slice(&r.slot.raw().to_le_bytes());
    let (code, cols) = op_code(&r.op);
    out.push(code);
    let cols = cols.unwrap_or(&[]);
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for c in cols {
        out.extend_from_slice(&c.col.to_le_bytes());
        match &c.value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }
    patch_len(out, start);
}

/// Append one commit entry to `out`.
pub fn encode_commit(out: &mut Vec<u8>, commit_ts: Timestamp) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.push(1u8);
    out.extend_from_slice(&commit_ts.0.to_le_bytes());
    patch_len(out, start);
}

fn type_code(ty: TypeId) -> u8 {
    match ty {
        TypeId::TinyInt => 0,
        TypeId::SmallInt => 1,
        TypeId::Integer => 2,
        TypeId::BigInt => 3,
        TypeId::Double => 4,
        TypeId::Varchar => 5,
    }
}

fn type_from_code(code: u8) -> Result<TypeId> {
    Ok(match code {
        0 => TypeId::TinyInt,
        1 => TypeId::SmallInt,
        2 => TypeId::Integer,
        3 => TypeId::BigInt,
        4 => TypeId::Double,
        5 => TypeId::Varchar,
        x => return Err(Error::Corrupt(format!("bad DDL type code {x}"))),
    })
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    // A silent `as u16` truncation would poison the log (frame length and
    // inner structure disagree forever after); the catalog rejects oversize
    // names before they get here, so this is a backstop, not a path.
    assert!(s.len() <= u16::MAX as usize, "name of {} bytes cannot be logged", s.len());
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Append one logical `CREATE TABLE` entry to `out`.
pub fn encode_create_table(out: &mut Vec<u8>, commit_ts: Timestamp, ddl: &CreateTableDdl) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.push(2u8);
    out.extend_from_slice(&commit_ts.0.to_le_bytes());
    out.extend_from_slice(&ddl.table_id.to_le_bytes());
    out.push(ddl.transform as u8);
    push_str(out, &ddl.name);
    out.extend_from_slice(&(ddl.columns.len() as u16).to_le_bytes());
    for c in &ddl.columns {
        out.push(type_code(c.ty));
        out.push(c.nullable as u8);
        push_str(out, &c.name);
    }
    out.extend_from_slice(&(ddl.indexes.len() as u16).to_le_bytes());
    for ix in &ddl.indexes {
        push_str(out, &ix.name);
        out.extend_from_slice(&(ix.key_cols.len() as u16).to_le_bytes());
        for &k in &ix.key_cols {
            out.extend_from_slice(&(k as u16).to_le_bytes());
        }
    }
    patch_len(out, start);
}

/// Append one logical `DROP TABLE` entry to `out`.
pub fn encode_drop_table(out: &mut Vec<u8>, commit_ts: Timestamp, table_id: u32, name: &str) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.push(3u8);
    out.extend_from_slice(&commit_ts.0.to_le_bytes());
    out.extend_from_slice(&table_id.to_le_bytes());
    push_str(out, name);
    patch_len(out, start);
}

fn patch_len(out: &mut [u8], start: usize) {
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Streaming decoder over a byte slice. Stops cleanly at a truncated tail
/// (the crash case: a partially written frame is ignored).
pub struct LogReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LogReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        LogReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Next entry; `Ok(None)` at end-of-log (including a truncated tail).
    pub fn next_entry(&mut self) -> Result<Option<LogEntry>> {
        let save = self.pos;
        let Some(len_bytes) = self.take(4) else { return Ok(None) };
        let frame_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        let Some(frame) = self.take(frame_len) else {
            // Torn tail write: pretend the log ends here.
            self.pos = save;
            return Ok(None);
        };
        let mut c = Cursor { bytes: frame, pos: 0 };
        let kind = c.u8()?;
        match kind {
            0 => {
                let commit_ts = Timestamp(c.u64()?);
                let table_id = c.u32()?;
                let slot = TupleSlot::from_raw(c.u64()?);
                let op_code = c.u8()?;
                let ncols = c.u16()? as usize;
                let mut cols = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let col = c.u16()?;
                    let has = c.u8()? != 0;
                    let len = c.u32()? as usize;
                    let value = if has { Some(c.take(len)?.to_vec()) } else { c.skip(len)? };
                    cols.push(RedoCol { col, value });
                }
                let op = match op_code {
                    0 => RedoOp::Insert(cols),
                    1 => RedoOp::Update(cols),
                    2 => RedoOp::Delete,
                    x => return Err(Error::Corrupt(format!("bad op code {x}"))),
                };
                Ok(Some(LogEntry {
                    commit_ts,
                    payload: LogPayload::Redo(RedoRecord { table_id, slot, op }),
                }))
            }
            1 => {
                let commit_ts = Timestamp(c.u64()?);
                Ok(Some(LogEntry { commit_ts, payload: LogPayload::Commit }))
            }
            2 => {
                let commit_ts = Timestamp(c.u64()?);
                let table_id = c.u32()?;
                let transform = c.u8()? != 0;
                let name = c.string()?;
                let ncols = c.u16()? as usize;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let ty = type_from_code(c.u8()?)?;
                    let nullable = c.u8()? != 0;
                    let col_name = c.string()?;
                    columns.push(mainline_common::schema::ColumnDef {
                        name: col_name,
                        ty,
                        nullable,
                    });
                }
                let nidx = c.u16()? as usize;
                let mut indexes = Vec::with_capacity(nidx);
                for _ in 0..nidx {
                    let ix_name = c.string()?;
                    let nkeys = c.u16()? as usize;
                    let mut key_cols = Vec::with_capacity(nkeys);
                    for _ in 0..nkeys {
                        key_cols.push(c.u16()? as usize);
                    }
                    indexes.push(IndexDef { name: ix_name, key_cols });
                }
                Ok(Some(LogEntry {
                    commit_ts,
                    payload: LogPayload::CreateTable(CreateTableDdl {
                        table_id,
                        name,
                        transform,
                        columns,
                        indexes,
                    }),
                }))
            }
            3 => {
                let commit_ts = Timestamp(c.u64()?);
                let table_id = c.u32()?;
                let name = c.string()?;
                Ok(Some(LogEntry { commit_ts, payload: LogPayload::DropTable { table_id, name } }))
            }
            x => Err(Error::Corrupt(format!("bad log entry kind {x}"))),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::Corrupt("truncated log frame".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn skip(&mut self, n: usize) -> Result<Option<Vec<u8>>> {
        self.take(n)?;
        Ok(None)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("non-UTF-8 name in DDL record".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_redo() -> RedoRecord {
        RedoRecord {
            table_id: 3,
            slot: TupleSlot::from_raw((9 << 20) | 17),
            op: RedoOp::Insert(vec![
                RedoCol { col: 1, value: Some(vec![1, 2, 3]) },
                RedoCol { col: 2, value: None },
            ]),
        }
    }

    #[test]
    fn roundtrip_mixed_entries() {
        let mut log = Vec::new();
        encode_redo(&mut log, Timestamp(5), &sample_redo());
        encode_redo(
            &mut log,
            Timestamp(5),
            &RedoRecord { table_id: 3, slot: TupleSlot::from_raw(9 << 20), op: RedoOp::Delete },
        );
        encode_commit(&mut log, Timestamp(5));

        let mut r = LogReader::new(&log);
        let e1 = r.next_entry().unwrap().unwrap();
        assert_eq!(e1.commit_ts, Timestamp(5));
        assert_eq!(e1.payload, LogPayload::Redo(sample_redo()));
        let e2 = r.next_entry().unwrap().unwrap();
        assert!(matches!(e2.payload, LogPayload::Redo(RedoRecord { op: RedoOp::Delete, .. })));
        let e3 = r.next_entry().unwrap().unwrap();
        assert_eq!(e3.payload, LogPayload::Commit);
        assert!(r.next_entry().unwrap().is_none());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let mut log = Vec::new();
        encode_redo(&mut log, Timestamp(1), &sample_redo());
        encode_commit(&mut log, Timestamp(1));
        let full_len = log.len();
        encode_redo(&mut log, Timestamp(2), &sample_redo());
        // Simulate a crash mid-write: cut inside the last frame.
        let torn = &log[..full_len + 7];
        let mut r = LogReader::new(torn);
        assert!(r.next_entry().unwrap().is_some());
        assert!(r.next_entry().unwrap().is_some());
        assert!(r.next_entry().unwrap().is_none());
    }

    #[test]
    fn corrupt_kind_rejected() {
        let mut log = Vec::new();
        encode_commit(&mut log, Timestamp(1));
        log[4] = 99; // clobber the kind byte
        let mut r = LogReader::new(&log);
        assert!(r.next_entry().is_err());
    }

    #[test]
    fn ddl_roundtrip() {
        use mainline_common::schema::ColumnDef;
        let ddl = CreateTableDdl {
            table_id: 42,
            name: "orders with spaces".into(),
            transform: true,
            columns: vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::nullable("note", TypeId::Varchar),
                ColumnDef::new("score", TypeId::Double),
            ],
            indexes: vec![
                IndexDef { name: "pk".into(), key_cols: vec![0] },
                IndexDef { name: "by_note".into(), key_cols: vec![1, 2] },
            ],
        };
        let mut log = Vec::new();
        encode_create_table(&mut log, Timestamp(7), &ddl);
        encode_commit(&mut log, Timestamp(7));
        encode_drop_table(&mut log, Timestamp(9), 42, "orders with spaces");
        encode_commit(&mut log, Timestamp(9));

        let mut r = LogReader::new(&log);
        let e = r.next_entry().unwrap().unwrap();
        assert_eq!(e.commit_ts, Timestamp(7));
        assert_eq!(e.payload, LogPayload::CreateTable(ddl));
        assert_eq!(r.next_entry().unwrap().unwrap().payload, LogPayload::Commit);
        let e = r.next_entry().unwrap().unwrap();
        assert_eq!(e.commit_ts, Timestamp(9));
        assert_eq!(
            e.payload,
            LogPayload::DropTable { table_id: 42, name: "orders with spaces".into() }
        );
        assert_eq!(r.next_entry().unwrap().unwrap().payload, LogPayload::Commit);
        assert!(r.next_entry().unwrap().is_none());

        // A torn DDL tail is ignored like any other frame.
        let mut torn = Vec::new();
        encode_commit(&mut torn, Timestamp(1));
        let keep = torn.len();
        encode_create_table(&mut torn, Timestamp(2), &sample_ddl());
        let mut r = LogReader::new(&torn[..keep + 9]);
        assert!(r.next_entry().unwrap().is_some());
        assert!(r.next_entry().unwrap().is_none());
    }

    fn sample_ddl() -> CreateTableDdl {
        CreateTableDdl {
            table_id: 1,
            name: "t".into(),
            transform: false,
            columns: vec![mainline_common::schema::ColumnDef::new("id", TypeId::BigInt)],
            indexes: vec![],
        }
    }

    #[test]
    fn update_roundtrip() {
        let rec = RedoRecord {
            table_id: 1,
            slot: TupleSlot::from_raw(1 << 20),
            op: RedoOp::Update(vec![RedoCol { col: 4, value: Some(b"new-value".to_vec()) }]),
        };
        let mut log = Vec::new();
        encode_redo(&mut log, Timestamp(9), &rec);
        let mut r = LogReader::new(&log);
        let e = r.next_entry().unwrap().unwrap();
        assert_eq!(e.payload, LogPayload::Redo(rec));
    }
}
