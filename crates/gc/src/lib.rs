//! `mainline-gc` — garbage collection and epoch protection (paper §3.3).
//!
//! "At the start of each run, the GC first checks the transaction engine's
//! transactions table for the oldest active transaction's start timestamp;
//! changes from transactions committed before this timestamp are no longer
//! visible and are safe for removal. The GC inspects all such transactions to
//! compute the set of TupleSlots that have invisible records in their version
//! chains, and then truncates them exactly once. [...] the records are safe
//! for deallocation when the oldest running transaction in the system has a
//! larger start timestamp than the unlink time."
//!
//! The same epoch machinery generalizes into a [`deferred::DeferredQueue`] of
//! arbitrary timestamped actions (§4.4), used by the transformation pipeline
//! to reclaim gathered buffers and recycled blocks.
//!
//! # Example
//!
//! ```
//! use mainline_common::schema::{ColumnDef, Schema};
//! use mainline_common::value::{TypeId, Value};
//! use mainline_gc::GarbageCollector;
//! use mainline_storage::ProjectedRow;
//! use mainline_txn::{DataTable, TransactionManager};
//! use std::sync::Arc;
//!
//! let manager = Arc::new(TransactionManager::new());
//! let table =
//!     DataTable::new(1, Schema::new(vec![ColumnDef::new("id", TypeId::BigInt)])).unwrap();
//! let mut gc = GarbageCollector::new(Arc::clone(&manager));
//!
//! // One insert plus five updates: a six-record version chain.
//! let txn = manager.begin();
//! let slot =
//!     table.insert(&txn, &ProjectedRow::from_values(&[TypeId::BigInt], &[Value::BigInt(0)]));
//! manager.commit(&txn);
//! for i in 1..=5 {
//!     let txn = manager.begin();
//!     let mut delta = ProjectedRow::new();
//!     delta.push_fixed(1, &Value::BigInt(i));
//!     table.update(&txn, slot, &delta).unwrap();
//!     manager.commit(&txn);
//! }
//!
//! let unlink = gc.run(); // phase 1: truncate chains
//! assert_eq!(unlink.txns_unlinked, 6);
//! let dealloc = gc.run(); // phase 2: reclaim after the epoch turns
//! assert_eq!(dealloc.txns_deallocated, 6);
//! ```

pub mod collector;
pub mod deferred;

pub use collector::{GarbageCollector, GcStats, ModificationObserver};
pub use deferred::{DeferredBatch, DeferredQueue};
