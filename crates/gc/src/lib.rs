//! `mainline-gc` — garbage collection and epoch protection (paper §3.3).
//!
//! "At the start of each run, the GC first checks the transaction engine's
//! transactions table for the oldest active transaction's start timestamp;
//! changes from transactions committed before this timestamp are no longer
//! visible and are safe for removal. The GC inspects all such transactions to
//! compute the set of TupleSlots that have invisible records in their version
//! chains, and then truncates them exactly once. [...] the records are safe
//! for deallocation when the oldest running transaction in the system has a
//! larger start timestamp than the unlink time."
//!
//! The same epoch machinery generalizes into a [`deferred::DeferredQueue`] of
//! arbitrary timestamped actions (§4.4), used by the transformation pipeline
//! to reclaim gathered buffers and recycled blocks.

pub mod collector;
pub mod deferred;

pub use collector::{GarbageCollector, GcStats, ModificationObserver};
pub use deferred::DeferredQueue;
