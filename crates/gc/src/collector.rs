//! The two-phase garbage collector (paper §3.3).
//!
//! Phase 1 (**unlink**): for every transaction that finished before the
//! oldest active transaction started, compute the set of touched slots and
//! truncate each version chain exactly once at the first record that is
//! visible to everyone (everything at or below it can no longer be needed).
//!
//! Phase 2 (**deallocate**): a batch whose unlink happened at time `u` is
//! reclaimed once the oldest active transaction started after `u` — no
//! concurrent reader can still hold a pointer into the records (an
//! epoch-protection argument, cf. FASTER \[30\]).

use crate::deferred::DeferredQueue;
use mainline_common::Timestamp;
use mainline_storage::access;
use mainline_storage::raw_block::layout_of;
use mainline_storage::TupleSlot;
use mainline_txn::transaction::TxnOutcome;
use mainline_txn::undo::UndoRecordRef;
use mainline_txn::{Transaction, TransactionManager};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Observer of modifications, fed from undo records during GC runs — this is
/// how the access observer of §4.2 collects statistics *off* the transaction
/// critical path.
pub trait ModificationObserver: Send + Sync {
    /// One undo record's table and slot, observed at GC time (the "GC epoch"
    /// stands in for the modification time, §4.2).
    fn on_modification(&self, table_id: u32, slot: TupleSlot);
    /// A GC pass finished (epoch tick).
    fn on_gc_pass(&self);
}

/// Counters for one GC run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Transactions whose chains were truncated this run.
    pub txns_unlinked: usize,
    /// Transactions whose memory was reclaimed this run.
    pub txns_deallocated: usize,
    /// Version chains truncated.
    pub chains_truncated: usize,
    /// Deferred actions executed.
    pub deferred_ran: usize,
}

/// The garbage collector. Drive it by calling [`GarbageCollector::run`]
/// periodically (the paper uses a ~10 ms cadence) from one or more threads.
pub struct GarbageCollector {
    manager: Arc<TransactionManager>,
    deferred: Arc<DeferredQueue>,
    observers: Vec<Arc<dyn ModificationObserver>>,
    /// Completed transactions not yet old enough to unlink.
    pending: Vec<Arc<Transaction>>,
    /// Unlinked batches awaiting deallocation: (unlink time, batch).
    unlinked: Vec<(Timestamp, Vec<Arc<Transaction>>)>,
    /// Threads used for chain truncation when the slot set is large (§4.4).
    parallelism: usize,
}

impl GarbageCollector {
    /// Collector over a transaction manager.
    pub fn new(manager: Arc<TransactionManager>) -> Self {
        GarbageCollector {
            manager,
            deferred: Arc::new(DeferredQueue::new()),
            observers: Vec::new(),
            pending: Vec::new(),
            unlinked: Vec::new(),
            parallelism: 1,
        }
    }

    /// Enable parallel chain truncation across `n` threads (§4.4 "for
    /// high-throughput workloads a single GC thread will not keep up").
    pub fn set_parallelism(&mut self, n: usize) {
        self.parallelism = n.max(1);
    }

    /// The shared deferred-action queue (handed to the transform pipeline).
    pub fn deferred(&self) -> Arc<DeferredQueue> {
        Arc::clone(&self.deferred)
    }

    /// Register a modification observer (the transform access observer).
    pub fn add_observer(&mut self, obs: Arc<dyn ModificationObserver>) {
        self.observers.push(obs);
    }

    /// One GC pass.
    pub fn run(&mut self) -> GcStats {
        let mut stats = GcStats::default();
        let oldest = self.manager.oldest_active_start();

        // Intake.
        self.manager.drain_completed(&mut self.pending);

        // Partition ready vs not-ready. A transaction is ready when every
        // timestamp it ever published is below `oldest`: committed → its
        // commit timestamp; aborted → its start (the abort republish value).
        let mut ready = Vec::new();
        self.pending.retain(|t| {
            let fence = match t.outcome() {
                TxnOutcome::Committed => t.commit_ts().unwrap(),
                TxnOutcome::Aborted => t.start_ts(),
                TxnOutcome::Active => unreachable!("active txn in completed queue"),
            };
            if fence < oldest {
                ready.push(Arc::clone(t));
                false
            } else {
                true
            }
        });

        // Phase 1: truncate each touched chain exactly once. With
        // `parallelism > 1` the slot set is sharded across scoped threads —
        // the §4.4 "Scaling Transformation and GC" scheme, where disjoint
        // slot ownership replaces the paper's back-off marks.
        if !ready.is_empty() {
            let mut slots: HashSet<TupleSlot> = HashSet::new();
            for t in &ready {
                for r in t.undo_records() {
                    let slot = r.slot();
                    for obs in &self.observers {
                        obs.on_modification(r.table_id(), slot);
                    }
                    slots.insert(slot);
                }
            }
            if self.parallelism > 1 && slots.len() > 1024 {
                let slot_vec: Vec<TupleSlot> = slots.iter().copied().collect();
                let chunk = slot_vec.len().div_ceil(self.parallelism);
                let truncated = std::sync::atomic::AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for shard in slot_vec.chunks(chunk) {
                        let truncated = &truncated;
                        scope.spawn(move || {
                            let mut n = 0;
                            for slot in shard {
                                unsafe {
                                    if truncate_chain(*slot, oldest) {
                                        n += 1;
                                    }
                                }
                            }
                            truncated.fetch_add(n, Ordering::Relaxed);
                        });
                    }
                });
                stats.chains_truncated = truncated.load(Ordering::Relaxed);
            } else {
                for slot in &slots {
                    unsafe {
                        if truncate_chain(*slot, oldest) {
                            stats.chains_truncated += 1;
                        }
                    }
                }
            }
            stats.txns_unlinked = ready.len();
            let unlink_time = self.manager.oracle().next();
            self.unlinked.push((unlink_time, ready));
        }

        // Phase 2: deallocate batches whose unlink epoch has passed.
        let mut i = 0;
        while i < self.unlinked.len() {
            if self.unlinked[i].0 < oldest {
                let (_, batch) = self.unlinked.swap_remove(i);
                for t in batch {
                    unsafe { reclaim(&t) };
                    stats.txns_deallocated += 1;
                }
            } else {
                i += 1;
            }
        }

        // Deferred actions ride the same epoch.
        stats.deferred_ran = self.deferred.process(oldest);

        for obs in &self.observers {
            obs.on_gc_pass();
        }
        stats
    }

    /// Run until quiescent (requires no active transactions): used at
    /// shutdown and in tests. Returns total passes.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut passes = 0;
        loop {
            let s = self.run();
            passes += 1;
            let idle = s.txns_unlinked == 0
                && s.txns_deallocated == 0
                && s.deferred_ran == 0
                && self.pending.is_empty()
                && self.unlinked.is_empty()
                && self.deferred.is_empty();
            if idle || passes > 1000 {
                break;
            }
            // Each pass draws fresh "now" timestamps; with no active
            // transactions the epochs advance by themselves.
        }
        passes
    }

    /// Backlog sizes (pending, unlink batches) for tests/metrics.
    pub fn backlog(&self) -> (usize, usize) {
        (self.pending.len(), self.unlinked.len())
    }
}

/// Truncate the version chain of `slot` at the first record no active
/// transaction could still need. Returns true if something was unlinked.
///
/// # Safety
/// Caller must be the only thread truncating this slot in this pass, and the
/// records must still be alive (phase-2 delay guarantees it).
unsafe fn truncate_chain(slot: TupleSlot, oldest: Timestamp) -> bool {
    let block = slot.block();
    let layout = layout_of(block);
    let idx = slot.offset();
    let vp = access::version_ptr(block, layout, idx);
    let head_raw = vp.load(Ordering::Acquire);
    let mut prev: Option<UndoRecordRef> = None;
    let mut cur = UndoRecordRef::from_raw(head_raw);
    while let Some(r) = cur {
        let ts = r.timestamp();
        if !ts.is_uncommitted() && ts < oldest {
            // `r` is visible to every active transaction: they stop at (or
            // before) it without reading its payload — cut here.
            match prev {
                None => {
                    // Whole chain is prunable; a racing writer may have
                    // installed a new head, in which case we leave it for
                    // the next pass.
                    return vp
                        .compare_exchange(head_raw, 0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                }
                Some(p) => {
                    p.set_next_raw(0);
                    return true;
                }
            }
        }
        prev = cur;
        cur = r.next();
    }
    false
}

/// Free a transaction's varlen before-images, orphans, and undo segments.
///
/// # Safety
/// No chain may still link to the transaction's records and no reader may
/// hold a pointer into them (phase-2 epoch argument).
unsafe fn reclaim(txn: &Arc<Transaction>) {
    txn.reclaim();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mainline_common::schema::{ColumnDef, Schema};
    use mainline_common::value::{TypeId, Value};
    use mainline_storage::ProjectedRow;
    use mainline_txn::DataTable;

    fn table() -> Arc<DataTable> {
        DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::nullable("name", TypeId::Varchar),
            ]),
        )
        .unwrap()
    }

    fn row(id: i64, name: &str) -> ProjectedRow {
        ProjectedRow::from_values(
            &[TypeId::BigInt, TypeId::Varchar],
            &[Value::BigInt(id), Value::string(name)],
        )
    }

    fn version_len(slot: TupleSlot) -> usize {
        unsafe {
            let layout = layout_of(slot.block());
            let mut n = 0;
            let mut cur =
                UndoRecordRef::from_raw(access::load_version(slot.block(), layout, slot.offset()));
            while let Some(r) = cur {
                n += 1;
                cur = r.next();
            }
            n
        }
    }

    #[test]
    fn chains_pruned_after_epoch() {
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let mut gc = GarbageCollector::new(Arc::clone(&m));

        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, "version-zero-string-value"));
        m.commit(&setup);
        for i in 0..5 {
            let txn = m.begin();
            let mut d = ProjectedRow::new();
            d.push_fixed(1, &Value::BigInt(i + 100));
            t.update(&txn, slot, &d).unwrap();
            m.commit(&txn);
        }
        assert_eq!(version_len(slot), 6);

        let s1 = gc.run(); // unlink
        assert_eq!(s1.txns_unlinked, 6);
        assert_eq!(version_len(slot), 0);
        let s2 = gc.run(); // dealloc
        assert_eq!(s2.txns_deallocated, 6);
        assert_eq!(gc.backlog(), (0, 0));

        // Data still correct.
        let check = m.begin();
        assert_eq!(t.select_values(&check, slot).unwrap()[0], Value::BigInt(104));
        m.commit(&check);
    }

    #[test]
    fn active_reader_blocks_pruning() {
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let mut gc = GarbageCollector::new(Arc::clone(&m));

        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, "the original value aaaa"));
        m.commit(&setup);

        let reader = m.begin(); // pins the epoch
        let writer = m.begin();
        let mut d = ProjectedRow::new();
        d.push_fixed(1, &Value::BigInt(2));
        t.update(&writer, slot, &d).unwrap();
        m.commit(&writer);

        let s = gc.run();
        // setup is older than the reader and can unlink, but writer is not.
        assert!(s.txns_unlinked <= 2);
        // The writer's record must survive — the reader still needs its
        // before-image.
        assert!(version_len(slot) >= 1);
        assert_eq!(t.select_values(&reader, slot).unwrap()[0], Value::BigInt(1));
        m.commit(&reader);

        gc.run();
        let s = gc.run();
        let _ = s;
        assert_eq!(version_len(slot), 0);
        gc.run_to_quiescence();
        assert_eq!(gc.backlog(), (0, 0));
    }

    #[test]
    fn aborted_transactions_are_collected() {
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let mut gc = GarbageCollector::new(Arc::clone(&m));

        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, "a value that stays put!!"));
        m.commit(&setup);

        let bad = m.begin();
        let mut d = ProjectedRow::new();
        d.push_varlen(2, mainline_storage::VarlenEntry::from_bytes(b"the doomed replacement"));
        t.update(&bad, slot, &d).unwrap();
        m.abort(&bad);

        gc.run();
        gc.run();
        assert_eq!(version_len(slot), 0);
        assert_eq!(gc.backlog(), (0, 0));
        let check = m.begin();
        assert_eq!(
            t.select_values(&check, slot).unwrap()[1],
            Value::string("a value that stays put!!")
        );
        m.commit(&check);
    }

    #[test]
    fn parallel_truncation_matches_serial() {
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let mut gc = GarbageCollector::new(Arc::clone(&m));
        gc.set_parallelism(4);
        // Touch >1024 distinct slots so the parallel path engages.
        let setup = m.begin();
        let slots: Vec<TupleSlot> =
            (0..3000).map(|i| t.insert(&setup, &row(i, "parallel-gc-value"))).collect();
        m.commit(&setup);
        let txn = m.begin();
        for &slot in &slots {
            let mut d = ProjectedRow::new();
            d.push_fixed(1, &Value::BigInt(1));
            t.update(&txn, slot, &d).unwrap();
        }
        m.commit(&txn);
        let s1 = gc.run();
        assert_eq!(s1.txns_unlinked, 2);
        assert_eq!(s1.chains_truncated, 3000);
        for &slot in slots.iter().step_by(257) {
            assert_eq!(version_len(slot), 0);
        }
        gc.run();
        assert_eq!(gc.backlog(), (0, 0));
        // Data intact.
        let check = m.begin();
        assert_eq!(t.count_visible(&check), 3000);
        m.commit(&check);
    }

    #[test]
    fn observers_see_modifications_and_epochs() {
        use std::sync::atomic::AtomicUsize;
        #[derive(Default)]
        struct Counting {
            mods: AtomicUsize,
            passes: AtomicUsize,
        }
        impl ModificationObserver for Counting {
            fn on_modification(&self, _table_id: u32, _slot: TupleSlot) {
                self.mods.fetch_add(1, Ordering::SeqCst);
            }
            fn on_gc_pass(&self) {
                self.passes.fetch_add(1, Ordering::SeqCst);
            }
        }
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let mut gc = GarbageCollector::new(Arc::clone(&m));
        let obs = Arc::new(Counting::default());
        gc.add_observer(Arc::clone(&obs) as Arc<dyn ModificationObserver>);

        let txn = m.begin();
        let slot = t.insert(&txn, &row(1, "abc"));
        let mut d = ProjectedRow::new();
        d.push_fixed(1, &Value::BigInt(2));
        t.update(&txn, slot, &d).unwrap();
        m.commit(&txn);

        gc.run();
        assert_eq!(obs.mods.load(Ordering::SeqCst), 2); // insert + update
        assert_eq!(obs.passes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_workload_with_gc_thread() {
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Seed data.
        let setup = m.begin();
        let slots: Vec<TupleSlot> =
            (0..64).map(|i| t.insert(&setup, &row(i, "seed-value-string-data"))).collect();
        m.commit(&setup);

        let mut handles = vec![];
        for tid in 0..4usize {
            let m = Arc::clone(&m);
            let t = Arc::clone(&t);
            let slots = slots.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut rng = mainline_common::rng::Xoshiro256::seed_from_u64(tid as u64);
                while !stop.load(Ordering::Relaxed) {
                    let txn = m.begin();
                    let slot = slots[rng.next_below(slots.len() as u64) as usize];
                    let mut ok = true;
                    if rng.next_below(2) == 0 {
                        let mut d = ProjectedRow::new();
                        d.push_fixed(1, &Value::BigInt(rng.int_range(0, 1 << 30)));
                        ok = t.update(&txn, slot, &d).is_ok();
                    } else {
                        let _ = t.select_values(&txn, slot);
                    }
                    if ok {
                        m.commit(&txn);
                    } else {
                        m.abort(&txn);
                    }
                }
            }));
        }
        // GC thread.
        let gc_stop = Arc::clone(&stop);
        let gc_m = Arc::clone(&m);
        let gc_handle = std::thread::spawn(move || {
            let mut gc = GarbageCollector::new(gc_m);
            let mut total = GcStats::default();
            while !gc_stop.load(Ordering::Relaxed) {
                let s = gc.run();
                total.txns_unlinked += s.txns_unlinked;
                total.txns_deallocated += s.txns_deallocated;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            gc.run_to_quiescence();
            total
        });

        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let total = gc_handle.join().unwrap();
        assert!(total.txns_deallocated > 0, "GC should have reclaimed transactions");

        // All tuples still readable and consistent.
        let check = m.begin();
        assert_eq!(t.count_visible(&check), 64);
        m.commit(&check);
    }
}
