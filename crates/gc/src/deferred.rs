//! Deferred, timestamp-ordered actions (paper §3.3 / §4.4).
//!
//! "We extend our GC to accept arbitrary actions associated with a timestamp
//! in the form of a callback, which it promises to invoke after the oldest
//! alive transaction in the system is started after the given timestamp."

use mainline_common::Timestamp;
use parking_lot::Mutex;
use std::collections::VecDeque;

type Action = Box<dyn FnOnce() + Send>;

/// A queue of `(timestamp, action)` pairs executed once the oldest active
/// transaction started after the timestamp.
#[derive(Default)]
pub struct DeferredQueue {
    inner: Mutex<VecDeque<(Timestamp, Action)>>,
}

impl DeferredQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an action to run after `ts` falls out of the visible window.
    pub fn defer(&self, ts: Timestamp, action: impl FnOnce() + Send + 'static) {
        self.inner.lock().push_back((ts, Box::new(action)));
    }

    /// Run every action whose timestamp is older than `oldest_active_start`;
    /// returns how many ran. Actions are timestamp-ordered because `defer`
    /// is called with monotonically drawn timestamps.
    pub fn process(&self, oldest_active_start: Timestamp) -> usize {
        let mut ran = 0;
        loop {
            // Pop under the lock, run outside it (actions may re-defer).
            let action = {
                let mut q = self.inner.lock();
                match q.front() {
                    Some((ts, _)) if *ts < oldest_active_start => q.pop_front().unwrap().1,
                    _ => break,
                }
            };
            action();
            ran += 1;
        }
        ran
    }

    /// Actions still waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Run everything unconditionally (shutdown path: no transactions left).
    pub fn drain_all(&self) -> usize {
        self.process(Timestamp::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn actions_wait_for_epoch() {
        let q = DeferredQueue::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        q.defer(Timestamp(10), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(q.process(Timestamp(5)), 0); // too early
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(q.process(Timestamp(10)), 0); // boundary: still visible
        assert_eq!(q.process(Timestamp(11)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn processes_in_order_up_to_bound() {
        let q = DeferredQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in [1u64, 5, 20] {
            let o = Arc::clone(&order);
            q.defer(Timestamp(i), move || o.lock().push(i));
        }
        assert_eq!(q.process(Timestamp(10)), 2);
        assert_eq!(*order.lock(), vec![1, 5]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_all(), 1);
        assert_eq!(*order.lock(), vec![1, 5, 20]);
    }

    #[test]
    fn actions_may_redefer() {
        let q = Arc::new(DeferredQueue::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let q2 = Arc::clone(&q);
        let h = Arc::clone(&hits);
        q.defer(Timestamp(1), move || {
            h.fetch_add(1, Ordering::SeqCst);
            let h2 = Arc::clone(&h);
            q2.defer(Timestamp(100), move || {
                h2.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(q.process(Timestamp(50)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(q.process(Timestamp(200)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 11);
    }
}
