//! Deferred, timestamp-ordered actions (paper §3.3 / §4.4).
//!
//! "We extend our GC to accept arbitrary actions associated with a timestamp
//! in the form of a callback, which it promises to invoke after the oldest
//! alive transaction in the system is started after the given timestamp."

use mainline_common::Timestamp;
use parking_lot::Mutex;
use std::collections::VecDeque;

type Action = Box<dyn FnOnce() + Send>;

/// A queue of `(timestamp, action)` pairs executed once the oldest active
/// transaction started after the timestamp.
#[derive(Default)]
pub struct DeferredQueue {
    inner: Mutex<VecDeque<(Timestamp, Action)>>,
}

impl DeferredQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an action to run after `ts` falls out of the visible window.
    pub fn defer(&self, ts: Timestamp, action: impl FnOnce() + Send + 'static) {
        self.inner.lock().push_back((ts, Box::new(action)));
    }

    /// Run every action whose timestamp is older than `oldest_active_start`;
    /// returns how many ran. Actions are timestamp-ordered because `defer`
    /// is called with monotonically drawn timestamps.
    pub fn process(&self, oldest_active_start: Timestamp) -> usize {
        let mut ran = 0;
        loop {
            // Pop under the lock, run outside it (actions may re-defer).
            let action = {
                let mut q = self.inner.lock();
                match q.front() {
                    Some((ts, _)) if *ts < oldest_active_start => q.pop_front().unwrap().1,
                    _ => break,
                }
            };
            action();
            ran += 1;
        }
        ran
    }

    /// Actions still waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Run everything unconditionally (shutdown path: no transactions left).
    pub fn drain_all(&self) -> usize {
        self.process(Timestamp::MAX)
    }

    /// Start a local batch of deferred actions. Background workers that defer
    /// many actions per tick (e.g. one per frozen block) accumulate them in
    /// the batch and pay for the queue lock once at flush time instead of
    /// once per action — the per-worker deferred batching of the multi-worker
    /// transformation subsystem.
    pub fn batch(&self) -> DeferredBatch<'_> {
        DeferredBatch { queue: self, items: Vec::new() }
    }
}

/// A worker-local accumulator of deferred actions (see
/// [`DeferredQueue::batch`]). Flushes on [`DeferredBatch::flush`] or drop.
pub struct DeferredBatch<'q> {
    queue: &'q DeferredQueue,
    items: Vec<(Timestamp, Action)>,
}

impl DeferredBatch<'_> {
    /// Buffer an action locally; it reaches the shared queue at flush time.
    pub fn defer(&mut self, ts: Timestamp, action: impl FnOnce() + Send + 'static) {
        self.items.push((ts, Box::new(action)));
    }

    /// Buffered actions not yet flushed.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Publish the batch to the shared queue under a single lock.
    pub fn flush(mut self) {
        self.flush_inner();
    }

    fn flush_inner(&mut self) {
        if self.items.is_empty() {
            return;
        }
        let mut q = self.queue.inner.lock();
        q.extend(self.items.drain(..));
        // Concurrent workers draw timestamps independently, so batches can
        // interleave out of order; `process` pops from the front while
        // timestamps are below the bound, so restore global order here
        // (rare — only when another worker published in between).
        if !q.iter().map(|(ts, _)| *ts).is_sorted() {
            q.make_contiguous().sort_by_key(|(ts, _)| *ts);
        }
    }
}

impl Drop for DeferredBatch<'_> {
    fn drop(&mut self) {
        self.flush_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn actions_wait_for_epoch() {
        let q = DeferredQueue::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        q.defer(Timestamp(10), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(q.process(Timestamp(5)), 0); // too early
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(q.process(Timestamp(10)), 0); // boundary: still visible
        assert_eq!(q.process(Timestamp(11)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn processes_in_order_up_to_bound() {
        let q = DeferredQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in [1u64, 5, 20] {
            let o = Arc::clone(&order);
            q.defer(Timestamp(i), move || o.lock().push(i));
        }
        assert_eq!(q.process(Timestamp(10)), 2);
        assert_eq!(*order.lock(), vec![1, 5]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_all(), 1);
        assert_eq!(*order.lock(), vec![1, 5, 20]);
    }

    #[test]
    fn batched_defers_flush_in_timestamp_order() {
        let q = DeferredQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        // Worker A batches {3, 7}; worker B publishes 5 directly in between.
        let mut batch = q.batch();
        for i in [3u64, 7] {
            let o = Arc::clone(&order);
            batch.defer(Timestamp(i), move || o.lock().push(i));
        }
        assert_eq!(batch.len(), 2);
        assert!(q.is_empty(), "batched actions stay local until flush");
        {
            let o = Arc::clone(&order);
            q.defer(Timestamp(5), move || o.lock().push(5));
        }
        batch.flush();
        assert_eq!(q.len(), 3);
        assert_eq!(q.drain_all(), 3);
        assert_eq!(*order.lock(), vec![3, 5, 7], "flush must restore timestamp order");
    }

    #[test]
    fn batch_flushes_on_drop() {
        let q = DeferredQueue::new();
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let mut batch = q.batch();
            let h = Arc::clone(&hits);
            batch.defer(Timestamp(1), move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            assert!(!batch.is_empty());
        } // drop flushes
        assert_eq!(q.len(), 1);
        assert_eq!(q.process(Timestamp(2)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn actions_may_redefer() {
        let q = Arc::new(DeferredQueue::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let q2 = Arc::clone(&q);
        let h = Arc::clone(&hits);
        q.defer(Timestamp(1), move || {
            h.fetch_add(1, Ordering::SeqCst);
            let h2 = Arc::clone(&h);
            q2.defer(Timestamp(100), move || {
                h2.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(q.process(Timestamp(50)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(q.process(Timestamp(200)), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 11);
    }
}
