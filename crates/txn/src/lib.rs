//! `mainline-txn` — the multi-versioned delta-store transaction engine
//! (paper §3.1).
//!
//! Design recap:
//!
//! * Version chains are **newest-to-oldest lists of undo records** (physical
//!   before-images) hanging off the hidden version-pointer column; deltas
//!   live in per-transaction undo buffers, *outside* Arrow storage.
//! * Timestamps come from one global counter; a running transaction's id is
//!   its start timestamp with the sign bit flipped, so uncommitted versions
//!   lose every unsigned comparison against start timestamps.
//! * Readers copy the latest version and apply before-images until they reach
//!   a visible record. A version-pointer double-check detects racing
//!   installs; the abort protocol (restore, then re-publish the record with a
//!   committed timestamp) repairs readers that copied an aborted version
//!   without unlinking anything — dodging the A-B-A race of §3.1.
//! * Write-write conflicts are disallowed: the chain head acts as the
//!   tuple's write lock until its owner finishes.

pub mod data_table;
pub mod ddl;
pub mod manager;
pub mod obs;
pub mod redo;
pub mod transaction;
pub mod undo;

pub use data_table::{DataTable, FaultHandler};
pub use ddl::{CreateTableDdl, DdlRecord, IndexDef};
pub use manager::{CommitSink, TransactionManager};
pub use redo::{RedoCol, RedoOp, RedoRecord};
pub use transaction::Transaction;
pub use undo::{UndoKind, UndoRecordRef};
