//! The transaction manager: begin / commit / abort (paper §3.1, §3.4).

use crate::ddl::DdlRecord;
use crate::redo::RedoRecord;
use crate::transaction::{Transaction, TxnOutcome};
use crossbeam::queue::SegQueue;
use mainline_common::pool::SegmentPool;
use mainline_common::timestamp::{Timestamp, TimestampOracle};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Where committed transactions' redo buffers go (the log manager's flush
/// queue, §3.4). The sink must eventually invoke `callback` once the commit
/// record is durable; the DBMS withholds results from the client until then.
pub trait CommitSink: Send + Sync {
    /// Queue a transaction's redo records — and any logical DDL it staged —
    /// for flushing. DDL records are serialized before the redo records of
    /// the same commit so replay applies catalog changes first.
    ///
    /// `read_only` transactions also obtain a commit record "to guard
    /// against the anomaly" of speculative reads, but the sink may skip
    /// writing it to disk.
    fn queue_commit(
        &self,
        commit_ts: Timestamp,
        records: Vec<RedoRecord>,
        ddl: Vec<DdlRecord>,
        read_only: bool,
        callback: Box<dyn FnOnce() + Send>,
    );
}

/// A sink that acknowledges instantly (logging disabled).
pub struct NoopSink;

impl CommitSink for NoopSink {
    fn queue_commit(
        &self,
        _commit_ts: Timestamp,
        _records: Vec<RedoRecord>,
        _ddl: Vec<DdlRecord>,
        _read_only: bool,
        callback: Box<dyn FnOnce() + Send>,
    ) {
        callback();
    }
}

/// Creates, tracks, commits, and aborts transactions.
pub struct TransactionManager {
    oracle: TimestampOracle,
    /// Start timestamps of running transactions (for the GC's oldest-active
    /// computation, §3.3).
    active: Mutex<BTreeSet<u64>>,
    /// Finished transactions awaiting garbage collection.
    completed: SegQueue<Arc<Transaction>>,
    /// The §3.1 "small critical section" serializing commits.
    commit_latch: Mutex<()>,
    /// Shared undo/redo segment pool.
    pool: Arc<SegmentPool>,
    /// Log hand-off.
    sink: Arc<dyn CommitSink>,
}

impl TransactionManager {
    /// Manager with logging disabled.
    pub fn new() -> Self {
        Self::with_sink(Arc::new(NoopSink))
    }

    /// Manager wired to a log manager.
    pub fn with_sink(sink: Arc<dyn CommitSink>) -> Self {
        crate::obs::register();
        TransactionManager {
            oracle: TimestampOracle::new(),
            active: Mutex::new(BTreeSet::new()),
            completed: SegQueue::new(),
            commit_latch: Mutex::new(()),
            pool: Arc::new(SegmentPool::default()),
            sink,
        }
    }

    /// The shared timestamp oracle (GC epochs draw from the same order).
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Arc<Transaction> {
        // Take the latch so a concurrent committer cannot observe a state
        // where our start timestamp is drawn but not yet registered (the GC
        // would then compute too-new an "oldest active" bound).
        let _guard = self.commit_latch.lock();
        let start = self.oracle.next();
        self.active.lock().insert(start.0);
        Arc::new(Transaction::new(start, Arc::clone(&self.pool)))
    }

    /// Commit a transaction; returns its commit timestamp.
    ///
    /// The §3.1 protocol: a small critical section obtains the commit
    /// timestamp, publishes it into the delta records, and queues the redo
    /// buffer for the log manager.
    pub fn commit(&self, txn: &Arc<Transaction>) -> Timestamp {
        assert_eq!(txn.outcome(), TxnOutcome::Active, "commit on finished txn");
        // A DDL-only transaction has an empty write set but must still reach
        // the log: its record is what makes the log self-describing.
        let writes = txn.write_set_size();
        let read_only = writes == 0 && txn.ddl_count() == 0;
        let commit_ts;
        {
            let _guard = self.commit_latch.lock();
            commit_ts = self.oracle.next();
            txn.publish_timestamp(commit_ts);
            txn.set_commit_ts(commit_ts);
            txn.set_outcome(TxnOutcome::Committed);
            // The rest of the system treats the transaction as committed as
            // soon as its commit record is in the flush queue (§3.4).
            let records = txn.take_redo();
            let ddl = txn.take_ddl();
            let t = Arc::clone(txn);
            self.sink.queue_commit(
                commit_ts,
                records,
                ddl,
                read_only,
                Box::new(move || t.set_durable()),
            );
        }
        self.active.lock().remove(&txn.start_ts().0);
        txn.run_end_actions(true);
        if writes > 0 {
            crate::obs::DB_WRITES.add(writes as u64);
        }
        self.completed.push(Arc::clone(txn));
        commit_ts
    }

    /// Abort a transaction, rolling back its in-place changes (§3.1).
    ///
    /// For each undo record (newest first): restore the before-image, then
    /// re-publish the record with a committed timestamp equal to the
    /// transaction's start — readers that copied the aborted version apply
    /// the (now redundant) record and are repaired; nothing is unlinked.
    pub fn abort(&self, txn: &Arc<Transaction>) {
        assert_eq!(txn.outcome(), TxnOutcome::Active, "abort on finished txn");
        let records = txn.undo_records();
        for r in records.iter().rev() {
            unsafe { crate::data_table::rollback_record(txn, *r) };
        }
        // Publish the records as "committed" at start: the restored in-place
        // state *is* the pre-transaction state, so applying these records is
        // harmless for everyone.
        for r in records.iter() {
            r.set_timestamp(txn.start_ts());
        }
        txn.set_outcome(TxnOutcome::Aborted);
        self.active.lock().remove(&txn.start_ts().0);
        txn.run_end_actions(false);
        self.completed.push(Arc::clone(txn));
    }

    /// Oldest running transaction's start timestamp, or the current oracle
    /// position when none are running (§3.3).
    pub fn oldest_active_start(&self) -> Timestamp {
        let active = self.active.lock();
        match active.iter().next() {
            Some(&t) => Timestamp(t),
            None => self.oracle.peek(),
        }
    }

    /// Number of running transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Drain finished transactions (the GC's intake).
    pub fn drain_completed(&self, out: &mut Vec<Arc<Transaction>>) {
        while let Some(t) = self.completed.pop() {
            out.push(t);
        }
    }
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_lifecycle() {
        let m = TransactionManager::new();
        let t = m.begin();
        assert_eq!(m.active_count(), 1);
        let ct = m.commit(&t);
        assert_eq!(m.active_count(), 0);
        assert!(ct > t.start_ts());
        assert_eq!(t.outcome(), TxnOutcome::Committed);
        assert_eq!(t.commit_ts(), Some(ct));
        // NoopSink acks instantly.
        assert!(t.is_durable());
        let mut v = vec![];
        m.drain_completed(&mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn oldest_active_tracks_minimum() {
        let m = TransactionManager::new();
        let t1 = m.begin();
        let t2 = m.begin();
        assert_eq!(m.oldest_active_start(), t1.start_ts());
        m.commit(&t1);
        assert_eq!(m.oldest_active_start(), t2.start_ts());
        m.commit(&t2);
        // No active: oldest is "now", which exceeds both starts.
        assert!(m.oldest_active_start() > t2.start_ts());
    }

    #[test]
    fn commit_timestamps_are_ordered() {
        let m = Arc::new(TransactionManager::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                (0..200)
                    .map(|_| {
                        let t = m.begin();
                        m.commit(&t).0
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "commit timestamps must be unique");
    }

    #[test]
    #[should_panic]
    fn double_commit_panics() {
        let m = TransactionManager::new();
        let t = m.begin();
        m.commit(&t);
        m.commit(&t);
    }

    #[test]
    fn read_only_commit_hits_sink() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountingSink(AtomicUsize, AtomicUsize);
        impl CommitSink for CountingSink {
            fn queue_commit(
                &self,
                _ts: Timestamp,
                _records: Vec<RedoRecord>,
                _ddl: Vec<DdlRecord>,
                read_only: bool,
                cb: Box<dyn FnOnce() + Send>,
            ) {
                self.0.fetch_add(1, Ordering::SeqCst);
                if read_only {
                    self.1.fetch_add(1, Ordering::SeqCst);
                }
                cb();
            }
        }
        let sink = Arc::new(CountingSink(AtomicUsize::new(0), AtomicUsize::new(0)));
        let m = TransactionManager::with_sink(Arc::clone(&sink) as Arc<dyn CommitSink>);
        let t = m.begin();
        m.commit(&t);
        // Even read-only transactions obtain a commit record (§3.4).
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
        assert_eq!(sink.1.load(Ordering::SeqCst), 1);
        // A DDL-only transaction has no write set but is NOT read-only: its
        // record is what makes the log self-describing.
        let t = m.begin();
        t.add_ddl(DdlRecord::DropTable { table_id: 1, name: "t".into() });
        m.commit(&t);
        assert_eq!(sink.0.load(Ordering::SeqCst), 2);
        assert_eq!(sink.1.load(Ordering::SeqCst), 1, "DDL commit must not count as read-only");
    }
}
