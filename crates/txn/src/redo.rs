//! Redo buffers: physical after-images destined for the log (paper §3.4).
//!
//! "Each transaction maintains a redo buffer [...] writes changes to its redo
//! buffer in the order that they occur. At commit time, the transaction
//! appends a commit record." Unlike undo records, redo records carry the
//! actual value bytes (varlen contents included) because they outlive the
//! process.

use mainline_storage::TupleSlot;

/// After-image of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoCol {
    /// Storage column id (1-based).
    pub col: u16,
    /// `None` encodes NULL; fixed columns carry `attr_size` bytes, varlen
    /// columns carry the full value.
    pub value: Option<Vec<u8>>,
}

/// The operation a redo record replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoOp {
    /// Insert with full after-image.
    Insert(Vec<RedoCol>),
    /// Update with partial after-image.
    Update(Vec<RedoCol>),
    /// Delete.
    Delete,
}

/// One redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoRecord {
    /// Catalog table id.
    pub table_id: u32,
    /// The slot at the time of the operation (recovery remaps it).
    pub slot: TupleSlot,
    /// The replayable operation.
    pub op: RedoOp,
}

/// A transaction's redo buffer.
#[derive(Debug, Default)]
pub struct RedoBuffer {
    records: Vec<RedoRecord>,
}

impl RedoBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        RedoBuffer { records: Vec::new() }
    }

    /// Append one record (in operation order).
    pub fn push(&mut self, r: RedoRecord) {
        self.records.push(r);
    }

    /// Records in operation order.
    pub fn records(&self) -> &[RedoRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the transaction wrote nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Take the records out (hand-off to the log manager at commit).
    pub fn take(&mut self) -> Vec<RedoRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_accumulates_in_order() {
        let mut b = RedoBuffer::new();
        assert!(b.is_empty());
        b.push(RedoRecord {
            table_id: 1,
            slot: TupleSlot::from_raw(1 << 20),
            op: RedoOp::Insert(vec![RedoCol { col: 1, value: Some(vec![1, 2]) }]),
        });
        b.push(RedoRecord { table_id: 1, slot: TupleSlot::from_raw(1 << 20), op: RedoOp::Delete });
        assert_eq!(b.len(), 2);
        assert!(matches!(b.records()[0].op, RedoOp::Insert(_)));
        assert!(matches!(b.records()[1].op, RedoOp::Delete));
        let taken = b.take();
        assert_eq!(taken.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn null_encoding() {
        let c = RedoCol { col: 3, value: None };
        assert!(c.value.is_none());
    }
}
