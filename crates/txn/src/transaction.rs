//! Transaction contexts (paper §3.1).
//!
//! A transaction owns its undo buffer (the version chains point into it) and
//! its redo buffer. Contexts are used by one worker thread at a time, but are
//! later read by the GC and the log manager, so the mutable state sits behind
//! a lightweight mutex (uncontended on the hot path).

use crate::ddl::DdlRecord;
use crate::redo::{RedoBuffer, RedoRecord};
use crate::undo::{UndoBuffer, UndoKind, UndoRecordRef};
use mainline_common::pool::SegmentPool;
use mainline_common::Timestamp;
use mainline_storage::projected_row::AttrImage;
use mainline_storage::{TupleSlot, VarlenEntry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How a transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Still running.
    Active,
    /// Committed at `commit_ts`.
    Committed,
    /// Rolled back.
    Aborted,
}

/// A transaction context.
pub struct Transaction {
    start: Timestamp,
    txn_id: Timestamp,
    /// Commit timestamp once committed (0 while running/aborted).
    commit_ts: AtomicU64,
    outcome: Mutex<TxnOutcome>,
    /// True once the commit record is queued (reads of this txn's results
    /// must wait for the log callback before release to the client, §3.4).
    durable: AtomicBool,
    inner: Mutex<TxnBuffers>,
    pool: Arc<SegmentPool>,
}

struct TxnBuffers {
    undo: UndoBuffer,
    redo: RedoBuffer,
    /// Logical DDL staged for the log (see [`crate::ddl`]); handed to the
    /// commit sink alongside the redo records so schema changes are
    /// group-committed and timestamp-ordered with data.
    ddl: Vec<DdlRecord>,
    /// Varlen buffers orphaned by rollback; freed by the GC once no reader
    /// can hold a copy of the entry (§4.4 "Memory Management").
    orphans: Vec<VarlenEntry>,
    /// Actions run right after the transaction ends (argument: committed?).
    /// The execution layer uses these for index maintenance compensation —
    /// e.g. undoing an eager index insert on abort, or deferring an index
    /// delete until old snapshots drain.
    end_actions: Vec<Box<dyn FnOnce(bool) + Send>>,
    /// Tables this transaction touched. The pins keep each table's block
    /// memory alive until the GC's final reclamation — a writer that commits
    /// through a retained `TableHandle` *after* `DROP TABLE` must stay safe
    /// while the GC unlinks its version chains through block memory, and the
    /// catalog's epoch keep-alive alone cannot see handles it never issued.
    pins: Vec<Arc<crate::data_table::DataTable>>,
}

impl Transaction {
    /// Create a context. Use [`crate::manager::TransactionManager::begin`]
    /// instead of calling this directly.
    pub(crate) fn new(start: Timestamp, pool: Arc<SegmentPool>) -> Self {
        Transaction {
            start,
            txn_id: start.as_txn_id(),
            commit_ts: AtomicU64::new(0),
            outcome: Mutex::new(TxnOutcome::Active),
            durable: AtomicBool::new(false),
            inner: Mutex::new(TxnBuffers {
                undo: UndoBuffer::new(),
                redo: RedoBuffer::new(),
                ddl: Vec::new(),
                orphans: Vec::new(),
                end_actions: Vec::new(),
                pins: Vec::new(),
            }),
            pool,
        }
    }

    /// Start timestamp (snapshot point).
    #[inline]
    pub fn start_ts(&self) -> Timestamp {
        self.start
    }

    /// Uncommitted transaction id (start with the sign bit flipped).
    #[inline]
    pub fn txn_id(&self) -> Timestamp {
        self.txn_id
    }

    /// Commit timestamp, if committed.
    pub fn commit_ts(&self) -> Option<Timestamp> {
        match self.commit_ts.load(Ordering::Acquire) {
            0 => None,
            t => Some(Timestamp(t)),
        }
    }

    /// Current outcome.
    pub fn outcome(&self) -> TxnOutcome {
        *self.outcome.lock()
    }

    /// True once the log manager confirmed durability.
    pub fn is_durable(&self) -> bool {
        self.durable.load(Ordering::Acquire)
    }

    pub(crate) fn set_durable(&self) {
        self.durable.store(true, Ordering::Release);
    }

    /// MVCC visibility of a version timestamp to this transaction.
    #[inline]
    pub fn can_see(&self, version_ts: Timestamp) -> bool {
        version_ts.visible_to(self.start, self.txn_id)
    }

    /// Append an undo record and return its stable reference.
    pub(crate) fn new_undo_record(
        &self,
        slot: TupleSlot,
        table_id: u32,
        kind: UndoKind,
        deltas: &[AttrImage],
        varlen_flags: &[bool],
        next_raw: u64,
    ) -> UndoRecordRef {
        let mut inner = self.inner.lock();
        inner.undo.new_record(
            &self.pool,
            self.txn_id,
            slot,
            table_id,
            kind,
            deltas,
            varlen_flags,
            next_raw,
        )
    }

    /// Append a redo record.
    pub(crate) fn push_redo(&self, r: RedoRecord) {
        self.inner.lock().redo.push(r);
    }

    /// Forget the most recent (never-published) undo record after a lost
    /// version-pointer CAS.
    pub(crate) fn pop_undo_record(&self) {
        self.inner.lock().undo.pop_last();
    }

    /// Stash a varlen entry whose buffer must be freed once this transaction
    /// is garbage-collected.
    pub(crate) fn stash_orphan(&self, e: VarlenEntry) {
        if e.owns_buffer() {
            self.inner.lock().orphans.push(e);
        }
    }

    /// Pin a table for the lifetime of this transaction (deduplicated).
    /// Every `TableHandle` access pins, so block memory the transaction's
    /// undo records point into outlives even a concurrent `DROP TABLE` —
    /// released only by [`Self::reclaim`], after the GC has unlinked every
    /// version chain this transaction installed.
    pub fn pin_table(&self, table: &Arc<crate::data_table::DataTable>) {
        let mut inner = self.inner.lock();
        if !inner.pins.iter().any(|p| Arc::ptr_eq(p, table)) {
            inner.pins.push(Arc::clone(table));
        }
    }

    /// Number of distinct tables pinned (test introspection).
    pub fn pinned_tables(&self) -> usize {
        self.inner.lock().pins.len()
    }

    /// Register an action to run when the transaction finishes; it receives
    /// `true` on commit, `false` on abort.
    pub fn add_end_action(&self, f: impl FnOnce(bool) + Send + 'static) {
        self.inner.lock().end_actions.push(Box::new(f));
    }

    /// Run the registered end actions (manager-internal).
    pub(crate) fn run_end_actions(&self, committed: bool) {
        let actions = std::mem::take(&mut self.inner.lock().end_actions);
        for a in actions {
            a(committed);
        }
    }

    /// Undo records in creation order (GC / rollback iteration).
    pub fn undo_records(&self) -> Vec<UndoRecordRef> {
        self.inner.lock().undo.records().to_vec()
    }

    /// Number of undo records (the transaction's write-set size).
    pub fn write_set_size(&self) -> usize {
        self.inner.lock().undo.len()
    }

    /// Take the redo records (log hand-off at commit).
    pub(crate) fn take_redo(&self) -> Vec<RedoRecord> {
        self.inner.lock().redo.take()
    }

    /// Stage a logical DDL record for the log. The catalog calls this from
    /// `CREATE TABLE`/`DROP TABLE`; at commit the records ride the same
    /// group-commit hand-off as the redo buffer.
    pub fn add_ddl(&self, record: DdlRecord) {
        self.inner.lock().ddl.push(record);
    }

    /// Number of staged DDL records (a DDL-only transaction must still hit
    /// the log, so `read_only` accounting includes this).
    pub fn ddl_count(&self) -> usize {
        self.inner.lock().ddl.len()
    }

    /// Take the DDL records (log hand-off at commit).
    pub(crate) fn take_ddl(&self) -> Vec<DdlRecord> {
        std::mem::take(&mut self.inner.lock().ddl)
    }

    pub(crate) fn set_outcome(&self, o: TxnOutcome) {
        *self.outcome.lock() = o;
    }

    pub(crate) fn set_commit_ts(&self, ts: Timestamp) {
        self.commit_ts.store(ts.0, Ordering::Release);
    }

    /// Publish `ts` into every undo record (the §3.1 commit critical
    /// section's bulk timestamp update).
    pub(crate) fn publish_timestamp(&self, ts: Timestamp) {
        let inner = self.inner.lock();
        for r in inner.undo.records() {
            r.set_timestamp(ts);
        }
    }

    /// GC final reclamation: free owned varlen before-images and orphans,
    /// then return undo segments to the pool.
    ///
    /// # Safety
    /// Caller (the GC) must guarantee no version chain or reader can still
    /// reference this transaction's records or stashed buffers.
    pub unsafe fn reclaim(&self) {
        let mut inner = self.inner.lock();
        for r in inner.undo.records() {
            if r.kind() == UndoKind::Update {
                for i in 0..r.ncols() {
                    if !r.delta_is_varlen(i) {
                        continue;
                    }
                    let d = r.delta(i);
                    let e = d.as_varlen();
                    if !d.null && e.owns_buffer() {
                        e.free_buffer();
                    }
                }
            }
        }
        for e in inner.orphans.drain(..) {
            e.free_buffer();
        }
        inner.undo.release_segments(&self.pool);
        // Last touch: nothing of this transaction references table memory
        // anymore, so the table pins can finally go.
        inner.pins.clear();
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Transaction(start={:?}, outcome={:?}, writes={})",
            self.start,
            self.outcome(),
            self.write_set_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(start: u64) -> Transaction {
        Transaction::new(Timestamp(start), Arc::new(SegmentPool::default()))
    }

    #[test]
    fn identity() {
        let t = txn(9);
        assert_eq!(t.start_ts(), Timestamp(9));
        assert!(t.txn_id().is_uncommitted());
        assert_eq!(t.txn_id().strip_uncommitted(), Timestamp(9));
        assert_eq!(t.outcome(), TxnOutcome::Active);
        assert_eq!(t.commit_ts(), None);
        assert!(!t.is_durable());
    }

    #[test]
    fn visibility_rules() {
        let t = txn(10);
        assert!(t.can_see(Timestamp(10)));
        assert!(t.can_see(Timestamp(3)));
        assert!(!t.can_see(Timestamp(11)));
        assert!(t.can_see(t.txn_id())); // own writes
        assert!(!t.can_see(Timestamp(4).as_txn_id())); // other uncommitted
    }

    #[test]
    fn undo_record_and_publish() {
        let t = txn(5);
        let slot = TupleSlot::from_raw(3 << 20);
        let r1 = t.new_undo_record(slot, 7, UndoKind::Insert, &[], &[], 0);
        let r2 = t.new_undo_record(slot, 7, UndoKind::Delete, &[], &[], r1.as_raw());
        assert_eq!(t.write_set_size(), 2);
        assert!(r1.timestamp().is_uncommitted());
        t.publish_timestamp(Timestamp(99));
        assert_eq!(r1.timestamp(), Timestamp(99));
        assert_eq!(r2.timestamp(), Timestamp(99));
    }

    #[test]
    fn orphan_stash_ignores_non_owned() {
        let t = txn(1);
        t.stash_orphan(VarlenEntry::from_bytes(b"tiny")); // inlined: ignored
        let owned = VarlenEntry::from_bytes(b"long enough to allocate a buffer");
        t.stash_orphan(owned);
        assert_eq!(t.inner.lock().orphans.len(), 1);
        unsafe { t.reclaim() };
        assert!(t.inner.lock().orphans.is_empty());
    }

    #[test]
    fn reclaim_frees_update_before_images() {
        let t = txn(2);
        let e = VarlenEntry::from_bytes(b"before image with a heap buffer");
        let img = AttrImage::from_varlen(2, false, e);
        let slot = TupleSlot::from_raw(3 << 20);
        t.new_undo_record(slot, 1, UndoKind::Update, &[img], &[true], 0);
        // reclaim must not double-free or leak (checked by miri-style review;
        // here we just exercise the path).
        unsafe { t.reclaim() };
        assert_eq!(t.write_set_size(), 0);
    }
}
