//! Process-global metrics owned by the transaction layer.
//!
//! The write counter is deliberately **not** bumped per row: a `lock`-prefixed
//! RMW on every insert costs more than the 5 % observability budget on the
//! uncontended write path (`fig_obs`). Instead the per-transaction write-set
//! size — already tracked by the undo buffer — is flushed with one `add` at
//! commit, so the per-row path carries no metrics work at all.

use mainline_obs::{Counter, Metric};

/// Rows written (insert / update / delete) by committed transactions,
/// process-wide. Flushed once per commit from the undo-buffer length;
/// aborted transactions' writes are not counted.
pub static DB_WRITES: Counter =
    Counter::new("db_writes", "rows written by committed transactions (any database)");

/// Register this crate's metrics with the global registry (idempotent).
pub(crate) fn register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        mainline_obs::registry().register(&[Metric::Counter(&DB_WRITES)]);
    });
}
