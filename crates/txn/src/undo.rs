//! Undo buffers and undo records (paper §3.1).
//!
//! "The DBMS assigns each transaction an undo buffer as an append-only
//! row-store for deltas. [...] The system implements undo buffers as a linked
//! list of fixed-sized segments (currently 4096 bytes) and incrementally adds
//! new segments as needed." Records are never moved once written, because the
//! version chains point physically into the buffer.
//!
//! A record's wire-in-memory layout (8-byte aligned, all fields POD):
//!
//! ```text
//! 0..8   next       AtomicU64 — older record (0 = end of chain)
//! 8..16  timestamp  AtomicU64 — txn id while running, commit ts after
//! 16..24 slot       u64       — TupleSlot raw
//! 24..28 table_id   u32
//! 28..32 kind/ncols u16 + u16
//! 32..   ncols × DeltaCol { col: u16, null: u8, pad: [u8;5], image: [u8;16] }
//! ```

use mainline_common::pool::{Segment, SegmentPool, SEGMENT_SIZE};
use mainline_common::Timestamp;
use mainline_storage::projected_row::AttrImage;
use mainline_storage::TupleSlot;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a record undoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum UndoKind {
    /// Before-image of an in-place attribute update.
    Update = 0,
    /// The tuple did not exist before (rollback clears the allocation bit).
    Insert = 1,
    /// The tuple existed before (rollback sets the allocation bit).
    Delete = 2,
}

const HEADER_SIZE: usize = 32;
const DELTA_COL_SIZE: usize = 24;

/// One delta column inside an undo record.
#[repr(C)]
struct RawDeltaCol {
    col: u16,
    null: u8,
    /// 1 when the image is a `VarlenEntry` (the GC must not reinterpret
    /// fixed-length images as entries — a fixed value can look "owned").
    varlen: u8,
    _pad: [u8; 4],
    image: [u8; 16],
}

/// A non-owning reference to an undo record living in some undo buffer.
///
/// Records are only dereferenced while their owning transaction object is
/// alive (GC keeps transactions alive until no reader can reach them).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct UndoRecordRef(*mut u8);

unsafe impl Send for UndoRecordRef {}
unsafe impl Sync for UndoRecordRef {}

impl UndoRecordRef {
    /// Rebuild from a raw version-pointer value. `None` for 0.
    #[inline]
    pub fn from_raw(raw: u64) -> Option<Self> {
        if raw == 0 {
            None
        } else {
            Some(UndoRecordRef(raw as *mut u8))
        }
    }

    /// The raw pointer value stored in version-pointer columns.
    #[inline]
    pub fn as_raw(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn next_cell(self) -> &'static AtomicU64 {
        unsafe { &*(self.0 as *const AtomicU64) }
    }

    #[inline]
    fn ts_cell(self) -> &'static AtomicU64 {
        unsafe { &*(self.0.add(8) as *const AtomicU64) }
    }

    /// Next (older) record in the chain.
    #[inline]
    pub fn next(self) -> Option<UndoRecordRef> {
        Self::from_raw(self.next_cell().load(Ordering::Acquire))
    }

    /// Overwrite the next pointer (GC truncation).
    #[inline]
    pub fn set_next_raw(self, raw: u64) {
        self.next_cell().store(raw, Ordering::Release)
    }

    /// The record's timestamp (txn id while uncommitted).
    #[inline]
    pub fn timestamp(self) -> Timestamp {
        Timestamp(self.ts_cell().load(Ordering::Acquire))
    }

    /// Publish a new timestamp (commit / abort-republish).
    #[inline]
    pub fn set_timestamp(self, ts: Timestamp) {
        self.ts_cell().store(ts.0, Ordering::Release)
    }

    /// Slot this record belongs to.
    #[inline]
    pub fn slot(self) -> TupleSlot {
        TupleSlot::from_raw(unsafe { (self.0.add(16) as *const u64).read() })
    }

    /// Table id (for the WAL and debugging).
    #[inline]
    pub fn table_id(self) -> u32 {
        unsafe { (self.0.add(24) as *const u32).read() }
    }

    /// Record kind.
    #[inline]
    pub fn kind(self) -> UndoKind {
        match unsafe { (self.0.add(28) as *const u16).read() } {
            0 => UndoKind::Update,
            1 => UndoKind::Insert,
            2 => UndoKind::Delete,
            k => unreachable!("corrupt undo kind {k}"),
        }
    }

    /// Number of delta columns.
    #[inline]
    pub fn ncols(self) -> usize {
        unsafe { (self.0.add(30) as *const u16).read() as usize }
    }

    #[inline]
    fn delta_ptr(self, i: usize) -> *mut RawDeltaCol {
        debug_assert!(i < self.ncols());
        unsafe { self.0.add(HEADER_SIZE + i * DELTA_COL_SIZE) as *mut RawDeltaCol }
    }

    /// Read delta column `i` as an attribute image.
    pub fn delta(self, i: usize) -> AttrImage {
        unsafe {
            let d = &*self.delta_ptr(i);
            AttrImage { col: d.col, null: d.null != 0, image: d.image }
        }
    }

    /// Whether delta `i`'s image is a varlen entry.
    pub fn delta_is_varlen(self, i: usize) -> bool {
        unsafe { (*self.delta_ptr(i)).varlen != 0 }
    }

    /// Clear the varlen ownership bit inside delta `i`'s image (used by the
    /// abort path after ownership of the buffer returns to the table).
    pub fn clear_delta_ownership(self, i: usize) {
        unsafe {
            let d = &mut *self.delta_ptr(i);
            // Image layout = VarlenEntry: size_and_flags is the first u32.
            let flags = u32::from_le_bytes(d.image[0..4].try_into().unwrap());
            d.image[0..4].copy_from_slice(&(flags & !(1u32 << 31)).to_le_bytes());
        }
    }

    /// Iterate all delta images.
    pub fn deltas(self) -> impl Iterator<Item = AttrImage> {
        (0..self.ncols()).map(move |i| self.delta(i))
    }

    /// Byte size of a record with `ncols` delta columns.
    pub fn byte_size(ncols: usize) -> usize {
        HEADER_SIZE + ncols * DELTA_COL_SIZE
    }
}

impl std::fmt::Debug for UndoRecordRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "UndoRecord({:p}, {:?}, {:?}, slot={:?}, ncols={})",
            self.0,
            self.kind(),
            self.timestamp(),
            self.slot(),
            self.ncols()
        )
    }
}

/// An append-only undo buffer: a linked list of pool segments.
pub struct UndoBuffer {
    segments: Vec<Segment>,
    /// Creation-ordered record pointers (for rollback and GC iteration).
    records: Vec<UndoRecordRef>,
}

impl UndoBuffer {
    /// Empty buffer (allocates lazily).
    pub fn new() -> Self {
        UndoBuffer { segments: Vec::new(), records: Vec::new() }
    }

    /// Reserve and initialize a record; returns its stable reference.
    ///
    /// `deltas` carries the before-images for `Update` records (empty for
    /// insert/delete records).
    #[allow(clippy::too_many_arguments)] // mirrors the undo-record header fields
    pub fn new_record(
        &mut self,
        pool: &SegmentPool,
        txn_id: Timestamp,
        slot: TupleSlot,
        table_id: u32,
        kind: UndoKind,
        deltas: &[AttrImage],
        varlen_flags: &[bool],
        next_raw: u64,
    ) -> UndoRecordRef {
        debug_assert_eq!(deltas.len(), varlen_flags.len());
        let size = UndoRecordRef::byte_size(deltas.len());
        assert!(size <= SEGMENT_SIZE, "delta too wide for a segment");
        let ptr = loop {
            if let Some(seg) = self.segments.last_mut() {
                if let Some(p) = seg.reserve(size, 8) {
                    break p;
                }
            }
            self.segments.push(pool.acquire());
        };
        unsafe {
            (ptr as *mut u64).write(next_raw);
            (ptr.add(8) as *mut u64).write(txn_id.0);
            (ptr.add(16) as *mut u64).write(slot.raw());
            (ptr.add(24) as *mut u32).write(table_id);
            (ptr.add(28) as *mut u16).write(kind as u16);
            (ptr.add(30) as *mut u16).write(deltas.len() as u16);
            for (i, d) in deltas.iter().enumerate() {
                let dc = ptr.add(HEADER_SIZE + i * DELTA_COL_SIZE) as *mut RawDeltaCol;
                (*dc).col = d.col;
                (*dc).null = d.null as u8;
                (*dc).varlen = varlen_flags[i] as u8;
                (*dc)._pad = [0; 4];
                (*dc).image = d.image;
            }
        }
        let r = UndoRecordRef(ptr);
        self.records.push(r);
        r
    }

    /// Records in creation order.
    pub fn records(&self) -> &[UndoRecordRef] {
        &self.records
    }

    /// Forget the most recently created record (used when a version-pointer
    /// CAS loses the race and the record was never published — its segment
    /// space is simply abandoned, since records can never move).
    pub fn pop_last(&mut self) {
        self.records.pop();
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were written.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Return the backing segments to the pool. Only the GC may call this,
    /// once no chain or reader can reference the records.
    pub fn release_segments(&mut self, pool: &SegmentPool) {
        self.records.clear();
        for seg in self.segments.drain(..) {
            pool.release(seg);
        }
    }
}

impl Default for UndoBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot() -> TupleSlot {
        TupleSlot::from_raw(5 << 20 | 3)
    }

    #[test]
    fn record_roundtrip() {
        let pool = SegmentPool::default();
        let mut buf = UndoBuffer::new();
        let deltas = [
            AttrImage { col: 1, null: false, image: [7u8; 16] },
            AttrImage { col: 3, null: true, image: [0u8; 16] },
        ];
        let r = buf.new_record(
            &pool,
            Timestamp(9).as_txn_id(),
            slot(),
            42,
            UndoKind::Update,
            &deltas,
            &[false, false],
            0,
        );
        assert_eq!(r.kind(), UndoKind::Update);
        assert_eq!(r.slot(), slot());
        assert_eq!(r.table_id(), 42);
        assert_eq!(r.ncols(), 2);
        assert!(r.timestamp().is_uncommitted());
        assert_eq!(r.next(), None);
        let d0 = r.delta(0);
        assert_eq!((d0.col, d0.null), (1, false));
        assert_eq!(d0.image, [7u8; 16]);
        let d1 = r.delta(1);
        assert_eq!((d1.col, d1.null), (3, true));
    }

    #[test]
    fn chain_linking() {
        let pool = SegmentPool::default();
        let mut buf = UndoBuffer::new();
        let r1 = buf.new_record(
            &pool,
            Timestamp(1).as_txn_id(),
            slot(),
            0,
            UndoKind::Insert,
            &[],
            &[],
            0,
        );
        let r2 = buf.new_record(
            &pool,
            Timestamp(1).as_txn_id(),
            slot(),
            0,
            UndoKind::Update,
            &[],
            &[],
            r1.as_raw(),
        );
        assert_eq!(r2.next(), Some(r1));
        r2.set_next_raw(0);
        assert_eq!(r2.next(), None);
    }

    #[test]
    fn timestamp_publishing() {
        let pool = SegmentPool::default();
        let mut buf = UndoBuffer::new();
        let r = buf.new_record(
            &pool,
            Timestamp(5).as_txn_id(),
            slot(),
            0,
            UndoKind::Delete,
            &[],
            &[],
            0,
        );
        assert!(r.timestamp().is_uncommitted());
        r.set_timestamp(Timestamp(77));
        assert_eq!(r.timestamp(), Timestamp(77));
        assert!(!r.timestamp().is_uncommitted());
    }

    #[test]
    fn segment_overflow_allocates_more() {
        let pool = SegmentPool::default();
        let mut buf = UndoBuffer::new();
        // Each record is 32 + 24*4 = 128 bytes; 4096/128 = 32 per segment.
        let deltas = [AttrImage { col: 1, null: false, image: [0; 16] }; 4];
        let refs: Vec<_> = (0..100)
            .map(|_| {
                buf.new_record(
                    &pool,
                    Timestamp(1).as_txn_id(),
                    slot(),
                    0,
                    UndoKind::Update,
                    &deltas,
                    &[false; 4],
                    0,
                )
            })
            .collect();
        assert!(buf.segments.len() >= 3, "segments: {}", buf.segments.len());
        // All records stay valid (stable addresses).
        for r in &refs {
            assert_eq!(r.ncols(), 4);
        }
        assert_eq!(buf.len(), 100);
        buf.release_segments(&pool);
        assert!(buf.is_empty());
        assert!(pool.retained() >= 3);
    }

    #[test]
    fn clear_delta_ownership_flips_only_top_bit() {
        use mainline_storage::VarlenEntry;
        let pool = SegmentPool::default();
        let mut buf = UndoBuffer::new();
        let e = VarlenEntry::from_bytes(b"a value long enough to be owned");
        assert!(e.owns_buffer());
        let img = mainline_storage::projected_row::AttrImage::from_varlen(2, false, e);
        let r = buf.new_record(
            &pool,
            Timestamp(1).as_txn_id(),
            slot(),
            0,
            UndoKind::Update,
            &[img],
            &[true],
            0,
        );
        assert!(r.delta_is_varlen(0));
        assert!(!r.delta_is_varlen(0) || r.delta(0).as_varlen().owns_buffer());
        r.clear_delta_ownership(0);
        let after = r.delta(0).as_varlen();
        assert!(!after.owns_buffer());
        assert_eq!(after.len(), e.len());
        assert_eq!(unsafe { after.as_slice() }, unsafe { e.as_slice() });
        unsafe { e.free_buffer() };
    }
}
