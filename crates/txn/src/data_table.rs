//! The Data Table API (paper §3.1, Fig. 4): the abstraction layer between
//! transactions and physical Arrow storage. It materializes the correct
//! version of each tuple into the transaction and installs updates through
//! version chains, touching only delta records and the version column —
//! never re-arranging the underlying Arrow layout.

use crate::redo::{RedoCol, RedoOp, RedoRecord};
use crate::transaction::Transaction;
use crate::undo::{UndoKind, UndoRecordRef};
use mainline_common::schema::Schema;
use mainline_common::value::{TypeId, Value};
use mainline_common::{Error, Result};
use mainline_storage::access;
use mainline_storage::block_state::{AcquireBlocked, BlockState, BlockStateMachine, WriterGuard};
use mainline_storage::layout::NUM_RESERVED_COLS;
use mainline_storage::projected_row::AttrImage;
use mainline_storage::raw_block::{layout_of, Block, BlockHeader};
use mainline_storage::{BlockLayout, MemoryAccountant, ProjectedRow, TupleSlot, VarlenEntry};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// How an evicted block's bytes come back: the database layer installs a
/// closure that reads the block's recorded [`ColdLocation`] frame out of the
/// checkpoint chain and repopulates the block in place (see
/// `mainline-checkpoint`'s `fault_in_block`). Returns `Ok(true)` when this
/// call performed the fault, `Ok(false)` when it lost the `Faulting` claim to
/// a concurrent faulter.
///
/// [`ColdLocation`]: mainline_storage::ColdLocation
pub type FaultHandler = Arc<dyn Fn(&DataTable, &Block) -> Result<bool> + Send + Sync>;

/// A multi-versioned table over 1 MB Arrow-compatible blocks.
pub struct DataTable {
    id: u32,
    schema: Schema,
    types: Vec<TypeId>,
    layout: Arc<BlockLayout>,
    blocks: RwLock<Vec<Arc<Block>>>,
    /// The block currently absorbing inserts.
    active_block: Mutex<Arc<Block>>,
    /// Fault path for evicted blocks (`None` until checkpointing is wired).
    fault_handler: Mutex<Option<FaultHandler>>,
    /// Frozen-content memory accountant shared with the transform pipeline
    /// and the eviction clock (`None` = residency accounting disabled).
    accountant: Mutex<Option<Arc<MemoryAccountant>>>,
}

impl DataTable {
    /// Create an empty table.
    pub fn new(id: u32, schema: Schema) -> Result<Arc<DataTable>> {
        let layout = Arc::new(BlockLayout::from_schema(&schema)?);
        let first = Block::new(Arc::clone(&layout));
        let types: Vec<TypeId> = schema.types().collect();
        Ok(Arc::new(DataTable {
            id,
            schema,
            types,
            layout,
            blocks: RwLock::new(vec![Arc::clone(&first)]),
            active_block: Mutex::new(first),
            fault_handler: Mutex::new(None),
            accountant: Mutex::new(None),
        }))
    }

    /// Install the fault path for evicted blocks (database layer, once
    /// checkpointing is configured).
    pub fn set_fault_handler(&self, handler: FaultHandler) {
        *self.fault_handler.lock() = Some(handler);
    }

    /// Install the shared memory accountant so thaws and fault-ins move the
    /// frozen-content charge.
    pub fn set_accountant(&self, accountant: Arc<MemoryAccountant>) {
        *self.accountant.lock() = Some(accountant);
    }

    /// Catalog id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Logical schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// User column types in order.
    pub fn types(&self) -> &[TypeId] {
        &self.types
    }

    /// Physical layout shared by all blocks.
    pub fn layout(&self) -> &Arc<BlockLayout> {
        &self.layout
    }

    /// Snapshot of the block list.
    pub fn blocks(&self) -> Vec<Arc<Block>> {
        self.blocks.read().clone()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }

    /// Storage column ids of all user columns.
    pub fn all_cols(&self) -> Vec<u16> {
        (NUM_RESERVED_COLS as u16..self.layout.num_cols() as u16).collect()
    }

    /// Add a fresh block (also used by compaction when it needs headroom).
    fn grow(&self, full: &Arc<Block>) -> Arc<Block> {
        let mut active = self.active_block.lock();
        if !Arc::ptr_eq(&active, full) {
            // Someone already swapped in a new block.
            return Arc::clone(&active);
        }
        let fresh = Block::new(Arc::clone(&self.layout));
        self.blocks.write().push(Arc::clone(&fresh));
        *active = Arc::clone(&fresh);
        fresh
    }

    /// Register an externally recycled block as insertion target (used by the
    /// transformation pipeline when compaction empties blocks).
    pub fn blocks_handle(&self) -> &RwLock<Vec<Arc<Block>>> {
        &self.blocks
    }

    /// True when `ptr` is the block currently absorbing inserts — the
    /// transformation pipeline skips it (§4.2's mistakes-tolerated design
    /// makes precision unnecessary, but skipping the tail avoids guaranteed
    /// preemptions).
    pub fn is_active_block(&self, ptr: *const u8) -> bool {
        std::ptr::eq(self.active_block.lock().as_ptr(), ptr)
    }

    /// Remove specific blocks from the table (compaction recycling). The
    /// removed `Arc<Block>`s are returned; the caller must keep them alive
    /// until no concurrent reader can hold slots into them (GC deferral).
    #[must_use = "removed blocks must be kept alive until the epoch passes"]
    pub fn detach_blocks(&self, victims: &[*const u8]) -> Vec<Arc<Block>> {
        let mut blocks = self.blocks.write();
        let mut removed = Vec::new();
        blocks.retain(|b| {
            if victims.contains(&(b.as_ptr() as *const u8)) {
                removed.push(Arc::clone(b));
                false
            } else {
                true
            }
        });
        removed
    }

    // ------------------------------------------------------------------
    // Residency
    // ------------------------------------------------------------------

    /// The `Arc<Block>` whose base address is `ptr`, if it belongs to this
    /// table.
    fn find_block(&self, ptr: *const u8) -> Option<Arc<Block>> {
        self.blocks.read().iter().find(|b| std::ptr::eq(b.as_ptr(), ptr)).cloned()
    }

    /// Bring the block at `ptr` back to a resident state, faulting its bytes
    /// in from the checkpoint chain if it is Evicted and waiting out a
    /// concurrent fault-in if it is Faulting. No-op for resident blocks.
    ///
    /// Errors if no fault handler is installed (eviction only runs when the
    /// database layer wired one, so this indicates misconfiguration) or if
    /// the handler itself fails (unreadable/mismatched checkpoint frame).
    pub fn ensure_resident(&self, ptr: *const u8) -> Result<()> {
        let h = unsafe { BlockHeader::new(ptr as *mut u8) };
        loop {
            match BlockStateMachine::state(h) {
                BlockState::Evicted => {
                    let handler = self.fault_handler.lock().clone().ok_or(
                        Error::InvalidBlockState("evicted block but no fault handler installed"),
                    )?;
                    let block = self.find_block(ptr).ok_or(Error::InvalidBlockState(
                        "evicted block is not in its table's block list",
                    ))?;
                    if handler(self, &block)? {
                        // We performed the fault: the content is resident and
                        // frozen again, so it re-enters the resident gauge.
                        if let Some(acc) = self.accountant.lock().clone() {
                            let bytes = block.live_bytes() as u64;
                            block.set_charged_bytes(bytes);
                            acc.on_fault(bytes);
                        }
                        return Ok(());
                    }
                    // Lost the Faulting claim to a concurrent faulter: loop
                    // and wait for its transition to land.
                }
                BlockState::Faulting => std::hint::spin_loop(),
                _ => return Ok(()),
            }
        }
    }

    /// Writer entry that faults evicted blocks back in instead of spinning,
    /// and settles the memory accountant when the acquisition thawed a
    /// charged (frozen) block back to Hot.
    ///
    /// # Safety
    /// `block` must be the base of a live block of this table.
    unsafe fn acquire_writer(&self, block: *mut u8) -> Result<WriterGuard> {
        let h = BlockHeader::new(block);
        loop {
            // Peek the state first: if the acquisition transitions a
            // non-Hot block, its frozen-content charge must leave the
            // resident gauge. (A freeze sliding in between the peek and the
            // acquire leaves a stale charge; the transform pipeline settles
            // stale charges on the next freeze.)
            let pre = BlockStateMachine::state(h);
            match BlockStateMachine::writer_acquire_resident(h) {
                Ok(guard) => {
                    if pre != BlockState::Hot {
                        self.settle_thaw(block);
                    }
                    return Ok(guard);
                }
                Err(AcquireBlocked::Evicted) => self.ensure_resident(block)?,
            }
        }
    }

    /// Release any frozen-content charge still held by the block at `ptr`
    /// (it just thawed to Hot; hot memory is governed by transform
    /// backpressure, not the residency budget).
    fn settle_thaw(&self, ptr: *const u8) {
        let Some(acc) = self.accountant.lock().clone() else { return };
        if let Some(block) = self.find_block(ptr) {
            let charged = block.take_charged_bytes();
            if charged > 0 {
                acc.on_thaw(charged);
            }
        }
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Insert a row; returns its new slot.
    ///
    /// The row's varlen entries transfer ownership into the table.
    pub fn insert(&self, txn: &Transaction, row: &ProjectedRow) -> TupleSlot {
        // Claim a fresh slot.
        let (block, slot_idx) = loop {
            let block = Arc::clone(&self.active_block.lock());
            let idx = block.header().claim_slots(1);
            if idx < self.layout.num_slots() {
                break (block, idx);
            }
            self.grow(&block);
        };
        let slot = TupleSlot::new(block.as_ptr(), slot_idx);
        unsafe {
            self.install_insert(txn, block.as_ptr(), slot, row, /* fresh */ true)
                .expect("fresh slot install cannot conflict");
        }
        slot
    }

    /// Insert into a *specific* currently-empty slot (compaction's tuple
    /// shuffle, §4.3). Fails if the slot is occupied or still has a version
    /// chain that the GC has not pruned.
    pub fn insert_into(
        &self,
        txn: &Transaction,
        slot: TupleSlot,
        row: &ProjectedRow,
    ) -> Result<()> {
        unsafe {
            self.install_insert(txn, slot.block(), slot, row, /* fresh */ false)
        }
    }

    unsafe fn install_insert(
        &self,
        txn: &Transaction,
        block: *mut u8,
        slot: TupleSlot,
        row: &ProjectedRow,
        fresh: bool,
    ) -> Result<()> {
        let layout = layout_of(block);
        let _writer = self.acquire_writer(block)?;
        let idx = slot.offset();
        if !fresh {
            // Reused slots must be fully quiescent: unallocated and with a
            // pruned version chain (§3.3 hands recycling to compaction).
            if access::is_allocated(block, layout, idx) {
                return Err(Error::DuplicateKey);
            }
        }
        let record = txn.new_undo_record(slot, self.id, UndoKind::Insert, &[], &[], 0);
        let vp = access::version_ptr(block, layout, idx);
        if vp.compare_exchange(0, record.as_raw(), Ordering::AcqRel, Ordering::Acquire).is_err() {
            txn.pop_undo_record();
            return Err(Error::WriteWriteConflict);
        }
        if !fresh {
            // A recycled gap may still hold the last deleted tuple's varlen
            // entries; their buffers become unreachable once we overwrite
            // them (the GC already proved no snapshot can see the old tuple,
            // or the chain would not have been pruned). Queue them on the
            // transaction for deferred reclamation.
            for col in layout.varlen_cols() {
                let old = access::read_varlen(block, layout, idx, col);
                txn.stash_orphan(old);
            }
        }
        // The chain makes the slot invisible to others; now write the data.
        for a in row.attrs() {
            access::set_null(block, layout, idx, a.col, a.null);
            if a.null {
                // Zero the payload so frozen projections are deterministic.
                access::write_attr(block, layout, idx, a.col, &[0u8; 16]);
            } else {
                access::write_attr(block, layout, idx, a.col, &a.image);
            }
        }
        if access::set_allocated(block, layout, idx) {
            // `fresh` slots are private; reused slots were checked above and
            // protected by winning the version-pointer CAS.
            unreachable!("slot concurrently allocated");
        }
        txn.push_redo(RedoRecord {
            table_id: self.id,
            slot,
            op: RedoOp::Insert(self.redo_cols(layout, row)),
        });
        Ok(())
    }

    /// Update the projected columns of a tuple in place.
    ///
    /// The delta's varlen entries transfer ownership into the table on
    /// success; on error the caller still owns them.
    pub fn update(&self, txn: &Transaction, slot: TupleSlot, delta: &ProjectedRow) -> Result<()> {
        let block = slot.block();
        let idx = slot.offset();
        unsafe {
            let layout = layout_of(block);
            let _writer = self.acquire_writer(block)?;
            // Install the before-image on the version chain.
            loop {
                let head = access::load_version(block, layout, idx);
                self.check_write_conflict(txn, head)?;
                if !access::is_allocated(block, layout, idx) {
                    return Err(Error::TupleNotVisible);
                }
                // Capture before-images of exactly the modified columns.
                let mut before = Vec::with_capacity(delta.len());
                let mut varlen_flags = Vec::with_capacity(delta.len());
                for a in delta.attrs() {
                    let mut image = [0u8; 16];
                    access::read_attr(block, layout, idx, a.col, &mut image);
                    before.push(AttrImage {
                        col: a.col,
                        null: access::is_null(block, layout, idx, a.col),
                        image,
                    });
                    varlen_flags.push(layout.is_varlen(a.col));
                }
                let record = txn.new_undo_record(
                    slot,
                    self.id,
                    UndoKind::Update,
                    &before,
                    &varlen_flags,
                    head,
                );
                let vp = access::version_ptr(block, layout, idx);
                if vp
                    .compare_exchange(head, record.as_raw(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
                txn.pop_undo_record();
            }
            // We own the chain head: write in place.
            for a in delta.attrs() {
                access::set_null(block, layout, idx, a.col, a.null);
                if a.null {
                    access::write_attr(block, layout, idx, a.col, &[0u8; 16]);
                } else {
                    access::write_attr(block, layout, idx, a.col, &a.image);
                }
            }
            txn.push_redo(RedoRecord {
                table_id: self.id,
                slot,
                op: RedoOp::Update(self.redo_cols(layout, delta)),
            });
        }
        Ok(())
    }

    /// Delete a tuple (clears its allocation bit, §3.1).
    pub fn delete(&self, txn: &Transaction, slot: TupleSlot) -> Result<()> {
        let block = slot.block();
        let idx = slot.offset();
        unsafe {
            let layout = layout_of(block);
            let _writer = self.acquire_writer(block)?;
            loop {
                let head = access::load_version(block, layout, idx);
                self.check_write_conflict(txn, head)?;
                if !access::is_allocated(block, layout, idx) {
                    return Err(Error::TupleNotVisible);
                }
                let record = txn.new_undo_record(slot, self.id, UndoKind::Delete, &[], &[], head);
                let vp = access::version_ptr(block, layout, idx);
                if vp
                    .compare_exchange(head, record.as_raw(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
                txn.pop_undo_record();
            }
            access::clear_allocated(block, layout, idx);
            txn.push_redo(RedoRecord { table_id: self.id, slot, op: RedoOp::Delete });
        }
        Ok(())
    }

    /// §3.1's write-write conflict rule: abort if the chain head is another
    /// transaction's uncommitted record or committed after our start.
    fn check_write_conflict(&self, txn: &Transaction, head_raw: u64) -> Result<()> {
        if let Some(head) = UndoRecordRef::from_raw(head_raw) {
            let ts = head.timestamp();
            let own = ts == txn.txn_id();
            if (ts.is_uncommitted() && !own) || (!ts.is_uncommitted() && ts > txn.start_ts()) {
                return Err(Error::WriteWriteConflict);
            }
        }
        Ok(())
    }

    fn redo_cols(&self, layout: &BlockLayout, row: &ProjectedRow) -> Vec<RedoCol> {
        row.attrs()
            .iter()
            .map(|a| RedoCol {
                col: a.col,
                value: if a.null {
                    None
                } else if layout.is_varlen(a.col) {
                    Some(unsafe { a.as_varlen().to_vec() })
                } else {
                    Some(a.image[..layout.attr_size(a.col) as usize].to_vec())
                },
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Materialize the version of `slot` visible to `txn`, projected onto
    /// `cols` (storage ids). `None` when the tuple is invisible/absent.
    ///
    /// Residency is validated optimistically (the btree page-state pattern):
    /// the read copies without pinning, then checks that the block's packed
    /// residency version did not move. Eviction and fault-in both bump the
    /// version, so a read that overlapped either retries; a read that starts
    /// on an Evicted block faults it back in first.
    pub fn select(&self, txn: &Transaction, slot: TupleSlot, cols: &[u16]) -> Option<ProjectedRow> {
        let h = unsafe { BlockHeader::new(slot.block()) };
        loop {
            let Some(version) = BlockStateMachine::optimistic_read_begin(h) else {
                // Evicted or mid-fault. A fault error here is unrecoverable
                // misconfiguration or checkpoint-chain corruption — `select`
                // has no error channel, and silently dropping rows would
                // corrupt results.
                self.ensure_resident(slot.block()).expect("fault-in failed during select");
                continue;
            };
            let row = self.select_inner(txn, slot, cols);
            if BlockStateMachine::optimistic_read_validate(h, version) {
                if row.is_some() && BlockStateMachine::state(h) == BlockState::Frozen {
                    // Recent-access mark for the second-chance eviction clock.
                    h.set_ref_bit();
                }
                return row;
            }
        }
    }

    fn select_inner(
        &self,
        txn: &Transaction,
        slot: TupleSlot,
        cols: &[u16],
    ) -> Option<ProjectedRow> {
        let block = slot.block();
        let idx = slot.offset();
        unsafe {
            let layout = layout_of(block);
            if idx >= layout.num_slots() {
                return None;
            }
            let mut row;
            let mut exists;
            let mut head_raw;
            // Copy the latest version; re-copy if a writer raced us (any
            // in-place mutation installs a record first, changing the head).
            loop {
                head_raw = access::load_version(block, layout, idx);
                exists = access::is_allocated(block, layout, idx);
                row = ProjectedRow::with_capacity(cols.len());
                for &col in cols {
                    let mut image = [0u8; 16];
                    access::read_attr(block, layout, idx, col, &mut image);
                    row.push_raw(col, access::is_null(block, layout, idx, col), image);
                }
                if access::load_version(block, layout, idx) == head_raw {
                    break;
                }
            }
            // Apply before-images until a visible record (§3.1).
            let mut r = UndoRecordRef::from_raw(head_raw);
            while let Some(rec) = r {
                if txn.can_see(rec.timestamp()) {
                    break;
                }
                match rec.kind() {
                    UndoKind::Update => {
                        for d in rec.deltas() {
                            if let Some(pos) = row.find(d.col) {
                                row.attrs_mut()[pos] = d;
                            }
                        }
                    }
                    UndoKind::Insert => exists = false,
                    UndoKind::Delete => exists = true,
                }
                r = rec.next();
            }
            exists.then_some(row)
        }
    }

    /// Typed select over all user columns.
    pub fn select_values(&self, txn: &Transaction, slot: TupleSlot) -> Option<Vec<Value>> {
        let cols = self.all_cols();
        let row = self.select(txn, slot, &cols)?;
        Some(self.row_to_values(&row))
    }

    /// Decode a projected row (over all user columns, in order) to values.
    pub fn row_to_values(&self, row: &ProjectedRow) -> Vec<Value> {
        row.attrs()
            .iter()
            .map(|a| {
                let user_idx = (a.col as usize) - NUM_RESERVED_COLS;
                unsafe {
                    let pos = row.find(a.col).unwrap();
                    row.value_at(pos, &self.layout, self.types[user_idx])
                }
            })
            .collect()
    }

    /// Visit every tuple version visible to `txn`. The visitor receives the
    /// slot and the materialized projection; return `false` to stop.
    pub fn scan(
        &self,
        txn: &Transaction,
        cols: &[u16],
        mut visit: impl FnMut(TupleSlot, &ProjectedRow) -> bool,
    ) {
        let blocks = self.blocks();
        for block in blocks {
            let h = block.header();
            let upper = h.insert_head().min(self.layout.num_slots());
            for idx in 0..upper {
                let slot = TupleSlot::new(block.as_ptr(), idx);
                if let Some(row) = self.select(txn, slot, cols) {
                    if !visit(slot, &row) {
                        return;
                    }
                }
            }
        }
    }

    /// Count tuples visible to `txn` (test/bench helper).
    pub fn count_visible(&self, txn: &Transaction) -> usize {
        let mut n = 0;
        // Project only the first user column — cheapest possible scan.
        self.scan(txn, &[NUM_RESERVED_COLS as u16], |_, _| {
            n += 1;
            true
        });
        n
    }
}

impl Drop for DataTable {
    fn drop(&mut self) {
        // Return any frozen-content charge the table's blocks still hold;
        // the block state says which gauge (resident vs. evicted) holds it.
        if let Some(acc) = self.accountant.lock().clone() {
            for block in self.blocks.read().iter() {
                let charged = block.take_charged_bytes();
                if charged > 0 {
                    let evicted = BlockStateMachine::state(block.header()) == BlockState::Evicted;
                    acc.on_drop(charged, evicted);
                }
            }
        }
        // Free in-place owned varlen buffers. Safe: dropping the table means
        // no transaction can reference it anymore. (Evicted blocks read
        // all-zero varlen entries — their payload lived in the gathered
        // buffers that were defer-dropped at eviction — so this loop is a
        // no-op for them.)
        let varlen_cols: Vec<u16> = self.layout.varlen_cols().collect();
        if varlen_cols.is_empty() {
            return;
        }
        for block in self.blocks.read().iter() {
            let h = block.header();
            let upper = h.insert_head().min(self.layout.num_slots());
            unsafe {
                for idx in 0..upper {
                    for &col in &varlen_cols {
                        let e = access::read_varlen(block.as_ptr(), &self.layout, idx, col);
                        e.free_buffer();
                    }
                }
            }
        }
    }
}

/// Roll back one undo record (called newest-to-oldest by the manager's abort
/// path). Restores the before-image in place, transfers buffer ownership
/// back to the table, and stashes the aborted new buffers for deferred
/// reclamation.
///
/// # Safety
/// Only the record's owning (aborting) transaction may call this, and only
/// while it still owns the version-chain heads it installed.
pub unsafe fn rollback_record(txn: &Transaction, r: UndoRecordRef) {
    let slot = r.slot();
    let block = slot.block();
    let layout = layout_of(block);
    let idx = slot.offset();
    match r.kind() {
        UndoKind::Update => {
            for i in 0..r.ncols() {
                let d = r.delta(i);
                if layout.is_varlen(d.col) {
                    // The new (aborted) value's buffer becomes garbage.
                    let cur = access::read_varlen(block, layout, idx, d.col);
                    let before = d.as_varlen();
                    if cur.owns_buffer() && !cur.bits_eq(&before) {
                        txn.stash_orphan(cur);
                    }
                    // Ownership of the before-image's buffer returns to the
                    // table; the record must no longer claim it, or the GC
                    // would double-free it.
                    if !d.null && before.owns_buffer() {
                        r.clear_delta_ownership(i);
                    }
                }
                access::set_null(block, layout, idx, d.col, d.null);
                access::write_attr(block, layout, idx, d.col, &d.image);
            }
        }
        UndoKind::Insert => {
            // The inserted values die with the tuple.
            for col in layout.varlen_cols() {
                let cur = access::read_varlen(block, layout, idx, col);
                txn.stash_orphan(cur);
                access::write_varlen(block, layout, idx, col, VarlenEntry::empty());
            }
            access::clear_allocated(block, layout, idx);
        }
        UndoKind::Delete => {
            access::set_allocated(block, layout, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TransactionManager;
    use mainline_common::schema::ColumnDef;

    fn table() -> Arc<DataTable> {
        DataTable::new(
            1,
            Schema::new(vec![
                ColumnDef::new("id", TypeId::BigInt),
                ColumnDef::nullable("name", TypeId::Varchar),
                ColumnDef::new("qty", TypeId::Integer),
            ]),
        )
        .unwrap()
    }

    fn row(id: i64, name: Option<&str>, qty: i32) -> ProjectedRow {
        ProjectedRow::from_values(
            &[TypeId::BigInt, TypeId::Varchar, TypeId::Integer],
            &[Value::BigInt(id), name.map_or(Value::Null, Value::string), Value::Integer(qty)],
        )
    }

    #[test]
    fn insert_then_read_own_write() {
        let m = TransactionManager::new();
        let t = table();
        let txn = m.begin();
        let slot = t.insert(&txn, &row(7, Some("a fairly long name value"), 3));
        let got = t.select_values(&txn, slot).unwrap();
        assert_eq!(
            got,
            vec![Value::BigInt(7), Value::string("a fairly long name value"), Value::Integer(3)]
        );
        m.commit(&txn);
    }

    #[test]
    fn uncommitted_insert_invisible_to_others() {
        let m = TransactionManager::new();
        let t = table();
        let writer = m.begin();
        let slot = t.insert(&writer, &row(1, Some("x"), 1));
        let reader = m.begin();
        assert!(t.select_values(&reader, slot).is_none());
        m.commit(&writer);
        // Still invisible: reader started before the commit.
        assert!(t.select_values(&reader, slot).is_none());
        m.commit(&reader);
        let late = m.begin();
        assert!(t.select_values(&late, slot).is_some());
        m.commit(&late);
    }

    #[test]
    fn snapshot_isolation_on_update() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, Some("original-value-here"), 10));
        m.commit(&setup);

        let reader = m.begin(); // snapshot before the update
        let writer = m.begin();
        let mut delta = ProjectedRow::new();
        delta.push_fixed(3, &Value::Integer(99));
        t.update(&writer, slot, &delta).unwrap();
        // Writer sees its own write; reader sees the old version.
        assert_eq!(t.select_values(&writer, slot).unwrap()[2], Value::Integer(99));
        assert_eq!(t.select_values(&reader, slot).unwrap()[2], Value::Integer(10));
        m.commit(&writer);
        // Reader's snapshot is stable even after commit.
        assert_eq!(t.select_values(&reader, slot).unwrap()[2], Value::Integer(10));
        m.commit(&reader);
        let late = m.begin();
        assert_eq!(t.select_values(&late, slot).unwrap()[2], Value::Integer(99));
        m.commit(&late);
    }

    #[test]
    fn write_write_conflict_detected() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, None, 0));
        m.commit(&setup);

        let t1 = m.begin();
        let t2 = m.begin();
        let mut d1 = ProjectedRow::new();
        d1.push_fixed(3, &Value::Integer(1));
        t.update(&t1, slot, &d1).unwrap();
        let mut d2 = ProjectedRow::new();
        d2.push_fixed(3, &Value::Integer(2));
        assert!(matches!(t.update(&t2, slot, &d2), Err(Error::WriteWriteConflict)));
        m.abort(&t2);
        m.commit(&t1);

        // A transaction that started before t1 committed also conflicts.
        let t3 = m.begin();
        m.commit(&t3); // (advance clock)
        let t4 = m.begin();
        let mut d4 = ProjectedRow::new();
        d4.push_fixed(3, &Value::Integer(4));
        t.update(&t4, slot, &d4).unwrap();
        m.commit(&t4);
    }

    #[test]
    fn conflict_when_committed_after_my_start() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, None, 0));
        m.commit(&setup);

        let early = m.begin(); // starts before writer commits
        let writer = m.begin();
        let mut d = ProjectedRow::new();
        d.push_fixed(3, &Value::Integer(5));
        t.update(&writer, slot, &d).unwrap();
        m.commit(&writer);
        // `early` must not overwrite a version it cannot see.
        let mut d2 = ProjectedRow::new();
        d2.push_fixed(3, &Value::Integer(6));
        assert!(matches!(t.update(&early, slot, &d2), Err(Error::WriteWriteConflict)));
        m.abort(&early);
    }

    #[test]
    fn delete_respects_snapshots() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, Some("short"), 1));
        m.commit(&setup);

        let reader = m.begin();
        let deleter = m.begin();
        t.delete(&deleter, slot).unwrap();
        assert!(t.select_values(&deleter, slot).is_none()); // own delete
        assert!(t.select_values(&reader, slot).is_some()); // snapshot
        m.commit(&deleter);
        assert!(t.select_values(&reader, slot).is_some());
        m.commit(&reader);
        let late = m.begin();
        assert!(t.select_values(&late, slot).is_none());
        // Double delete is rejected.
        assert!(t.delete(&late, slot).is_err());
        m.abort(&late);
    }

    #[test]
    fn abort_restores_state() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, Some("the original long value"), 10));
        m.commit(&setup);

        let bad = m.begin();
        let mut d = ProjectedRow::new();
        d.push_varlen(2, VarlenEntry::from_bytes(b"the replacement long value"));
        d.push_fixed(3, &Value::Integer(-1));
        t.update(&bad, slot, &d).unwrap();
        t.delete(&bad, slot).unwrap();
        m.abort(&bad);

        let check = m.begin();
        let got = t.select_values(&check, slot).unwrap();
        assert_eq!(
            got,
            vec![Value::BigInt(1), Value::string("the original long value"), Value::Integer(10)]
        );
        m.commit(&check);
    }

    #[test]
    fn abort_insert_removes_tuple() {
        let m = TransactionManager::new();
        let t = table();
        let bad = m.begin();
        let slot = t.insert(&bad, &row(9, Some("a value that will be rolled back"), 0));
        m.abort(&bad);
        let check = m.begin();
        assert!(t.select_values(&check, slot).is_none());
        m.commit(&check);
    }

    #[test]
    fn update_nonexistent_fails() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, None, 0));
        t.delete(&setup, slot).unwrap();
        m.commit(&setup);
        let txn = m.begin();
        let mut d = ProjectedRow::new();
        d.push_fixed(3, &Value::Integer(1));
        assert!(matches!(t.update(&txn, slot, &d), Err(Error::TupleNotVisible)));
        m.abort(&txn);
    }

    #[test]
    fn multiple_updates_same_txn() {
        let m = TransactionManager::new();
        let t = table();
        let txn = m.begin();
        let slot = t.insert(&txn, &row(1, None, 0));
        for i in 1..=5 {
            let mut d = ProjectedRow::new();
            d.push_fixed(3, &Value::Integer(i));
            t.update(&txn, slot, &d).unwrap();
        }
        assert_eq!(t.select_values(&txn, slot).unwrap()[2], Value::Integer(5));
        m.commit(&txn);
        let check = m.begin();
        assert_eq!(t.select_values(&check, slot).unwrap()[2], Value::Integer(5));
        m.commit(&check);
    }

    #[test]
    fn null_transitions() {
        let m = TransactionManager::new();
        let t = table();
        let txn = m.begin();
        let slot = t.insert(&txn, &row(1, Some("not null initially..."), 0));
        m.commit(&txn);

        let t2 = m.begin();
        let mut d = ProjectedRow::new();
        d.push_null(2);
        t.update(&t2, slot, &d).unwrap();
        m.commit(&t2);

        let check = m.begin();
        assert_eq!(t.select_values(&check, slot).unwrap()[1], Value::Null);
        m.commit(&check);
    }

    #[test]
    fn scan_sees_committed_only() {
        let m = TransactionManager::new();
        let t = table();
        let setup = m.begin();
        for i in 0..100 {
            t.insert(&setup, &row(i, Some("abcdefgh"), i as i32));
        }
        m.commit(&setup);
        let pending = m.begin();
        for i in 100..150 {
            t.insert(&pending, &row(i, None, 0));
        }
        let reader = m.begin();
        assert_eq!(t.count_visible(&reader), 100);
        m.commit(&pending);
        m.commit(&reader);
        let late = m.begin();
        assert_eq!(t.count_visible(&late), 150);
        m.commit(&late);
    }

    #[test]
    fn inserts_spill_across_blocks() {
        // A fat schema to keep the per-block slot count small.
        let schema = Schema::new(vec![ColumnDef::new("pad", TypeId::Varchar)]);
        let t = DataTable::new(2, schema).unwrap();
        let m = TransactionManager::new();
        let txn = m.begin();
        let n = t.layout().num_slots() as i64 + 100;
        for i in 0..n {
            let r = ProjectedRow::from_values(
                &[TypeId::Varchar],
                &[Value::string(&format!("value-{i}"))],
            );
            t.insert(&txn, &r);
        }
        m.commit(&txn);
        assert!(t.num_blocks() >= 2);
        let check = m.begin();
        assert_eq!(t.count_visible(&check), n as usize);
        m.commit(&check);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let mut handles = vec![];
        for tid in 0..4i64 {
            let m = Arc::clone(&m);
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let txn = m.begin();
                    t.insert(&txn, &row(tid * 1000 + i, Some("concurrent value"), 0));
                    m.commit(&txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let check = m.begin();
        assert_eq!(t.count_visible(&check), 2000);
        m.commit(&check);
    }

    #[test]
    fn concurrent_counter_increments_are_serializable_under_ww_abort() {
        // 4 threads × 250 increments with write-write conflict retries must
        // produce exactly 1000 (lost updates are impossible under SI + WW
        // aborts for a single counter).
        let m = Arc::new(TransactionManager::new());
        let t = table();
        let setup = m.begin();
        let slot = t.insert(&setup, &row(1, None, 0));
        m.commit(&setup);
        let mut handles = vec![];
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < 250 {
                    let txn = m.begin();
                    let cur = match t.select_values(&txn, slot) {
                        Some(v) => match &v[2] {
                            Value::Integer(x) => *x,
                            _ => unreachable!(),
                        },
                        None => unreachable!(),
                    };
                    let mut d = ProjectedRow::new();
                    d.push_fixed(3, &Value::Integer(cur + 1));
                    match t.update(&txn, slot, &d) {
                        Ok(()) => {
                            m.commit(&txn);
                            done += 1;
                        }
                        Err(_) => m.abort(&txn),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let check = m.begin();
        assert_eq!(t.select_values(&check, slot).unwrap()[2], Value::Integer(1000));
        m.commit(&check);
    }
}
